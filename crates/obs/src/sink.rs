//! The JSONL trace sink.
//!
//! One line is appended per span close. Each line is built as a
//! complete `String` first and then written with a single `write_all`,
//! so concurrent closers never interleave partial lines (the writer
//! itself sits behind a mutex). Three event shapes share the stream:
//!
//! ```json
//! {"type":"span","name":"transpile.route","id":7,"parent":3,"thread":1,"start_ns":1200,"elapsed_ns":84000,"fields":{"swaps":4}}
//! {"type":"event","name":"sweep.stats","fields":{"hits":12,"misses":0}}
//! {"type":"log","message":"fig2: 3/9 cells"}
//! ```
//!
//! Spans that belong to a distributed trace additionally carry
//! `"trace":"<32 hex>"` and — when their parent closed in another
//! process — `"remote_parent":<id>`. Untraced spans omit both keys, so
//! runs without trace contexts emit byte-identical lines.
//!
//! Output is strict JSON — it round-trips through `crates/store`'s
//! ordered-JSON parser (test-enforced). Non-finite floats serialize as
//! `null`, mirroring the store's own JSON writer.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Mutex, OnceLock};

use crate::span::{FieldValue, SpanData};

fn writer() -> &'static Mutex<Option<Box<dyn Write + Send>>> {
    static WRITER: OnceLock<Mutex<Option<Box<dyn Write + Send>>>> = OnceLock::new();
    WRITER.get_or_init(|| Mutex::new(None))
}

/// Installs `path` (created or truncated) as the trace sink.
///
/// # Errors
///
/// Returns the underlying I/O error when the file cannot be created.
pub fn set_trace_file(path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    *writer().lock().expect("trace writer poisoned") = Some(Box::new(file));
    Ok(())
}

/// Installs an arbitrary writer as the trace sink (tests, in-memory
/// capture).
pub fn set_trace_writer(w: Box<dyn Write + Send>) {
    *writer().lock().expect("trace writer poisoned") = Some(w);
}

/// Flushes and removes the trace sink, if any.
pub fn clear_trace_writer() {
    let mut guard = writer().lock().expect("trace writer poisoned");
    if let Some(w) = guard.as_mut() {
        let _ = w.flush();
    }
    *guard = None;
}

/// Flushes the trace sink, if any.
pub fn flush() {
    if let Some(w) = writer().lock().expect("trace writer poisoned").as_mut() {
        let _ = w.flush();
    }
}

fn write_line(line: String) {
    if let Some(w) = writer().lock().expect("trace writer poisoned").as_mut() {
        // Trace I/O must never abort a computation; drop on error.
        let _ = w.write_all(line.as_bytes());
    }
}

/// Appends a JSON string literal (quoted, escaped) to `out`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_field_value(out: &mut String, value: &FieldValue) {
    match value {
        FieldValue::U64(v) => out.push_str(&v.to_string()),
        FieldValue::I64(v) => out.push_str(&v.to_string()),
        FieldValue::F64(v) if v.is_finite() => out.push_str(&format!("{v:?}")),
        FieldValue::F64(_) => out.push_str("null"),
        FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        FieldValue::Str(v) => push_json_str(out, v),
    }
}

fn push_fields(out: &mut String, fields: &[(&str, FieldValue)]) {
    out.push_str(",\"fields\":{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, key);
        out.push(':');
        push_field_value(out, value);
    }
    out.push('}');
}

/// Emits the `{"type":"span",...}` close line for `data`.
pub(crate) fn write_span(data: &SpanData, elapsed_ns: u64) {
    if !crate::enabled() {
        return;
    }
    let mut line = String::with_capacity(128);
    line.push_str("{\"type\":\"span\",\"name\":");
    push_json_str(&mut line, data.name);
    line.push_str(&format!(",\"id\":{}", data.id));
    if data.parent == 0 {
        line.push_str(",\"parent\":null");
    } else {
        line.push_str(&format!(",\"parent\":{}", data.parent));
    }
    // Distributed-trace attributes only appear on spans that have
    // them, so untraced runs emit byte-identical lines to before the
    // trace fields existed.
    if data.remote_parent != 0 {
        line.push_str(&format!(",\"remote_parent\":{}", data.remote_parent));
    }
    if data.trace != 0 {
        line.push_str(&format!(",\"trace\":\"{:032x}\"", data.trace));
    }
    line.push_str(&format!(
        ",\"thread\":{},\"start_ns\":{},\"elapsed_ns\":{}",
        data.thread, data.start_ns, elapsed_ns
    ));
    let borrowed: Vec<(&str, FieldValue)> =
        data.fields.iter().map(|(k, v)| (*k, v.clone())).collect();
    push_fields(&mut line, &borrowed);
    line.push_str("}\n");
    write_line(line);
}

/// Emits a `{"type":"event",...}` line (no timing, no span id).
pub(crate) fn write_event(name: &str, fields: &[(&str, FieldValue)]) {
    let mut line = String::with_capacity(96);
    line.push_str("{\"type\":\"event\",\"name\":");
    push_json_str(&mut line, name);
    push_fields(&mut line, fields);
    line.push_str("}\n");
    write_line(line);
}

/// Emits a `{"type":"log",...}` line mirroring a progress message.
pub(crate) fn write_log(message: &str) {
    let mut line = String::with_capacity(64);
    line.push_str("{\"type\":\"log\",\"message\":");
    push_json_str(&mut line, message);
    line.push_str("}\n");
    write_line(line);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A writer tests can read back after the sink releases it.
    #[derive(Clone)]
    struct Shared(Arc<StdMutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn capture() -> (Shared, Arc<StdMutex<Vec<u8>>>) {
        let buf = Arc::new(StdMutex::new(Vec::new()));
        (Shared(buf.clone()), buf)
    }

    #[test]
    fn string_escaping() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn field_values_serialize() {
        let mut out = String::new();
        push_field_value(&mut out, &FieldValue::F64(f64::NAN));
        assert_eq!(out, "null");
        out.clear();
        push_field_value(&mut out, &FieldValue::F64(1.5));
        assert_eq!(out, "1.5");
        out.clear();
        push_field_value(&mut out, &FieldValue::Bool(true));
        assert_eq!(out, "true");
    }

    #[test]
    fn event_and_log_lines_are_jsonl() {
        let _g = crate::test_guard();
        crate::reset_for_tests();
        let (shared, buf) = capture();
        set_trace_writer(Box::new(shared));
        write_event("test.event", &[("k", FieldValue::U64(7))]);
        write_log("hello\nworld");
        clear_trace_writer();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"type\":\"event\",\"name\":\"test.event\",\"fields\":{\"k\":7}}"
        );
        assert_eq!(lines[1], "{\"type\":\"log\",\"message\":\"hello\\nworld\"}");
    }

    #[test]
    fn span_line_includes_parent_and_fields() {
        let _g = crate::test_guard();
        crate::reset_for_tests();
        crate::enable();
        let (shared, buf) = capture();
        set_trace_writer(Box::new(shared));
        {
            let _outer = crate::Span::open("test.sink.outer");
            let _inner = crate::Span::open("test.sink.inner").with("n", 3u64);
        }
        crate::disable();
        clear_trace_writer();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let inner_line = text
            .lines()
            .find(|l| l.contains("test.sink.inner"))
            .expect("inner span line");
        assert!(inner_line.contains("\"fields\":{\"n\":3}"), "{inner_line}");
        assert!(inner_line.contains("\"parent\":"), "{inner_line}");
        assert!(!inner_line.contains("\"parent\":null"), "{inner_line}");
        let outer_line = text
            .lines()
            .find(|l| l.contains("test.sink.outer"))
            .expect("outer span line");
        assert!(outer_line.contains("\"parent\":null"), "{outer_line}");
        // Untraced spans carry no distributed-trace attributes at all —
        // the non-perturbation contract extends to line bytes.
        assert!(!outer_line.contains("\"trace\""), "{outer_line}");
        assert!(!outer_line.contains("\"remote_parent\""), "{outer_line}");
        crate::reset_for_tests();
    }

    #[test]
    fn traced_span_line_carries_hex_trace_and_remote_parent() {
        let _g = crate::test_guard();
        crate::reset_for_tests();
        crate::enable();
        let (shared, buf) = capture();
        set_trace_writer(Box::new(shared));
        let ctx = {
            let root = crate::Span::open_traced("test.sink.traced");
            let ctx = root.ctx().unwrap();
            let _remote = crate::Span::open_in_context("test.sink.remote", Some(&ctx));
            ctx
        };
        crate::disable();
        clear_trace_writer();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let hex = ctx.trace.unwrap().to_hex();
        let root_line = text
            .lines()
            .find(|l| l.contains("test.sink.traced"))
            .expect("traced root line");
        assert!(
            root_line.contains(&format!("\"trace\":\"{hex}\"")),
            "{root_line}"
        );
        assert!(!root_line.contains("\"remote_parent\""), "{root_line}");
        let remote_line = text
            .lines()
            .find(|l| l.contains("test.sink.remote"))
            .expect("remote span line");
        assert!(
            remote_line.contains(&format!("\"trace\":\"{hex}\"")),
            "{remote_line}"
        );
        assert!(
            remote_line.contains(&format!("\"remote_parent\":{}", ctx.parent)),
            "{remote_line}"
        );
        crate::reset_for_tests();
    }
}
