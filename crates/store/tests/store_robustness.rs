//! Robustness suite for the run-artifact store: corruption injection,
//! crash simulation, concurrent writers, and sweep determinism.
//!
//! The store's contract is that *nothing on disk can make it panic or
//! return wrong data*: bad entries are cache misses, stray temp files
//! are invisible, and a warm sweep replays byte-identically.

use std::fs;
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};

use supermarq_store::{
    RunOutcome, RunRecord, RunSpec, Store, SweepEngine, SweepGrid, TranspileSpec,
};

fn temp_store(tag: &str) -> Store {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "supermarq-store-robust-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    Store::open(dir).unwrap()
}

fn spec(seed: u64) -> RunSpec {
    RunSpec::new(
        "ghz",
        vec![("size".into(), "3".into())],
        "IonQ",
        100,
        2,
        seed,
    )
}

fn record(seed: u64) -> RunRecord {
    RunRecord {
        spec: spec(seed),
        outcome: RunOutcome {
            scores: vec![0.875, 0.9125],
            swap_count: 1,
            two_qubit_gates: 2,
        },
    }
}

/// The single object file backing `spec(seed)`.
fn object_file(store: &Store, seed: u64) -> PathBuf {
    store.object_path(&spec(seed).content_hash())
}

#[test]
fn truncated_entry_is_a_miss_not_a_panic() {
    let store = temp_store("truncate");
    store.put(&record(1)).unwrap();
    let path = object_file(&store, 1);
    let full = fs::read_to_string(&path).unwrap();
    // Every truncation point inside the JSON body must read as a clean
    // miss. (Cutting only the trailing newline leaves a complete record,
    // which legitimately still hits.)
    for cut in 0..full.trim_end().len() {
        fs::write(&path, &full[..cut]).unwrap();
        assert!(store.get(&spec(1)).is_none(), "cut at {cut}");
    }
    // Restoring the bytes restores the hit.
    fs::write(&path, &full).unwrap();
    assert_eq!(store.get(&spec(1)), Some(record(1)));
}

#[test]
fn garbled_entries_are_misses_and_gc_removes_them() {
    let store = temp_store("garble");
    store.put(&record(1)).unwrap();
    store.put(&record(2)).unwrap();
    let garblings: [&[u8]; 5] = [
        b"not json at all",
        b"{\"schema\":1,\"hash\":\"00\",\"spec\":{}}",
        b"[1,2,3]",
        b"{}",
        &[0xff, 0xfe, 0x00, 0x01], // invalid UTF-8
    ];
    let path = object_file(&store, 1);
    for garbage in garblings {
        fs::write(&path, garbage).unwrap();
        assert!(store.get(&spec(1)).is_none());
        // The sibling entry stays readable throughout.
        assert_eq!(store.get(&spec(2)), Some(record(2)));
    }
    let verify = store.verify().unwrap();
    assert_eq!(verify.ok, 1);
    assert_eq!(verify.corrupt.len(), 1);
    let gc = store.gc().unwrap();
    assert_eq!(gc.removed_objects, 1);
    assert_eq!(gc.kept, 1);
    assert!(store.verify().unwrap().is_clean());
    assert!(!path.exists());
}

#[test]
fn schema_version_mismatch_is_a_miss_and_gc_fodder() {
    let store = temp_store("schema");
    store.put(&record(1)).unwrap();
    let path = object_file(&store, 1);
    // A plausible record from a future schema version.
    let future = fs::read_to_string(&path)
        .unwrap()
        .replace("\"schema\":2", "\"schema\":3");
    fs::write(&path, future).unwrap();
    assert!(store.get(&spec(1)).is_none(), "future schema must miss");
    assert_eq!(store.verify().unwrap().corrupt.len(), 1);
    assert_eq!(store.gc().unwrap().removed_objects, 1);
}

#[test]
fn record_filed_under_wrong_address_is_a_miss() {
    let store = temp_store("misfiled");
    store.put(&record(1)).unwrap();
    // Copy the valid record for seed 1 into seed 2's slot: internally
    // consistent JSON, wrong address.
    let wrong = object_file(&store, 2);
    fs::create_dir_all(wrong.parent().unwrap()).unwrap();
    fs::copy(object_file(&store, 1), &wrong).unwrap();
    assert!(store.get(&spec(2)).is_none());
    let verify = store.verify().unwrap();
    assert_eq!(verify.misplaced.len(), 1);
    assert_eq!(store.gc().unwrap().removed_objects, 1);
    // The correctly-filed entry survives.
    assert_eq!(store.get(&spec(1)), Some(record(1)));
}

#[test]
fn crash_simulation_stray_tmp_files_are_ignored_and_gced() {
    let store = temp_store("crash");
    store.put(&record(1)).unwrap();
    // Simulate writers killed mid-write: half-written payloads stranded
    // in tmp/ under various names.
    let tmp = store.root().join("tmp");
    fs::write(tmp.join("deadbeef.12345.0.tmp"), "{\"schema\":1,\"ha").unwrap();
    fs::write(
        tmp.join(format!("{}.999.7.tmp", spec(1).content_hash())),
        record(1).to_line(),
    )
    .unwrap();
    fs::write(tmp.join("noise"), [0u8; 10]).unwrap();
    // Reads and writes are unaffected.
    assert_eq!(store.get(&spec(1)), Some(record(1)));
    store.put(&record(2)).unwrap();
    assert_eq!(store.get(&spec(2)), Some(record(2)));
    // Stats surface the leftovers. Default gc spares them — the files
    // are fresh, indistinguishable from a live writer's in-flight
    // records in a shared store — but an exclusive owner (zero grace)
    // clears exactly them.
    assert_eq!(store.stats().unwrap().stray_tmp, 3);
    assert_eq!(store.gc().unwrap().removed_tmp, 0);
    assert_eq!(store.stats().unwrap().stray_tmp, 3);
    let gc = store.gc_with_grace(std::time::Duration::ZERO).unwrap();
    assert_eq!(gc.removed_tmp, 3);
    assert_eq!(gc.removed_objects, 0);
    assert_eq!(gc.kept, 2);
    assert_eq!(store.stats().unwrap().stray_tmp, 0);
    assert_eq!(store.get(&spec(1)), Some(record(1)));
}

#[test]
fn concurrent_writers_on_the_same_key_never_corrupt() {
    let store = temp_store("concurrent");
    let threads = 8;
    let rounds = 25;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                for _ in 0..rounds {
                    store.put(&record(7)).unwrap();
                }
            });
        }
        // A racing reader sees either a miss (before first publication)
        // or the complete record — never a torn write.
        scope.spawn(|| {
            for _ in 0..threads * rounds {
                if let Some(found) = store.get(&spec(7)) {
                    assert_eq!(found, record(7));
                }
            }
        });
    });
    assert_eq!(store.get(&spec(7)), Some(record(7)));
    let stats = store.stats().unwrap();
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.stray_tmp, 0, "every temp file was renamed or cleaned");
    assert!(store.verify().unwrap().is_clean());
}

#[test]
fn concurrent_writers_on_distinct_keys_all_land() {
    let store = temp_store("concurrent-distinct");
    let per_thread = 10u64;
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let store = &store;
            scope.spawn(move || {
                for i in 0..per_thread {
                    store.put(&record(t * per_thread + i)).unwrap();
                }
            });
        }
    });
    assert_eq!(store.stats().unwrap().entries, 40);
    for seed in 0..40 {
        assert_eq!(store.get(&spec(seed)), Some(record(seed)));
    }
}

#[test]
fn second_sweep_pass_is_all_hits_with_byte_identical_jsonl() {
    let store = temp_store("determinism");
    let grid = SweepGrid {
        benchmarks: vec![
            ("ghz".into(), vec![("size".into(), "3".into())]),
            ("ghz".into(), vec![("size".into(), "5".into())]),
        ],
        devices: vec!["IonQ".into(), "IBM-Montreal".into()],
        shots: vec![64, 128],
        seeds: vec![3],
        repetitions: 2,
        transpile: TranspileSpec::default(),
        division: "closed".into(),
    };
    let specs = grid.expand();
    assert_eq!(specs.len(), 8);
    let executions = AtomicUsize::new(0);
    let exec = |spec: &RunSpec| {
        executions.fetch_add(1, Ordering::Relaxed);
        // A deterministic stand-in executor: pure function of the spec.
        Ok(RunOutcome {
            scores: (0..spec.repetitions)
                .map(|r| (spec.seed + spec.shots + r) as f64 / 1000.0)
                .collect(),
            swap_count: spec.shots / 2,
            two_qubit_gates: spec.shots,
        })
    };
    let engine = SweepEngine::new(&store);
    let mut first = Vec::new();
    let report1 = engine.run_to_writer(&specs, exec, &mut first).unwrap();
    assert_eq!(report1.stats.misses, 8);
    assert_eq!(executions.load(Ordering::Relaxed), 8);

    let mut second = Vec::new();
    let report2 = engine.run_to_writer(&specs, exec, &mut second).unwrap();
    assert_eq!(report2.stats.hits, 8, "second pass must be all-hits");
    assert_eq!(report2.stats.misses, 0);
    assert_eq!(
        executions.load(Ordering::Relaxed),
        8,
        "second pass must perform zero executions"
    );
    assert_eq!(first, second, "JSONL must be byte-identical across passes");
    // Every line is a valid, hash-consistent record.
    for line in String::from_utf8(second).unwrap().lines() {
        RunRecord::from_str(line).unwrap();
    }
}

#[test]
fn interrupted_sweep_resumes_where_it_left_off() {
    let store = temp_store("resume");
    let specs: Vec<RunSpec> = (0..6).map(spec_n).collect();
    fn spec_n(n: u64) -> RunSpec {
        RunSpec::new("ghz", vec![("size".into(), "3".into())], "AQT", 32, 1, n)
    }
    let exec = |spec: &RunSpec| {
        Ok(RunOutcome {
            scores: vec![spec.seed as f64 / 10.0],
            swap_count: 0,
            two_qubit_gates: 1,
        })
    };
    // "Crash" after the first three jobs: only they were persisted.
    let engine = SweepEngine::new(&store);
    engine.run(&specs[..3], exec);
    // The rerun of the full grid executes only the remainder.
    let executions = AtomicUsize::new(0);
    let report = engine.run(&specs, |spec| {
        executions.fetch_add(1, Ordering::Relaxed);
        exec(spec)
    });
    assert_eq!(report.stats.hits, 3);
    assert_eq!(report.stats.misses, 3);
    assert_eq!(executions.load(Ordering::Relaxed), 3);
}
