//! Persisted run records: spec + outcome, one JSON object per run.
//!
//! A record is a pure function of its spec (outcomes are deterministic
//! given the spec — see the module docs in [`crate::spec`]), so its
//! serialization is byte-stable: replaying a sweep from cache produces
//! JSONL identical to the first pass. Wall-clock measurements therefore
//! live in sweep stats, never in records.

use crate::json::Json;
use crate::spec::{RunSpec, SCHEMA_VERSION};

/// The outcome of executing one [`RunSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Per-repetition benchmark scores, in repetition order.
    pub scores: Vec<f64>,
    /// SWAPs the router inserted across the benchmark's circuits.
    pub swap_count: u64,
    /// Native two-qubit gates in the executed circuit(s).
    pub two_qubit_gates: u64,
}

impl RunOutcome {
    /// Mean score across repetitions (0 for an empty run).
    pub fn mean_score(&self) -> f64 {
        if self.scores.is_empty() {
            return 0.0;
        }
        self.scores.iter().sum::<f64>() / self.scores.len() as f64
    }

    /// Population standard deviation across repetitions.
    pub fn std_dev(&self) -> f64 {
        if self.scores.len() < 2 {
            return 0.0;
        }
        let m = self.mean_score();
        (self.scores.iter().map(|s| (s - m) * (s - m)).sum::<f64>() / self.scores.len() as f64)
            .sqrt()
    }
}

/// A cacheable run artifact: the spec, its content hash, and the outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// What was run.
    pub spec: RunSpec,
    /// What it produced.
    pub outcome: RunOutcome,
}

impl RunRecord {
    /// JSON encoding. The embedded `hash` field is redundant with the
    /// spec (it is recomputed and checked on read) but makes records
    /// self-describing and lets `cache verify` detect spec tampering.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::uint(SCHEMA_VERSION)),
            ("hash".into(), Json::str(self.spec.content_hash())),
            ("spec".into(), self.spec.to_json()),
            (
                "outcome".into(),
                Json::Obj(vec![
                    (
                        "scores".into(),
                        Json::Arr(
                            self.outcome
                                .scores
                                .iter()
                                .map(|&s| Json::float(s))
                                .collect(),
                        ),
                    ),
                    ("mean_score".into(), Json::float(self.outcome.mean_score())),
                    ("std_dev".into(), Json::float(self.outcome.std_dev())),
                    ("swap_count".into(), Json::uint(self.outcome.swap_count)),
                    (
                        "two_qubit_gates".into(),
                        Json::uint(self.outcome.two_qubit_gates),
                    ),
                ]),
            ),
        ])
    }

    /// One-line serialization — both the on-disk object format and the
    /// sweep JSONL line format.
    pub fn to_line(&self) -> String {
        self.to_json().to_string()
    }
}

/// Parses and *validates* a serialized record: schema version must
/// match, the stored hash must equal the recomputed spec hash, and
/// every score must be finite. Any violation is an `Err`, which the
/// store maps to a cache miss.
impl std::str::FromStr for RunRecord {
    type Err = String;

    fn from_str(text: &str) -> Result<RunRecord, String> {
        let value = Json::parse(text)?;
        let schema = value
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or("missing schema version")?;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "schema version {schema} != supported {SCHEMA_VERSION}"
            ));
        }
        let stored_hash = value
            .get("hash")
            .and_then(Json::as_str)
            .ok_or("missing hash")?;
        let spec = RunSpec::from_json(value.get("spec").ok_or("missing spec")?)?;
        if spec.content_hash() != stored_hash {
            return Err("stored hash does not match spec".into());
        }
        let outcome = value.get("outcome").ok_or("missing outcome")?;
        let scores_json = outcome
            .get("scores")
            .and_then(Json::as_arr)
            .ok_or("missing outcome.scores")?;
        let mut scores = Vec::with_capacity(scores_json.len());
        for s in scores_json {
            let s = s.as_f64().ok_or("non-numeric score")?;
            if !s.is_finite() {
                return Err("non-finite score".into());
            }
            scores.push(s);
        }
        Ok(RunRecord {
            spec,
            outcome: RunOutcome {
                scores,
                swap_count: outcome
                    .get("swap_count")
                    .and_then(Json::as_u64)
                    .ok_or("missing outcome.swap_count")?,
                two_qubit_gates: outcome
                    .get("two_qubit_gates")
                    .and_then(Json::as_u64)
                    .ok_or("missing outcome.two_qubit_gates")?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    fn record() -> RunRecord {
        RunRecord {
            spec: RunSpec::new("ghz", vec![("size".into(), "4".into())], "IonQ", 35, 3, 1),
            outcome: RunOutcome {
                scores: vec![0.91, 0.93, 0.9],
                swap_count: 0,
                two_qubit_gates: 3,
            },
        }
    }

    #[test]
    fn round_trips_byte_identically() {
        let r = record();
        let line = r.to_line();
        let back = RunRecord::from_str(&line).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_line(), line);
    }

    #[test]
    fn outcome_statistics() {
        let o = record().outcome;
        assert!((o.mean_score() - 0.913333333).abs() < 1e-8);
        assert!(o.std_dev() > 0.0);
        let empty = RunOutcome {
            scores: vec![],
            swap_count: 0,
            two_qubit_gates: 0,
        };
        assert_eq!(empty.mean_score(), 0.0);
        assert_eq!(empty.std_dev(), 0.0);
    }

    #[test]
    fn tampered_spec_fails_hash_validation() {
        let line = record().to_line();
        // Flip the device name without updating the hash.
        let tampered = line.replace("IonQ", "AQT");
        assert!(RunRecord::from_str(&tampered).is_err());
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let line = record().to_line().replace("\"schema\":2", "\"schema\":999");
        let err = RunRecord::from_str(&line).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn garbage_inputs_error_not_panic() {
        for bad in ["", "{", "null", "42", "{\"schema\":1}", "not json at all"] {
            assert!(RunRecord::from_str(bad).is_err(), "{bad:?}");
        }
        // Truncation at every prefix length must never panic.
        let line = record().to_line();
        for i in 0..line.len() {
            let _ = RunRecord::from_str(&line[..i]);
        }
    }

    #[test]
    fn non_finite_scores_are_rejected() {
        let mut r = record();
        r.outcome.scores[1] = f64::NAN; // serializes as null
        assert!(RunRecord::from_str(&r.to_line()).is_err());
    }
}
