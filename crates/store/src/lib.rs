//! # supermarq-store — run-artifact store and batch sweep engine
//!
//! The paper's evaluation is a large sweep: every Fig. 2 / Fig. 3 cell
//! is a `(benchmark, size, device, shots, repetitions, seed)` run, and
//! recomputing it from scratch on every invocation dominates cost. This
//! crate makes sweeps **incremental and resumable**:
//!
//! - [`RunSpec`] canonically names a run and derives a stable SHA-256
//!   content hash ([`spec`]).
//! - [`Store`] is an on-disk content-addressed cache of [`RunRecord`]s —
//!   JSON files under `.supermarq-store/`, atomic temp-file+rename
//!   writes, with corrupt or version-mismatched entries treated as
//!   misses, never panics ([`store`]).
//! - [`SweepEngine`] expands a [`SweepGrid`] into jobs, partitions them
//!   into cache hits vs. misses, fans the misses over the rayon pool,
//!   streams results as JSONL, and reports [`SweepStats`] ([`sweep`]).
//!
//! The crate is deliberately *executor-agnostic*: it knows nothing of
//! circuits or simulators. Callers (the `supermarq` runner, the CLI, the
//! figure binaries) supply a `Fn(&RunSpec) -> Result<RunOutcome, String>`
//! closure, which keeps the dependency arrow pointing at this crate and
//! lets tests drive the engine with synthetic executors.

pub mod hash;
pub mod json;
pub mod record;
pub mod spec;
pub mod store;
pub mod sweep;

pub use json::Json;
pub use record::{RunOutcome, RunRecord};
pub use spec::{RunSpec, TranspileSpec, SCHEMA_VERSION};
pub use store::{
    default_root, GcReport, Store, StoreStats, VerifyReport, DEFAULT_STORE_DIR, TMP_GRACE,
};
pub use sweep::{SweepEngine, SweepGrid, SweepReport, SweepResult, SweepStats};
