//! The batch sweep engine: grid expansion, cache partitioning, parallel
//! execution of misses, JSONL streaming, and per-sweep statistics.
//!
//! A sweep is resumable by construction: every job is a [`RunSpec`], the
//! engine asks the store first, and only cache misses reach the
//! executor. Kill a sweep halfway and rerun it — completed cells are
//! hits, the remainder executes, and the emitted JSONL is byte-identical
//! to an uninterrupted run because results are written in spec order and
//! records contain no wall-clock data.

use std::io::{self, Write};
use std::time::Instant;

use rayon::prelude::*;
use supermarq_obs::{counter, FieldValue, Span};

use crate::record::{RunOutcome, RunRecord};
use crate::spec::{RunSpec, TranspileSpec, SCHEMA_VERSION};
use crate::store::Store;
use crate::Json;

/// A declarative sweep grid; [`SweepGrid::expand`] takes the cartesian
/// product into a deterministic job list.
#[derive(Debug, Clone, Default)]
pub struct SweepGrid {
    /// Benchmark points: `(benchmark id, params)`.
    pub benchmarks: Vec<(String, Vec<(String, String)>)>,
    /// Device names.
    pub devices: Vec<String>,
    /// Shot counts to sweep.
    pub shots: Vec<u64>,
    /// Base seeds to sweep.
    pub seeds: Vec<u64>,
    /// Repetitions per run (fixed across the grid).
    pub repetitions: u64,
    /// Transpile configuration (fixed across the grid).
    pub transpile: TranspileSpec,
    /// `closed` or `open` (fixed across the grid).
    pub division: String,
}

impl SweepGrid {
    /// JSON encoding — the wire format `supermarq serve` accepts for
    /// `batch` requests (grids are expanded server-side, so a client
    /// ships one small object instead of N specs).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "benchmarks".into(),
                Json::Arr(
                    self.benchmarks
                        .iter()
                        .map(|(id, params)| {
                            Json::Obj(vec![
                                ("id".into(), Json::str(id.clone())),
                                (
                                    "params".into(),
                                    Json::Obj(
                                        params
                                            .iter()
                                            .map(|(k, v)| (k.clone(), Json::str(v.clone())))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "devices".into(),
                Json::Arr(self.devices.iter().map(|d| Json::str(d.clone())).collect()),
            ),
            (
                "shots".into(),
                Json::Arr(self.shots.iter().map(|&s| Json::uint(s)).collect()),
            ),
            (
                "seeds".into(),
                Json::Arr(self.seeds.iter().map(|&s| Json::uint(s)).collect()),
            ),
            ("repetitions".into(), Json::uint(self.repetitions)),
            (
                "transpile".into(),
                Json::Obj(vec![
                    (
                        "placement".into(),
                        Json::str(self.transpile.placement.clone()),
                    ),
                    (
                        "pipeline".into(),
                        Json::str(self.transpile.pipeline.clone()),
                    ),
                ]),
            ),
            ("division".into(), Json::str(self.division.clone())),
        ])
    }

    /// Decodes a grid from JSON. Strict: every field present and
    /// correctly typed, or an error naming the offender — a malformed
    /// network request must produce a message, never a panic.
    pub fn from_json(value: &Json) -> Result<SweepGrid, String> {
        let arr_field = |key: &str| -> Result<&[Json], String> {
            value
                .get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("missing or non-array field '{key}'"))
        };
        let mut benchmarks = Vec::new();
        for entry in arr_field("benchmarks")? {
            let id = entry
                .get("id")
                .and_then(Json::as_str)
                .ok_or("benchmark entry missing string 'id'")?
                .to_string();
            let params = match entry.get("params") {
                Some(Json::Obj(fields)) => {
                    let mut params = Vec::with_capacity(fields.len());
                    for (k, v) in fields {
                        let v = v
                            .as_str()
                            .ok_or_else(|| format!("non-string param '{k}'"))?;
                        params.push((k.clone(), v.to_string()));
                    }
                    params
                }
                _ => return Err("benchmark entry missing object 'params'".into()),
            };
            benchmarks.push((id, params));
        }
        let mut devices = Vec::new();
        for d in arr_field("devices")? {
            devices.push(d.as_str().ok_or("non-string device name")?.to_string());
        }
        let uints = |key: &str| -> Result<Vec<u64>, String> {
            arr_field(key)?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .ok_or_else(|| format!("non-integer entry in '{key}'"))
                })
                .collect()
        };
        let transpile = match value.get("transpile") {
            Some(t @ Json::Obj(_)) => TranspileSpec {
                placement: t
                    .get("placement")
                    .and_then(Json::as_str)
                    .ok_or("missing transpile.placement")?
                    .to_string(),
                pipeline: t
                    .get("pipeline")
                    .and_then(Json::as_str)
                    .ok_or("missing transpile.pipeline")?
                    .to_string(),
            },
            _ => return Err("missing or non-object field 'transpile'".into()),
        };
        Ok(SweepGrid {
            benchmarks,
            devices,
            shots: uints("shots")?,
            seeds: uints("seeds")?,
            repetitions: value
                .get("repetitions")
                .and_then(Json::as_u64)
                .ok_or("missing or non-integer field 'repetitions'")?,
            transpile,
            division: value
                .get("division")
                .and_then(Json::as_str)
                .ok_or("missing or non-string field 'division'")?
                .to_string(),
        })
    }

    /// Expands the grid in deterministic nested order:
    /// benchmark → device → shots → seed.
    pub fn expand(&self) -> Vec<RunSpec> {
        let mut specs = Vec::new();
        for (benchmark, params) in &self.benchmarks {
            for device in &self.devices {
                for &shots in &self.shots {
                    for &seed in &self.seeds {
                        let mut spec = RunSpec::new(
                            benchmark.clone(),
                            params.clone(),
                            device.clone(),
                            shots,
                            self.repetitions,
                            seed,
                        );
                        spec.transpile = self.transpile.clone();
                        spec.division = if self.division.is_empty() {
                            "closed".into()
                        } else {
                            self.division.clone()
                        };
                        specs.push(spec);
                    }
                }
            }
        }
        specs
    }
}

/// Per-sweep statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepStats {
    /// Jobs in the sweep.
    pub total: usize,
    /// Jobs served from the store.
    pub hits: usize,
    /// Jobs that had to execute.
    pub misses: usize,
    /// Jobs whose executor returned an error.
    pub failures: usize,
    /// Executed jobs whose result could not be persisted (I/O error);
    /// the sweep still reports their outcomes.
    pub store_errors: usize,
    /// Wall-clock duration of the sweep in milliseconds (`u64` millis is
    /// ~584M years — plenty for a serialized summary field).
    pub elapsed_ms: u64,
}

impl SweepStats {
    /// One-line summary, grep-friendly for CI assertions.
    pub fn summary(&self) -> String {
        format!(
            "sweep: total={} hits={} misses={} failures={} store_errors={} elapsed_ms={}",
            self.total, self.hits, self.misses, self.failures, self.store_errors, self.elapsed_ms
        )
    }
}

/// The outcome of one sweep job, in the order the specs were given.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// The job's spec.
    pub spec: RunSpec,
    /// Whether the result came from the store.
    pub from_cache: bool,
    /// Whether persisting a fresh success failed (I/O error). The
    /// outcome is still reported; the store just couldn't keep it.
    pub store_error: bool,
    /// The record, or the executor's error message.
    pub outcome: Result<RunRecord, String>,
}

impl SweepResult {
    /// The JSONL line for this result. Success lines are exactly the
    /// stored record serialization; failure lines carry the error and
    /// the spec. Both are deterministic.
    pub fn to_line(&self) -> String {
        match &self.outcome {
            Ok(record) => record.to_line(),
            Err(message) => Json::Obj(vec![
                ("schema".into(), Json::uint(SCHEMA_VERSION)),
                ("error".into(), Json::str(message.clone())),
                ("spec".into(), self.spec.to_json()),
            ])
            .to_string(),
        }
    }
}

/// A completed sweep: per-job results plus aggregate stats.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// One result per input spec, in input order.
    pub results: Vec<SweepResult>,
    /// Aggregate statistics.
    pub stats: SweepStats,
}

impl SweepReport {
    /// Looks up the result for a spec by content hash.
    pub fn result_for(&self, spec: &RunSpec) -> Option<&SweepResult> {
        let hash = spec.content_hash();
        self.results.iter().find(|r| r.spec.content_hash() == hash)
    }
}

/// Runs sweeps against one store.
pub struct SweepEngine<'a> {
    store: &'a Store,
    use_cache: bool,
}

impl<'a> SweepEngine<'a> {
    /// An engine over `store` with caching enabled.
    pub fn new(store: &'a Store) -> SweepEngine<'a> {
        SweepEngine {
            store,
            use_cache: true,
        }
    }

    /// Disables cache *reads* (every job executes; results are still
    /// persisted) — the force-recompute escape hatch.
    pub fn with_cache(mut self, use_cache: bool) -> SweepEngine<'a> {
        self.use_cache = use_cache;
        self
    }

    /// Runs a single job end to end: consult the store (honoring
    /// [`SweepEngine::with_cache`]), execute on miss, persist fresh
    /// successes. This is the unit of work shared by
    /// [`SweepEngine::run`]'s fan-out and the serve daemon's workers.
    ///
    /// The store is consulted *here*, at execution time — so a job that
    /// queued behind a twin published meanwhile by another process (or
    /// another worker on a shared store) resolves as a hit instead of a
    /// duplicate simulation. No global obs counters are emitted; batch
    /// callers aggregate their own.
    pub fn run_job<F>(&self, spec: &RunSpec, exec: F) -> SweepResult
    where
        F: FnOnce(&RunSpec) -> Result<RunOutcome, String>,
    {
        if self.use_cache {
            if let Some(record) = self.store.get(spec) {
                return SweepResult {
                    spec: spec.clone(),
                    from_cache: true,
                    store_error: false,
                    outcome: Ok(record),
                };
            }
        }
        match exec(spec) {
            Ok(outcome) => {
                let record = RunRecord {
                    spec: spec.clone(),
                    outcome,
                };
                let store_error = self.store.put(&record).is_err();
                SweepResult {
                    spec: spec.clone(),
                    from_cache: false,
                    store_error,
                    outcome: Ok(record),
                }
            }
            Err(message) => SweepResult {
                spec: spec.clone(),
                from_cache: false,
                store_error: false,
                outcome: Err(message),
            },
        }
    }

    /// Runs every spec: cache hits resolve immediately, misses fan out
    /// over the rayon pool through `exec`, and fresh results are
    /// persisted. Results come back in input order.
    pub fn run<F>(&self, specs: &[RunSpec], exec: F) -> SweepReport
    where
        F: Fn(&RunSpec) -> Result<RunOutcome, String> + Sync,
    {
        let start = Instant::now();
        let run_span = Span::open("sweep.run").with("jobs", specs.len());
        let mut stats = SweepStats {
            total: specs.len(),
            ..SweepStats::default()
        };
        // Partition into hits and misses up front.
        let cached: Vec<Option<RunRecord>> = specs
            .iter()
            .map(|spec| {
                if self.use_cache {
                    self.store.get(spec)
                } else {
                    None
                }
            })
            .collect();
        // Fan the misses over the pool. Each job is independent; results
        // land back in their input slot, so output order (and therefore
        // the JSONL byte stream) is deterministic at any thread count.
        // Job spans close on pool workers, so they carry an explicit
        // parent id (and trace, when one is active) instead of relying
        // on the thread-current chain.
        let parent = run_span.id();
        let trace = supermarq_obs::current_trace();
        let miss_indices: Vec<usize> = (0..specs.len()).filter(|&i| cached[i].is_none()).collect();
        // Each miss goes through `run_job`, the same path the serve
        // daemon's workers use. (A job may still resolve as a hit there
        // if a cooperating process published it between partition and
        // execution; the partition-time stats below keep counting it as
        // a miss, which is what "we didn't have it when asked" means.)
        let executed: Vec<(usize, SweepResult)> = miss_indices
            .par_iter()
            .map(|&i| {
                let mut span = Span::open_with_link("sweep.job", parent, trace).with("index", i);
                let result = self.run_job(&specs[i], |spec| exec(spec));
                span.record("ok", result.outcome.is_ok());
                (i, result)
            })
            .collect();
        let mut fresh: Vec<Option<SweepResult>> = vec![None; specs.len()];
        for (i, result) in executed {
            if result.outcome.is_err() {
                stats.failures += 1;
            }
            if result.store_error {
                stats.store_errors += 1;
            }
            fresh[i] = Some(result);
        }
        let mut results = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            match (&cached[i], fresh[i].take()) {
                (Some(record), _) => {
                    stats.hits += 1;
                    results.push(SweepResult {
                        spec: spec.clone(),
                        from_cache: true,
                        store_error: false,
                        outcome: Ok(record.clone()),
                    });
                }
                (None, Some(result)) => {
                    stats.misses += 1;
                    results.push(result);
                }
                (None, None) => unreachable!("every miss index was executed"),
            }
        }
        stats.elapsed_ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
        counter!("store.hits").add(stats.hits as u64);
        counter!("store.misses").add(stats.misses as u64);
        counter!("store.errors").add((stats.failures + stats.store_errors) as u64);
        supermarq_obs::emit_event(
            "sweep.stats",
            &[
                ("total", FieldValue::from(stats.total)),
                ("hits", FieldValue::from(stats.hits)),
                ("misses", FieldValue::from(stats.misses)),
                ("failures", FieldValue::from(stats.failures)),
                ("store_errors", FieldValue::from(stats.store_errors)),
                ("elapsed_ms", FieldValue::from(stats.elapsed_ms)),
            ],
        );
        SweepReport { results, stats }
    }

    /// Like [`SweepEngine::run`], additionally streaming one JSONL line
    /// per result (in spec order) to `sink`.
    pub fn run_to_writer<F>(
        &self,
        specs: &[RunSpec],
        exec: F,
        sink: &mut dyn Write,
    ) -> io::Result<SweepReport>
    where
        F: Fn(&RunSpec) -> Result<RunOutcome, String> + Sync,
    {
        let report = self.run(specs, exec);
        for result in &report.results {
            sink.write_all(result.to_line().as_bytes())?;
            sink.write_all(b"\n")?;
        }
        sink.flush()?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_store(tag: &str) -> Store {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "supermarq-sweep-unit-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    fn grid() -> SweepGrid {
        SweepGrid {
            benchmarks: vec![
                ("ghz".into(), vec![("size".into(), "3".into())]),
                ("ghz".into(), vec![("size".into(), "4".into())]),
            ],
            devices: vec!["IonQ".into(), "AQT".into()],
            shots: vec![50],
            seeds: vec![1, 2],
            repetitions: 2,
            transpile: TranspileSpec::default(),
            division: "closed".into(),
        }
    }

    fn fake_exec(spec: &RunSpec) -> Result<RunOutcome, String> {
        // Deterministic pure function of the spec.
        let x = (spec.seed as f64 + spec.shots as f64) / 1000.0;
        Ok(RunOutcome {
            scores: (0..spec.repetitions)
                .map(|r| x + r as f64 / 100.0)
                .collect(),
            swap_count: spec.seed,
            two_qubit_gates: spec.shots,
        })
    }

    #[test]
    fn grid_expansion_is_deterministic_cartesian_product() {
        let specs = grid().expand();
        // 2 benchmarks x 2 devices x 1 shot count x 2 seeds.
        assert_eq!(specs.len(), 8);
        assert_eq!(specs, grid().expand());
        // Nested order: benchmark outermost, seed innermost.
        assert_eq!(specs[0].device, "IonQ");
        assert_eq!(specs[0].seed, 1);
        assert_eq!(specs[1].seed, 2);
        assert_eq!(specs[2].device, "AQT");
    }

    #[test]
    fn first_pass_misses_second_pass_hits() {
        let store = temp_store("passes");
        let specs = grid().expand();
        let engine = SweepEngine::new(&store);
        let first = engine.run(&specs, fake_exec);
        assert_eq!(first.stats.misses, specs.len());
        assert_eq!(first.stats.hits, 0);
        assert_eq!(first.stats.failures, 0);
        let second = engine.run(&specs, |_| -> Result<RunOutcome, String> {
            panic!("second pass must not execute anything")
        });
        assert_eq!(second.stats.hits, specs.len());
        assert_eq!(second.stats.misses, 0);
        for (a, b) in first.results.iter().zip(&second.results) {
            assert_eq!(a.outcome, b.outcome);
            assert!(!a.from_cache);
            assert!(b.from_cache);
        }
    }

    #[test]
    fn disabling_cache_forces_execution_but_still_persists() {
        let store = temp_store("nocache");
        let specs = grid().expand();
        let calls = AtomicUsize::new(0);
        let exec = |spec: &RunSpec| {
            calls.fetch_add(1, Ordering::Relaxed);
            fake_exec(spec)
        };
        SweepEngine::new(&store).with_cache(false).run(&specs, exec);
        SweepEngine::new(&store).with_cache(false).run(&specs, exec);
        assert_eq!(calls.load(Ordering::Relaxed), 2 * specs.len());
        // Results were persisted: a caching engine now sees all hits.
        let report = SweepEngine::new(&store).run(&specs, exec);
        assert_eq!(report.stats.hits, specs.len());
    }

    #[test]
    fn failures_are_counted_not_cached_and_rendered_as_error_lines() {
        let store = temp_store("failures");
        let specs = grid().expand();
        let exec = |spec: &RunSpec| {
            if spec.device == "AQT" {
                Err(format!("{} does not fit", spec.benchmark))
            } else {
                fake_exec(spec)
            }
        };
        let mut out = Vec::new();
        let report = SweepEngine::new(&store)
            .run_to_writer(&specs, exec, &mut out)
            .unwrap();
        assert_eq!(report.stats.failures, 4);
        assert_eq!(report.stats.misses, specs.len());
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), specs.len());
        assert_eq!(text.matches("\"error\"").count(), 4);
        // Failures were not persisted: a second pass re-executes them.
        let second = SweepEngine::new(&store).run(&specs, exec);
        assert_eq!(second.stats.hits, specs.len() - 4);
        assert_eq!(second.stats.failures, 4);
    }

    #[test]
    fn report_lookup_by_spec() {
        let store = temp_store("lookup");
        let specs = grid().expand();
        let report = SweepEngine::new(&store).run(&specs, fake_exec);
        let found = report.result_for(&specs[3]).unwrap();
        assert_eq!(found.spec, specs[3]);
        let mut absent = specs[0].clone();
        absent.seed = 777;
        assert!(report.result_for(&absent).is_none());
    }

    #[test]
    fn grid_json_round_trips_through_the_wire_format() {
        let grid = grid();
        let encoded = grid.to_json().to_string();
        let decoded = SweepGrid::from_json(&Json::parse(&encoded).unwrap()).unwrap();
        // The grid itself has no PartialEq; the expansion is the
        // contract that matters on the wire.
        assert_eq!(decoded.expand(), grid.expand());
        assert_eq!(decoded.to_json().to_string(), encoded);
    }

    #[test]
    fn grid_from_json_rejects_malformed_input_with_messages() {
        let bad = [
            ("{}", "benchmarks"),
            (r#"{"benchmarks":[{"id":"ghz"}]}"#, "params"),
            (
                r#"{"benchmarks":[],"devices":[1],"shots":[],"seeds":[],"repetitions":1,"transpile":{"placement":"line","pipeline":"default"},"division":"closed"}"#,
                "device",
            ),
            (
                r#"{"benchmarks":[],"devices":[],"shots":[-3],"seeds":[],"repetitions":1,"transpile":{"placement":"line","pipeline":"default"},"division":"closed"}"#,
                "shots",
            ),
            (
                r#"{"benchmarks":[],"devices":[],"shots":[],"seeds":[],"repetitions":1,"transpile":"none","division":"closed"}"#,
                "transpile",
            ),
            (
                r#"{"benchmarks":[],"devices":[],"shots":[],"seeds":[],"transpile":{"placement":"line","pipeline":"default"},"division":"closed"}"#,
                "repetitions",
            ),
        ];
        for (text, needle) in bad {
            let err = SweepGrid::from_json(&Json::parse(text).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn run_job_hits_executes_and_persists() {
        let store = temp_store("runjob");
        let spec = &grid().expand()[0];
        let engine = SweepEngine::new(&store);
        let first = engine.run_job(spec, fake_exec);
        assert!(!first.from_cache);
        assert!(!first.store_error);
        // Persisted: the rerun is a hit and must not execute.
        let second = engine.run_job(spec, |_| panic!("warm job must not execute"));
        assert!(second.from_cache);
        assert_eq!(first.outcome, second.outcome);
        assert_eq!(first.to_line(), second.to_line());
        // Failures are reported but never cached.
        let mut failing = spec.clone();
        failing.seed = 999;
        let failed = engine.run_job(&failing, |_| Err("boom".into()));
        assert_eq!(failed.outcome, Err("boom".into()));
        assert!(failed.to_line().contains("\"error\":\"boom\""));
        let retried = engine.run_job(&failing, fake_exec);
        assert!(!retried.from_cache, "failures must not be cached");
        assert!(retried.outcome.is_ok());
    }

    #[test]
    fn run_job_without_cache_always_executes() {
        let store = temp_store("runjob-nocache");
        let spec = &grid().expand()[0];
        let engine = SweepEngine::new(&store).with_cache(false);
        let calls = AtomicUsize::new(0);
        for _ in 0..2 {
            let result = engine.run_job(spec, |s| {
                calls.fetch_add(1, Ordering::Relaxed);
                fake_exec(s)
            });
            assert!(!result.from_cache);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        // Results still persisted for caching readers.
        assert!(
            SweepEngine::new(&store)
                .run_job(spec, |_| panic!("must hit"))
                .from_cache
        );
    }

    #[test]
    fn stats_summary_is_grep_friendly() {
        let stats = SweepStats {
            total: 8,
            hits: 8,
            misses: 0,
            failures: 0,
            store_errors: 0,
            elapsed_ms: 12,
        };
        let line = stats.summary();
        assert!(line.contains("hits=8"));
        assert!(line.contains("misses=0"));
    }
}
