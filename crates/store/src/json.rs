//! A minimal JSON value type with a deterministic writer and a strict
//! parser.
//!
//! The store persists run records as JSON and must (a) produce
//! *byte-identical* output for identical values — cache hits are diffed
//! against fresh runs — and (b) never panic on the bytes it reads back,
//! because a cache entry may be truncated, garbled, or written by a
//! future schema. The workspace has no network access to crates.io, so
//! this is a small hand-rolled implementation of exactly the subset the
//! store needs: objects keep insertion order (the writer emits fields in
//! the order the encoder pushed them, making serialization a pure
//! function of the value), and numbers distinguish unsigned/signed
//! integers from floats so `u64` seeds round-trip exactly.

/// A JSON number. `u64`/`i64` are kept exact (an `f64` cannot represent
/// every 64-bit seed); floats print via Rust's shortest-roundtrip `{}`
/// formatting, which re-parses to the identical bit pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Everything else.
    F(f64),
}

impl Number {
    /// Lossy view as `f64` (exact for small integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }

    /// Exact `u64` view, if the number is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(_) => None,
        }
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any numeric literal.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Field order is preserved (insertion order when built,
    /// document order when parsed) so writing is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an unsigned integer.
    pub fn uint(v: u64) -> Json {
        Json::Num(Number::U(v))
    }

    /// Convenience constructor for a float.
    pub fn float(v: f64) -> Json {
        Json::Num(Number::F(v))
    }

    /// Convenience constructor for a string.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Exact unsigned-integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Numeric view (lossy for huge integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(Number::U(v)) => out.push_str(&v.to_string()),
            Json::Num(Number::I(v)) => out.push_str(&v.to_string()),
            Json::Num(Number::F(v)) => {
                if v.is_finite() {
                    // Shortest representation that round-trips exactly.
                    out.push_str(&v.to_string());
                } else {
                    // JSON has no NaN/Inf; scores are clamped to [0, 1] so
                    // this only fires on corrupted inputs. `null` keeps the
                    // document valid and fails record validation on read.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document. Trailing non-whitespace is an
    /// error; the parser never panics, recursion is depth-limited.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

/// Compact single-line JSON. Deterministic: the same value always
/// produces the same bytes (so `to_string()` is stable too).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 64;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".into());
    }
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid utf-8 in number")?;
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if !is_float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::Num(Number::U(v)));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::Num(Number::I(v)));
        }
    }
    text.parse::<f64>()
        .map(|v| Json::Num(Number::F(v)))
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed for the store's
                        // ASCII-dominated records; reject rather than
                        // silently mangle.
                        let c = char::from_u32(code).ok_or("bad \\u code point")?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err("bad escape sequence".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8 in string")?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "42", "-7", "0.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text, "{text}");
        }
    }

    #[test]
    fn u64_seeds_round_trip_exactly() {
        let seed = u64::MAX - 3;
        let v = Json::parse(&seed.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(seed));
        assert_eq!(v.to_string(), seed.to_string());
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 123456.789, f64::MIN_POSITIVE] {
            let text = Json::float(x).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::float(f64::NAN).to_string(), "null");
        assert_eq!(Json::float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn object_field_order_is_preserved() {
        let v = Json::Obj(vec![
            ("z".into(), Json::uint(1)),
            ("a".into(), Json::uint(2)),
        ]);
        assert_eq!(v.to_string(), "{\"z\":1,\"a\":2}");
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn escapes_round_trip() {
        let s = "line1\nline2\t\"quoted\" \\slash\u{1}";
        let text = Json::str(s).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn nested_structures_parse() {
        let text = "{\"a\":[1,2,{\"b\":null}],\"c\":{\"d\":[true,false]}}";
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "\"unterminated",
            "tru",
            "nul",
            "1.2.3",
            "--5",
            "{\"a\":1}x",
            "[1 2]",
            "\u{0}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let text = format!("{}{}", "[".repeat(500), "]".repeat(500));
        assert!(Json::parse(&text).is_err());
    }

    #[test]
    fn whitespace_tolerant_parse() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.to_string(), "{\"a\":[1,2]}");
    }
}
