//! The canonical run specification and its stable content hash.
//!
//! A [`RunSpec`] names everything that determines a run's outcome: the
//! benchmark (id + parameters), the device, the transpile configuration,
//! shots, repetitions, seed, and division. Two runs with equal specs are
//! bit-identical by construction (the simulator derives every RNG stream
//! from the seed alone), so the spec's SHA-256 content hash is a sound
//! cache key: hit ⇒ the stored outcome equals what a fresh run would
//! produce.
//!
//! Hash inputs are the *canonical string* — a line-per-field encoding
//! with sorted, escaped parameters — not the JSON serialization, so
//! cosmetic changes to the JSON layout cannot silently invalidate every
//! cache. Anything that legitimately changes outcomes must appear in the
//! canonical string; bumping [`SCHEMA_VERSION`] invalidates the world.

use crate::json::Json;

/// Version of both the canonical hash encoding and the on-disk record
/// schema. Stored entries whose schema differs are treated as misses and
/// collected by `gc`.
///
/// v2: the transpile configuration became a named pipeline id (replacing
/// the `optimize` + `verify` flag pair), so cache keys distinguish
/// pipelines.
pub const SCHEMA_VERSION: u64 = 2;

/// Transpiler configuration, as stable strings (the store crate does not
/// depend on the transpiler; executors parse these back into their own
/// enums and must reject unknown values).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranspileSpec {
    /// Placement strategy id: `trivial`, `greedy`, or `noise-aware`.
    pub placement: String,
    /// Pipeline name from the transpiler's pass registry:
    /// `closed-default`, `closed-stages`, `no-optimize`, ...
    pub pipeline: String,
}

impl Default for TranspileSpec {
    fn default() -> Self {
        TranspileSpec {
            placement: "greedy".into(),
            pipeline: "closed-default".into(),
        }
    }
}

/// A fully-specified evaluation run — the unit of caching.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Benchmark id, e.g. `ghz` or `qaoa-swap`.
    pub benchmark: String,
    /// Benchmark parameters as string key/value pairs, e.g.
    /// `[("size", "4")]`. Kept sorted by key (see [`RunSpec::normalize`]).
    pub params: Vec<(String, String)>,
    /// Device display name, e.g. `IBM-Montreal`.
    pub device: String,
    /// Transpiler configuration.
    pub transpile: TranspileSpec,
    /// Shots per circuit per repetition.
    pub shots: u64,
    /// Independent repetitions.
    pub repetitions: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// `closed` or `open` (readout-mitigated) division.
    pub division: String,
}

impl RunSpec {
    /// A spec with default transpile config and closed division.
    pub fn new(
        benchmark: impl Into<String>,
        params: Vec<(String, String)>,
        device: impl Into<String>,
        shots: u64,
        repetitions: u64,
        seed: u64,
    ) -> RunSpec {
        let mut spec = RunSpec {
            benchmark: benchmark.into(),
            params,
            device: device.into(),
            transpile: TranspileSpec::default(),
            shots,
            repetitions,
            seed,
            division: "closed".into(),
        };
        spec.normalize();
        spec
    }

    /// Sorts parameters by key so equal specs hash equally regardless of
    /// construction order.
    pub fn normalize(&mut self) {
        self.params.sort();
    }

    /// The canonical encoding the content hash is computed over: one
    /// `key=value` line per field in fixed order, parameters sorted,
    /// values escaped so embedded newlines cannot forge field
    /// boundaries.
    pub fn canonical_string(&self) -> String {
        let mut spec = self.clone();
        spec.normalize();
        let mut out = String::new();
        out.push_str(&format!("schema={SCHEMA_VERSION}\n"));
        out.push_str(&format!("benchmark={}\n", escape(&spec.benchmark)));
        for (k, v) in &spec.params {
            out.push_str(&format!("param.{}={}\n", escape(k), escape(v)));
        }
        out.push_str(&format!("device={}\n", escape(&spec.device)));
        out.push_str(&format!(
            "placement={}\n",
            escape(&spec.transpile.placement)
        ));
        out.push_str(&format!("pipeline={}\n", escape(&spec.transpile.pipeline)));
        out.push_str(&format!("shots={}\n", spec.shots));
        out.push_str(&format!("repetitions={}\n", spec.repetitions));
        out.push_str(&format!("seed={}\n", spec.seed));
        out.push_str(&format!("division={}\n", escape(&spec.division)));
        out
    }

    /// Stable content address: hex SHA-256 of the canonical string.
    pub fn content_hash(&self) -> String {
        crate::hash::sha256_hex(self.canonical_string().as_bytes())
    }

    /// JSON encoding (field order fixed; serialization is deterministic).
    pub fn to_json(&self) -> Json {
        let mut spec = self.clone();
        spec.normalize();
        let params = Json::Obj(
            spec.params
                .iter()
                .map(|(k, v)| (k.clone(), Json::str(v.clone())))
                .collect(),
        );
        Json::Obj(vec![
            ("benchmark".into(), Json::str(spec.benchmark)),
            ("params".into(), params),
            ("device".into(), Json::str(spec.device)),
            (
                "transpile".into(),
                Json::Obj(vec![
                    ("placement".into(), Json::str(spec.transpile.placement)),
                    ("pipeline".into(), Json::str(spec.transpile.pipeline)),
                ]),
            ),
            ("shots".into(), Json::uint(spec.shots)),
            ("repetitions".into(), Json::uint(spec.repetitions)),
            ("seed".into(), Json::uint(spec.seed)),
            ("division".into(), Json::str(spec.division)),
        ])
    }

    /// Decodes a spec from JSON; any missing or mistyped field is an
    /// error (the store maps it to a cache miss, never a panic).
    pub fn from_json(value: &Json) -> Result<RunSpec, String> {
        let str_field = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field '{key}'"))
        };
        let uint_field = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-integer field '{key}'"))
        };
        let params = match value.get("params") {
            Some(Json::Obj(fields)) => {
                let mut params = Vec::with_capacity(fields.len());
                for (k, v) in fields {
                    let v = v
                        .as_str()
                        .ok_or_else(|| format!("non-string param '{k}'"))?;
                    params.push((k.clone(), v.to_string()));
                }
                params
            }
            _ => return Err("missing or non-object field 'params'".into()),
        };
        let transpile = match value.get("transpile") {
            Some(t @ Json::Obj(_)) => {
                let placement = t
                    .get("placement")
                    .and_then(Json::as_str)
                    .ok_or("missing transpile.placement")?
                    .to_string();
                let pipeline = match t.get("pipeline").and_then(Json::as_str) {
                    Some(p) => p.to_string(),
                    // Migration shim: schema-1 specs carried the
                    // (optimize, verify) flag pair instead of a pipeline
                    // name; map them onto the pipeline those flags
                    // historically selected.
                    None => {
                        let optimize = t
                            .get("optimize")
                            .and_then(Json::as_bool)
                            .ok_or("missing transpile.pipeline (or legacy transpile.optimize)")?;
                        let verify = t
                            .get("verify")
                            .and_then(Json::as_str)
                            .ok_or("missing transpile.pipeline (or legacy transpile.verify)")?;
                        legacy_pipeline(optimize, verify)?
                    }
                };
                TranspileSpec {
                    placement,
                    pipeline,
                }
            }
            _ => return Err("missing or non-object field 'transpile'".into()),
        };
        let mut spec = RunSpec {
            benchmark: str_field("benchmark")?,
            params,
            device: str_field("device")?,
            transpile,
            shots: uint_field("shots")?,
            repetitions: uint_field("repetitions")?,
            seed: uint_field("seed")?,
            division: str_field("division")?,
        };
        spec.normalize();
        Ok(spec)
    }
}

/// Escapes `\` and newline so multi-line values cannot collide with the
/// line-oriented canonical encoding.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// The pipeline name a schema-1 `(optimize, verify)` flag pair selected.
fn legacy_pipeline(optimize: bool, verify: &str) -> Result<String, String> {
    let name = match (optimize, verify) {
        (true, "final") => "closed-default",
        (true, "stages") => "closed-stages",
        (true, "off") => "closed-unverified",
        (false, "final") => "no-optimize",
        (false, "stages") => "no-optimize-stages",
        (false, "off") => "no-optimize-unverified",
        _ => return Err(format!("unknown legacy verify level '{verify}'")),
    };
    Ok(name.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> RunSpec {
        RunSpec::new(
            "ghz",
            vec![("size".into(), "4".into())],
            "IBM-Montreal",
            2000,
            3,
            1,
        )
    }

    #[test]
    fn hash_is_stable_across_releases() {
        // Frozen: if this changes, every cache on every machine silently
        // invalidates. Bump SCHEMA_VERSION instead of editing the vector.
        assert_eq!(
            spec().content_hash(),
            crate::hash::sha256_hex(spec().canonical_string().as_bytes())
        );
        assert_eq!(
            spec().canonical_string(),
            "schema=2\nbenchmark=ghz\nparam.size=4\ndevice=IBM-Montreal\nplacement=greedy\npipeline=closed-default\nshots=2000\nrepetitions=3\nseed=1\ndivision=closed\n"
        );
    }

    #[test]
    fn corpus_and_mirror_specs_encode_canonically() {
        // The benchmark registry's corpus ids and `-mirror` variants
        // reuse the frozen schema=2 encoding: the mirror suffix lives in
        // the benchmark field, never in the params, so every
        // pre-existing key is untouched and no schema bump is needed.
        let qft = RunSpec::new("qft", vec![("size".into(), "8".into())], "IonQ", 1000, 3, 7);
        assert_eq!(
            qft.canonical_string(),
            "schema=2\nbenchmark=qft\nparam.size=8\ndevice=IonQ\nplacement=greedy\npipeline=closed-default\nshots=1000\nrepetitions=3\nseed=7\ndivision=closed\n"
        );
        let mirror = RunSpec::new(
            "ghz-mirror",
            vec![("size".into(), "4".into())],
            "IBM-Montreal",
            2000,
            3,
            1,
        );
        assert_eq!(
            mirror.canonical_string(),
            "schema=2\nbenchmark=ghz-mirror\nparam.size=4\ndevice=IBM-Montreal\nplacement=greedy\npipeline=closed-default\nshots=2000\nrepetitions=3\nseed=1\ndivision=closed\n"
        );
        // Same params as the base ghz spec, different id — a distinct
        // cache cell, not a collision.
        assert_ne!(mirror.content_hash(), spec().content_hash());
        assert_eq!(
            SCHEMA_VERSION, 2,
            "registry refactor must not bump the schema"
        );
    }

    #[test]
    fn param_order_does_not_affect_hash() {
        let a = RunSpec::new(
            "bit-code",
            vec![
                ("size".into(), "3".into()),
                ("rounds".into(), "2".into()),
                ("init".into(), "101".into()),
            ],
            "AQT",
            100,
            1,
            0,
        );
        let b = RunSpec::new(
            "bit-code",
            vec![
                ("init".into(), "101".into()),
                ("rounds".into(), "2".into()),
                ("size".into(), "3".into()),
            ],
            "AQT",
            100,
            1,
            0,
        );
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn every_field_feeds_the_hash() {
        let base = spec();
        let mut variants = Vec::new();
        let mut v = base.clone();
        v.benchmark = "vqe".into();
        variants.push(v);
        let mut v = base.clone();
        v.params[0].1 = "5".into();
        variants.push(v);
        let mut v = base.clone();
        v.device = "IonQ".into();
        variants.push(v);
        let mut v = base.clone();
        v.transpile.placement = "trivial".into();
        variants.push(v);
        let mut v = base.clone();
        v.transpile.pipeline = "closed-stages".into();
        variants.push(v);
        let mut v = base.clone();
        v.transpile.pipeline = "no-optimize".into();
        variants.push(v);
        let mut v = base.clone();
        v.shots = 100;
        variants.push(v);
        let mut v = base.clone();
        v.repetitions = 1;
        variants.push(v);
        let mut v = base.clone();
        v.seed = 99;
        variants.push(v);
        let mut v = base.clone();
        v.division = "open".into();
        variants.push(v);
        for v in variants {
            assert_ne!(v.content_hash(), base.content_hash(), "{v:?}");
        }
    }

    #[test]
    fn newline_values_cannot_forge_fields() {
        let mut a = spec();
        a.params = vec![("x".into(), "1\nparam.y=2".into())];
        let mut b = spec();
        b.params = vec![("x".into(), "1".into()), ("y".into(), "2".into())];
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn json_round_trip() {
        let s = spec();
        let back = RunSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.content_hash(), s.content_hash());
    }

    #[test]
    fn legacy_optimize_verify_specs_migrate_to_pipeline_names() {
        // A schema-1 transpile object (optimize + verify, no pipeline)
        // must parse into the pipeline those flags historically selected.
        let cases = [
            (true, "final", "closed-default"),
            (true, "stages", "closed-stages"),
            (true, "off", "closed-unverified"),
            (false, "final", "no-optimize"),
            (false, "stages", "no-optimize-stages"),
            (false, "off", "no-optimize-unverified"),
        ];
        for (optimize, verify, expected) in cases {
            let mut json = spec().to_json();
            if let Json::Obj(fields) = &mut json {
                for (k, v) in fields.iter_mut() {
                    if k == "transpile" {
                        *v = Json::Obj(vec![
                            ("placement".into(), Json::str("greedy")),
                            ("optimize".into(), Json::Bool(optimize)),
                            ("verify".into(), Json::str(verify)),
                        ]);
                    }
                }
            }
            let parsed = RunSpec::from_json(&json).unwrap();
            assert_eq!(
                parsed.transpile.pipeline, expected,
                "({optimize}, {verify})"
            );
        }
        // An unknown legacy verify level is an error, not a guess.
        let mut json = spec().to_json();
        if let Json::Obj(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "transpile" {
                    *v = Json::Obj(vec![
                        ("placement".into(), Json::str("greedy")),
                        ("optimize".into(), Json::Bool(true)),
                        ("verify".into(), Json::str("paranoid")),
                    ]);
                }
            }
        }
        assert!(RunSpec::from_json(&json).is_err());
    }

    #[test]
    fn from_json_rejects_malformed_specs() {
        let good = spec().to_json();
        assert!(RunSpec::from_json(&Json::Null).is_err());
        assert!(RunSpec::from_json(&Json::Obj(vec![])).is_err());
        // Drop each top-level field in turn.
        if let Json::Obj(fields) = &good {
            for i in 0..fields.len() {
                let mut pruned = fields.clone();
                pruned.remove(i);
                assert!(
                    RunSpec::from_json(&Json::Obj(pruned)).is_err(),
                    "dropping {} should fail",
                    fields[i].0
                );
            }
        }
    }
}
