//! The on-disk content-addressed store.
//!
//! Layout (all JSON, human-inspectable):
//!
//! ```text
//! .supermarq-store/
//!   objects/<h[0..2]>/<h>.json   # one validated RunRecord per file
//!   tmp/<h>.<pid>.<n>.tmp        # in-flight writes (renamed into place)
//! ```
//!
//! Guarantees:
//! - **Atomic publication** — records are written to `tmp/` and
//!   `rename`d into `objects/`; readers never observe a half-written
//!   object. A crash leaves only a stray `tmp/` file, which reads
//!   ignore and [`Store::gc`] removes.
//! - **Reads never panic** — truncated, garbled, tampered, or
//!   schema-mismatched entries are cache *misses*, and `gc` deletes
//!   them.
//! - **Concurrent writers are safe** — each in-flight write gets a
//!   unique temp name (pid + global counter); last rename wins, and
//!   since records are pure functions of their spec, all writers carry
//!   identical bytes.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use supermarq_obs::Span;

use crate::json::Json;
use crate::record::RunRecord;
use crate::spec::RunSpec;

/// Default store directory name, resolved relative to the working
/// directory unless the `SUPERMARQ_STORE` environment variable names
/// another location.
pub const DEFAULT_STORE_DIR: &str = ".supermarq-store";

/// Monotonic discriminator for temp-file names within this process.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// How recently a `tmp/` file must have been modified for [`Store::gc`]
/// to consider it *in flight* rather than crash-stranded. A store
/// directory is shared between the serve daemon and independent
/// `supermarq batch` processes; a gc racing a live writer must not
/// delete the temp file out from under its pending rename.
pub const TMP_GRACE: Duration = Duration::from_secs(60);

/// Aggregate store statistics (`supermarq cache stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Object files present.
    pub entries: usize,
    /// Total bytes across object files.
    pub bytes: u64,
    /// Stray in-flight files under `tmp/` (crash leftovers).
    pub stray_tmp: usize,
}

impl StoreStats {
    /// Strict-JSON encoding — the single serializer shared by
    /// `supermarq cache stats --format json` and the serve daemon's
    /// `stats` response, so both speak one schema.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("entries".into(), Json::uint(self.entries as u64)),
            ("bytes".into(), Json::uint(self.bytes)),
            ("stray_tmp".into(), Json::uint(self.stray_tmp as u64)),
        ])
    }
}

/// Full-scan validation report (`supermarq cache verify`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VerifyReport {
    /// Entries that parsed and validated.
    pub ok: usize,
    /// Entries that failed to read/parse/validate, with the reason.
    pub corrupt: Vec<(PathBuf, String)>,
    /// Entries whose file name does not match their content hash.
    pub misplaced: Vec<PathBuf>,
}

impl VerifyReport {
    /// True when every entry validated.
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty() && self.misplaced.is_empty()
    }
}

/// Garbage-collection report (`supermarq cache gc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Stray temp files removed.
    pub removed_tmp: usize,
    /// Corrupt / schema-mismatched / misplaced objects removed.
    pub removed_objects: usize,
    /// Valid entries kept.
    pub kept: usize,
}

/// A content-addressed run-record store rooted at one directory.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Store> {
        let root = root.into();
        fs::create_dir_all(root.join("objects"))?;
        fs::create_dir_all(root.join("tmp"))?;
        Ok(Store { root })
    }

    /// Opens the default store: `$SUPERMARQ_STORE` if set, else
    /// [`DEFAULT_STORE_DIR`] in the working directory.
    pub fn open_default() -> io::Result<Store> {
        Store::open(default_root())
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the object file for a given content hash.
    pub fn object_path(&self, hash: &str) -> PathBuf {
        let shard = hash.get(..2).unwrap_or("xx");
        self.root
            .join("objects")
            .join(shard)
            .join(format!("{hash}.json"))
    }

    /// Looks up a record by spec. Returns `None` on absence *or* on any
    /// form of bad data — truncation, garbling, schema mismatch, or a
    /// record whose spec hashes differently than the file name claims.
    pub fn get(&self, spec: &RunSpec) -> Option<RunRecord> {
        let mut span = Span::open("store.read");
        let hash = spec.content_hash();
        let result = (|| {
            let text = fs::read_to_string(self.object_path(&hash)).ok()?;
            let record = RunRecord::from_str(&text).ok()?;
            // `from_str` already checked internal consistency; this guards
            // against a valid record filed under the wrong address.
            if record.spec.content_hash() != hash {
                return None;
            }
            Some(record)
        })();
        span.record("hit", result.is_some());
        result
    }

    /// Persists a record atomically, returning its content hash. Safe to
    /// call concurrently for the same spec from multiple threads or
    /// processes.
    pub fn put(&self, record: &RunRecord) -> io::Result<String> {
        let _span = Span::open("store.write");
        let hash = record.spec.content_hash();
        let final_path = self.object_path(&hash);
        if let Some(parent) = final_path.parent() {
            fs::create_dir_all(parent)?;
        }
        let tmp_path = self.root.join("tmp").join(format!(
            "{hash}.{}.{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let mut line = record.to_line();
        line.push('\n');
        fs::write(&tmp_path, line)?;
        let renamed = fs::rename(&tmp_path, &final_path);
        if renamed.is_err() {
            // Clean up our temp file before surfacing the error.
            let _ = fs::remove_file(&tmp_path);
        }
        renamed?;
        Ok(hash)
    }

    /// Cheap scan: entry count, byte total, stray temp files. Does not
    /// parse records (use [`Store::verify`] for that).
    pub fn stats(&self) -> io::Result<StoreStats> {
        let mut stats = StoreStats::default();
        for path in self.object_files()? {
            stats.entries += 1;
            stats.bytes += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        }
        stats.stray_tmp = self.tmp_files()?.len();
        Ok(stats)
    }

    /// Parses and validates every object file.
    pub fn verify(&self) -> io::Result<VerifyReport> {
        let mut span = Span::open("store.validate");
        let mut report = VerifyReport::default();
        for path in self.object_files()? {
            match fs::read_to_string(&path) {
                Err(e) => report.corrupt.push((path, e.to_string())),
                Ok(text) => match RunRecord::from_str(&text) {
                    Err(e) => report.corrupt.push((path, e)),
                    Ok(record) => {
                        let expected = self.object_path(&record.spec.content_hash());
                        if expected == path {
                            report.ok += 1;
                        } else {
                            report.misplaced.push(path);
                        }
                    }
                },
            }
        }
        span.record("ok", report.ok);
        span.record("corrupt", report.corrupt.len());
        Ok(report)
    }

    /// Removes stray temp files and every invalid object (corrupt,
    /// schema-mismatched, misplaced). Valid entries are untouched.
    ///
    /// Temp files younger than [`TMP_GRACE`] are left alone: with a
    /// serve daemon and batch processes sharing one store, a fresh
    /// `tmp/` file is most likely a concurrent writer's in-flight
    /// record, and deleting it would make that writer's rename fail.
    pub fn gc(&self) -> io::Result<GcReport> {
        self.gc_with_grace(TMP_GRACE)
    }

    /// [`Store::gc`] with an explicit temp-file grace period. A zero
    /// grace removes every temp file regardless of age — the right call
    /// when the caller *knows* no other process is writing (tests,
    /// post-crash cleanup of a store it owns exclusively).
    pub fn gc_with_grace(&self, grace: Duration) -> io::Result<GcReport> {
        let mut report = GcReport::default();
        for path in self.tmp_files()? {
            let in_flight = grace > Duration::ZERO
                && fs::metadata(&path)
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|mtime| mtime.elapsed().ok())
                    .is_some_and(|age| age < grace);
            if !in_flight && fs::remove_file(&path).is_ok() {
                report.removed_tmp += 1;
            }
        }
        let verify = self.verify()?;
        report.kept = verify.ok;
        for (path, _) in &verify.corrupt {
            if fs::remove_file(path).is_ok() {
                report.removed_objects += 1;
            }
        }
        for path in &verify.misplaced {
            if fs::remove_file(path).is_ok() {
                report.removed_objects += 1;
            }
        }
        Ok(report)
    }

    /// Every `objects/<shard>/<hash>.json` file, sorted for
    /// deterministic reporting.
    fn object_files(&self) -> io::Result<Vec<PathBuf>> {
        let mut files = Vec::new();
        let objects = self.root.join("objects");
        for shard in read_dir_sorted(&objects)? {
            if shard.is_dir() {
                for file in read_dir_sorted(&shard)? {
                    if file.extension().is_some_and(|e| e == "json") {
                        files.push(file);
                    }
                }
            }
        }
        Ok(files)
    }

    fn tmp_files(&self) -> io::Result<Vec<PathBuf>> {
        read_dir_sorted(&self.root.join("tmp"))
    }
}

/// Resolves the default store root from the environment.
pub fn default_root() -> PathBuf {
    match std::env::var_os("SUPERMARQ_STORE") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(DEFAULT_STORE_DIR),
    }
}

fn read_dir_sorted(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries = Vec::new();
    match fs::read_dir(dir) {
        // A store dir someone deleted mid-run is empty, not an error.
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(entries),
        Err(e) => return Err(e),
        Ok(iter) => {
            for entry in iter {
                entries.push(entry?.path());
            }
        }
    }
    entries.sort();
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RunOutcome;

    fn temp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!(
            "supermarq-store-unit-{tag}-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    fn record(seed: u64) -> RunRecord {
        RunRecord {
            spec: RunSpec::new(
                "ghz",
                vec![("size".into(), "3".into())],
                "IonQ",
                100,
                2,
                seed,
            ),
            outcome: RunOutcome {
                scores: vec![0.9, 0.95],
                swap_count: 0,
                two_qubit_gates: 2,
            },
        }
    }

    #[test]
    fn put_get_round_trip() {
        let store = temp_store("roundtrip");
        let r = record(1);
        assert!(store.get(&r.spec).is_none());
        let hash = store.put(&r).unwrap();
        assert_eq!(hash, r.spec.content_hash());
        assert_eq!(store.get(&r.spec), Some(r));
        let stats = store.stats().unwrap();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.stray_tmp, 0);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn distinct_specs_get_distinct_objects() {
        let store = temp_store("distinct");
        store.put(&record(1)).unwrap();
        store.put(&record(2)).unwrap();
        assert_eq!(store.stats().unwrap().entries, 2);
        assert_eq!(store.get(&record(1).spec).unwrap(), record(1));
        assert_eq!(store.get(&record(2).spec).unwrap(), record(2));
    }

    #[test]
    fn overwriting_same_key_is_idempotent() {
        let store = temp_store("idem");
        store.put(&record(1)).unwrap();
        store.put(&record(1)).unwrap();
        assert_eq!(store.stats().unwrap().entries, 1);
    }

    #[test]
    fn verify_and_gc_on_clean_store() {
        let store = temp_store("clean");
        store.put(&record(1)).unwrap();
        let report = store.verify().unwrap();
        assert!(report.is_clean());
        assert_eq!(report.ok, 1);
        let gc = store.gc().unwrap();
        assert_eq!(
            gc,
            GcReport {
                removed_tmp: 0,
                removed_objects: 0,
                kept: 1
            }
        );
        assert_eq!(store.get(&record(1).spec), Some(record(1)));
    }

    #[test]
    fn stats_json_uses_the_shared_schema() {
        let store = temp_store("stats-json");
        store.put(&record(1)).unwrap();
        let stats = store.stats().unwrap();
        let json = stats.to_json();
        // Exactly the three documented fields, in documented order.
        match &json {
            Json::Obj(fields) => {
                let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["entries", "bytes", "stray_tmp"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
        assert_eq!(json.get("entries").and_then(Json::as_u64), Some(1));
        assert!(json.get("bytes").and_then(Json::as_u64).unwrap() > 0);
        // The line re-parses through the same strict parser.
        let line = json.to_string();
        assert_eq!(Json::parse(&line).unwrap(), json);
    }

    #[test]
    fn gc_spares_in_flight_tmp_files_within_the_grace_period() {
        let store = temp_store("gc-grace");
        store.put(&record(1)).unwrap();
        let tmp = store.root().join("tmp").join("abcd.1.0.tmp");
        fs::write(&tmp, "half-written").unwrap();
        // Default gc treats the fresh file as a concurrent writer's
        // in-flight record and leaves it alone.
        let report = store.gc().unwrap();
        assert_eq!(report.removed_tmp, 0);
        assert!(tmp.exists());
        // Zero grace (exclusive owner) removes it.
        let report = store.gc_with_grace(Duration::ZERO).unwrap();
        assert_eq!(report.removed_tmp, 1);
        assert!(!tmp.exists());
    }

    #[test]
    fn default_root_honors_environment() {
        // Reads (never mutates) the process environment, so the test is
        // safe under parallel execution whatever the harness exports.
        match std::env::var_os("SUPERMARQ_STORE") {
            Some(dir) if !dir.is_empty() => assert_eq!(default_root(), PathBuf::from(dir)),
            _ => assert_eq!(default_root(), PathBuf::from(DEFAULT_STORE_DIR)),
        }
    }
}
