//! Classical math substrate for the SupermarQ reproduction.
//!
//! The paper's benchmarks lean on classical computation in three places:
//!
//! 1. **Scoring** — Hellinger fidelity between measured and ideal
//!    distributions (GHZ, bit/phase code), and linear regression / `R^2`
//!    for the feature-correlation study of Figs. 3 and 4 ([`stats`]);
//! 2. **Classical optimization of the variational proxy-applications** —
//!    the paper finds optimal QAOA/VQE parameters classically and runs only
//!    the final circuit on hardware ([`opt`], [`qaoa`]);
//! 3. **Exactly solvable references** — the level-1 QAOA energy on
//!    Sherrington–Kirkpatrick instances in closed form ([`qaoa`]), the 1-D
//!    transverse-field Ising ground energy via free fermions ([`tfim`]),
//!    and brute-force Ising optima for small instances ([`maxcut`]).
//!
//! # Example
//!
//! ```
//! use supermarq_classical::stats::hellinger_fidelity_maps;
//! use std::collections::BTreeMap;
//!
//! let p = BTreeMap::from([(0u64, 0.5), (3u64, 0.5)]);
//! let q = BTreeMap::from([(0u64, 0.5), (3u64, 0.5)]);
//! assert!((hellinger_fidelity_maps(&p, &q) - 1.0).abs() < 1e-12);
//! ```

pub mod linalg;
pub mod maxcut;
pub mod opt;
pub mod qaoa;
pub mod stats;
pub mod tfim;

pub use opt::{nelder_mead, NelderMeadOptions};
pub use qaoa::{qaoa_p1_energy, qaoa_p1_optimize};
pub use stats::{hellinger_fidelity_maps, linear_regression, LinearFit};
pub use tfim::{tfim_ground_energy, tfim_ground_energy_per_site_thermodynamic};
