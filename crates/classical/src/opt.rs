//! Derivative-free optimizers for the variational proxy-applications.
//!
//! The paper's QAOA and VQE benchmarks replace the full hybrid loop with a
//! classically optimized final iteration (Sec. IV-D/E): "we found optimal
//! parameters via classical simulation and then executed these circuits on
//! the real QC systems". These optimizers drive that classical phase.

/// Options for [`nelder_mead`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadOptions {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Terminate when the simplex's objective spread falls below this.
    pub f_tol: f64,
    /// Initial simplex step per coordinate.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            max_evals: 2000,
            f_tol: 1e-10,
            initial_step: 0.5,
        }
    }
}

/// Minimizes `f` starting from `x0` with the Nelder–Mead simplex method.
/// Returns `(x_best, f_best)`.
///
/// # Panics
///
/// Panics if `x0` is empty.
pub fn nelder_mead<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    options: NelderMeadOptions,
) -> (Vec<f64>, f64) {
    let n = x0.len();
    assert!(n > 0, "need at least one dimension");
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    // Initial simplex: x0 plus steps along each axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let f0 = f(x0);
    simplex.push((x0.to_vec(), f0));
    let mut evals = 1usize;
    for i in 0..n {
        let mut x = x0.to_vec();
        x[i] += options.initial_step;
        let fx = f(&x);
        evals += 1;
        simplex.push((x, fx));
    }
    loop {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite objective"));
        let spread = simplex[n].1 - simplex[0].1;
        let diameter: f64 = simplex[1..]
            .iter()
            .map(|(x, _)| {
                x.iter()
                    .zip(&simplex[0].0)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max)
            })
            .fold(0.0f64, f64::max);
        if (spread.abs() < options.f_tol && diameter < 1e-7) || evals >= options.max_evals {
            return simplex.swap_remove(0);
        }
        // Centroid of all but worst.
        let mut centroid = vec![0.0; n];
        for (x, _) in &simplex[..n] {
            for (c, xi) in centroid.iter_mut().zip(x) {
                *c += xi / n as f64;
            }
        }
        let worst = simplex[n].clone();
        let reflect: Vec<f64> = centroid
            .iter()
            .zip(&worst.0)
            .map(|(c, w)| c + alpha * (c - w))
            .collect();
        let f_reflect = f(&reflect);
        evals += 1;
        if f_reflect < simplex[0].1 {
            // Try expansion.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(&reflect)
                .map(|(c, r)| c + gamma * (r - c))
                .collect();
            let f_expand = f(&expand);
            evals += 1;
            simplex[n] = if f_expand < f_reflect {
                (expand, f_expand)
            } else {
                (reflect, f_reflect)
            };
            continue;
        }
        if f_reflect < simplex[n - 1].1 {
            simplex[n] = (reflect, f_reflect);
            continue;
        }
        // Contraction.
        let contract: Vec<f64> = centroid
            .iter()
            .zip(&worst.0)
            .map(|(c, w)| c + rho * (w - c))
            .collect();
        let f_contract = f(&contract);
        evals += 1;
        if f_contract < worst.1 {
            simplex[n] = (contract, f_contract);
            continue;
        }
        // Shrink toward the best vertex.
        let best = simplex[0].0.clone();
        for entry in simplex.iter_mut().skip(1) {
            let x: Vec<f64> = best
                .iter()
                .zip(&entry.0)
                .map(|(b, xi)| b + sigma * (xi - b))
                .collect();
            let fx = f(&x);
            evals += 1;
            *entry = (x, fx);
        }
    }
}

/// Minimizes a function of two variables over a uniform grid, returning the
/// best `(x, y, f)` triple. Used to seed [`nelder_mead`] for the periodic
/// QAOA parameter landscape, which has many local minima.
///
/// # Panics
///
/// Panics if `steps < 2`.
pub fn grid_search_2d<F: FnMut(f64, f64) -> f64>(
    mut f: F,
    x_range: (f64, f64),
    y_range: (f64, f64),
    steps: usize,
) -> (f64, f64, f64) {
    assert!(steps >= 2, "need at least a 2x2 grid");
    let mut best = (x_range.0, y_range.0, f64::INFINITY);
    for i in 0..steps {
        let x = x_range.0 + (x_range.1 - x_range.0) * i as f64 / (steps - 1) as f64;
        for j in 0..steps {
            let y = y_range.0 + (y_range.1 - y_range.0) * j as f64 / (steps - 1) as f64;
            let v = f(x, y);
            if v < best.2 {
                best = (x, y, v);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        let (x, fx) = nelder_mead(
            |v| (v[0] - 3.0).powi(2) + (v[1] + 1.0).powi(2),
            &[0.0, 0.0],
            NelderMeadOptions::default(),
        );
        assert!((x[0] - 3.0).abs() < 1e-4, "x={x:?}");
        assert!((x[1] + 1.0).abs() < 1e-4);
        assert!(fx < 1e-7);
    }

    #[test]
    fn minimizes_rosenbrock() {
        let (x, fx) = nelder_mead(
            |v| {
                let (a, b) = (v[0], v[1]);
                (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
            },
            &[-1.2, 1.0],
            NelderMeadOptions {
                max_evals: 8000,
                f_tol: 1e-14,
                initial_step: 0.5,
            },
        );
        assert!((x[0] - 1.0).abs() < 1e-3, "x={x:?} f={fx}");
        assert!((x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn one_dimensional_minimization() {
        let (x, _) = nelder_mead(
            |v| (v[0] - 0.25).powi(2),
            &[5.0],
            NelderMeadOptions::default(),
        );
        assert!((x[0] - 0.25).abs() < 1e-4);
    }

    #[test]
    fn respects_eval_budget() {
        let mut count = 0usize;
        let budget = 37;
        let _ = nelder_mead(
            |v| {
                count += 1;
                v[0] * v[0]
            },
            &[10.0],
            NelderMeadOptions {
                max_evals: budget,
                f_tol: 0.0,
                initial_step: 1.0,
            },
        );
        // A few extra evals can occur inside the final iteration.
        assert!(count <= budget + 4, "count={count}");
    }

    #[test]
    fn grid_search_finds_coarse_minimum() {
        let (x, y, v) = grid_search_2d(
            |x, y| (x - 0.5).powi(2) + (y - 0.25).powi(2),
            (0.0, 1.0),
            (0.0, 1.0),
            21,
        );
        assert!((x - 0.5).abs() < 0.051);
        assert!((y - 0.25).abs() < 0.051);
        assert!(v < 0.01);
    }

    #[test]
    fn grid_then_polish_beats_grid_alone() {
        let f = |x: f64, y: f64| (x - 0.333).powi(2) + (y + 0.777).powi(2);
        let (gx, gy, gv) = grid_search_2d(f, (-1.0, 1.0), (-1.0, 1.0), 9);
        let (polished, pv) =
            nelder_mead(|v| f(v[0], v[1]), &[gx, gy], NelderMeadOptions::default());
        assert!(pv <= gv);
        assert!((polished[0] - 0.333).abs() < 1e-4);
        assert!((polished[1] + 0.777).abs() < 1e-4);
    }
}
