//! Sherrington–Kirkpatrick instances and brute-force Ising optima.
//!
//! The QAOA benchmarks target "MaxCut on complete graphs with edge weights
//! randomly drawn from {-1, +1}" (paper Sec. IV-D). Instances are generated
//! deterministically from a seed so every crate in the workspace sees the
//! same problem.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples the `n(n-1)/2` upper-triangular SK couplings, each uniformly
/// `-1` or `+1`, deterministically from `seed`.
pub fn sk_weights(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n * n.saturating_sub(1) / 2)
        .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
        .collect()
}

/// Brute-force minimum of the Ising energy `E(s) = sum_{u<v} w_uv s_u s_v`
/// over spin assignments `s in {-1,+1}^n`. Returns `(min_energy,
/// argmin_bits)` where bit `q` of `argmin_bits` set means `s_q = -1`.
///
/// Exploits the global spin-flip symmetry by fixing `s_0 = +1`.
///
/// # Panics
///
/// Panics if `n > 24` (guard against accidental exponential blow-up) or if
/// the weight count mismatches.
pub fn min_ising_energy(n: usize, weights: &[f64]) -> (f64, u64) {
    assert!(n <= 24, "brute force limited to 24 spins");
    assert!(n >= 1, "need at least one spin");
    let expected = n * n.saturating_sub(1) / 2;
    assert_eq!(weights.len(), expected, "need {expected} weights");
    let mut best = (f64::INFINITY, 0u64);
    let configs = if n == 1 { 1u64 } else { 1u64 << (n - 1) };
    for bits in 0..configs {
        // s_0 = +1 always; bit q-1 of `bits` sets s_q = -1.
        let spin = |q: usize| -> f64 {
            if q == 0 {
                1.0
            } else if bits >> (q - 1) & 1 == 1 {
                -1.0
            } else {
                1.0
            }
        };
        let mut e = 0.0;
        let mut k = 0;
        for u in 0..n {
            for v in u + 1..n {
                e += weights[k] * spin(u) * spin(v);
                k += 1;
            }
        }
        if e < best.0 {
            best = (e, bits << 1);
        }
    }
    best
}

/// The maximum cut value corresponding to the Ising minimum:
/// `maxcut = (sum_w - E_min) / 2`.
pub fn max_cut_value(n: usize, weights: &[f64]) -> f64 {
    let (e_min, _) = min_ising_energy(n, weights);
    let total: f64 = weights.iter().sum();
    (total - e_min) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_plus_minus_one_and_deterministic() {
        let w1 = sk_weights(6, 99);
        let w2 = sk_weights(6, 99);
        assert_eq!(w1, w2);
        assert_eq!(w1.len(), 15);
        assert!(w1.iter().all(|&w| w == 1.0 || w == -1.0));
        let w3 = sk_weights(6, 100);
        assert_ne!(w1, w3); // overwhelmingly likely
    }

    #[test]
    fn frustrated_triangle_minimum() {
        // w = (1,1,1): best is two spins agreeing, one opposed: E = -1.
        let (e, _) = min_ising_energy(3, &[1.0, 1.0, 1.0]);
        assert!((e + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ferromagnetic_pair() {
        // w = -1 between two spins: aligned spins give E = -1.
        let (e, bits) = min_ising_energy(2, &[-1.0]);
        assert!((e + 1.0).abs() < 1e-12);
        assert_eq!(bits, 0); // both +1
    }

    #[test]
    fn antiferromagnetic_pair() {
        let (e, bits) = min_ising_energy(2, &[1.0]);
        assert!((e + 1.0).abs() < 1e-12);
        assert_eq!(bits, 0b10); // opposite spins
    }

    #[test]
    fn cut_value_of_triangle() {
        // MaxCut of unit triangle = 2.
        assert!((max_cut_value(3, &[1.0, 1.0, 1.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn energy_of_returned_assignment_matches_minimum() {
        let n = 8;
        let w = sk_weights(n, 7);
        let (e_min, bits) = min_ising_energy(n, &w);
        let spin = |q: usize| if bits >> q & 1 == 1 { -1.0 } else { 1.0 };
        let mut e = 0.0;
        let mut k = 0;
        for u in 0..n {
            for v in u + 1..n {
                e += w[k] * spin(u) * spin(v);
                k += 1;
            }
        }
        assert!((e - e_min).abs() < 1e-12);
    }

    #[test]
    fn single_spin_energy_is_zero() {
        let (e, _) = min_ising_energy(1, &[]);
        assert_eq!(e, 0.0);
    }

    #[test]
    #[should_panic(expected = "limited to 24 spins")]
    fn guards_against_large_n() {
        min_ising_energy(25, &vec![0.0; 25 * 24 / 2]);
    }
}
