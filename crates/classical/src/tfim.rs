//! Exact solutions of the 1-D transverse-field Ising model.
//!
//! The paper picks the TFIM for its VQE benchmark precisely because "the 1D
//! TFIM is desirable as a scalable benchmark because it is exactly solvable
//! via classical methods" (Sec. IV-E, citing Pfeuty 1970). The open chain
//! `H = -J sum_i Z_i Z_{i+1} - h sum_i X_i` maps under a Jordan–Wigner
//! transformation to free fermions whose single-particle energies are the
//! square roots of the eigenvalues of `(A - B)(A - B)^T`, where `A` is the
//! hopping matrix and `B` the pairing matrix. The ground energy is
//! `-1/2 sum_k Lambda_k` — an `O(N^3)` computation for any chain length.

use crate::linalg::{matmul, symmetric_eigenvalues, transpose};

/// Exact ground-state energy of the open-boundary TFIM
/// `H = -J sum_{i<N-1} Z_i Z_{i+1} - h sum_i X_i` on `n` spins, via the
/// free-fermion solution.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// use supermarq_classical::tfim_ground_energy;
///
/// // Two critical spins: E0 = -sqrt(5).
/// let e = tfim_ground_energy(2, 1.0, 1.0);
/// assert!((e + 5f64.sqrt()).abs() < 1e-9);
/// ```
pub fn tfim_ground_energy(n: usize, j: f64, h: f64) -> f64 {
    assert!(n > 0, "need at least one spin");
    // A: symmetric hopping matrix; B: antisymmetric pairing matrix.
    let mut a = vec![vec![0.0; n]; n];
    let mut b = vec![vec![0.0; n]; n];
    for (i, row) in a.iter_mut().enumerate() {
        row[i] = 2.0 * h;
    }
    for i in 0..n.saturating_sub(1) {
        a[i][i + 1] = -j;
        a[i + 1][i] = -j;
        b[i][i + 1] = -j;
        b[i + 1][i] = j;
    }
    // M = A - B; single-particle energies are sqrt(eig(M M^T)).
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        for k in 0..n {
            m[i][k] = a[i][k] - b[i][k];
        }
    }
    let mmt = matmul(&m, &transpose(&m));
    let evals = symmetric_eigenvalues(&mmt);
    let lambda_sum: f64 = evals.iter().map(|&e| e.max(0.0).sqrt()).sum();
    -0.5 * lambda_sum
}

/// Ground-state energy per site of the *periodic* TFIM in the thermodynamic
/// limit:
///
/// `e(J, h) = -(1/pi) * integral_0^pi sqrt(J^2 + h^2 - 2 J h cos k) dk`,
///
/// evaluated with Simpson quadrature. At criticality (`J = h = 1`) this is
/// the textbook `-4/pi` (for the `2 sqrt(...)` dispersion normalization
/// used here).
pub fn tfim_ground_energy_per_site_thermodynamic(j: f64, h: f64) -> f64 {
    let steps = 20_000usize; // even
    let a = 0.0;
    let b = std::f64::consts::PI;
    let dx = (b - a) / steps as f64;
    let f = |k: f64| (j * j + h * h - 2.0 * j * h * k.cos()).max(0.0).sqrt();
    let mut total = f(a) + f(b);
    for i in 1..steps {
        let x = a + i as f64 * dx;
        total += if i % 2 == 1 { 4.0 } else { 2.0 } * f(x);
    }
    let integral = total * dx / 3.0;
    -integral / std::f64::consts::PI
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed by exact diagonalization (power iteration
    /// on the dense Hamiltonian, independent implementation). One entry
    /// happens to coincide with -sqrt(2); it is a computed energy, not the
    /// constant.
    #[allow(clippy::approx_constant)]
    const REFERENCES: &[(usize, f64, f64, f64)] = &[
        (2, 1.0, 1.0, -2.2360679775),
        (2, 1.0, 0.5, -1.4142135624),
        (2, 0.7, 1.3, -2.6925824036),
        (3, 1.0, 1.0, -3.4939592074),
        (3, 1.0, 0.5, -2.4032119259),
        (3, 0.7, 1.3, -4.0882315452),
        (4, 1.0, 1.0, -4.7587704831),
        (4, 1.0, 0.5, -3.4270340889),
        (4, 0.7, 1.3, -5.4842386191),
        (5, 1.0, 1.0, -6.0266741833),
        (5, 1.0, 0.5, -4.4694903440),
        (5, 0.7, 1.3, -6.8803033991),
    ];

    #[test]
    fn matches_exact_diagonalization_references() {
        for &(n, j, h, e_ref) in REFERENCES {
            let e = tfim_ground_energy(n, j, h);
            assert!(
                (e - e_ref).abs() < 1e-8,
                "n={n} J={j} h={h}: {e} vs {e_ref}"
            );
        }
    }

    #[test]
    fn single_spin_energy_is_minus_h() {
        assert!((tfim_ground_energy(1, 1.0, 0.7) + 0.7).abs() < 1e-10);
    }

    #[test]
    fn zero_field_energy_is_classical_bond_energy() {
        // h = 0: ground state is ferromagnetic, E0 = -J (n-1).
        for n in 2..=6 {
            let e = tfim_ground_energy(n, 1.5, 0.0);
            assert!((e + 1.5 * (n as f64 - 1.0)).abs() < 1e-8, "n={n} e={e}");
        }
    }

    #[test]
    fn zero_coupling_energy_is_field_energy() {
        // J = 0: product of |+> states, E0 = -h n.
        let e = tfim_ground_energy(5, 0.0, 0.8);
        assert!((e + 4.0).abs() < 1e-8);
    }

    #[test]
    fn critical_thermodynamic_energy_is_minus_four_over_pi() {
        let e = tfim_ground_energy_per_site_thermodynamic(1.0, 1.0);
        assert!((e + 4.0 / std::f64::consts::PI).abs() < 1e-8, "e={e}");
    }

    #[test]
    fn finite_chain_approaches_thermodynamic_limit() {
        let per_site_200 = tfim_ground_energy(200, 1.0, 1.0) / 200.0;
        let bulk = tfim_ground_energy_per_site_thermodynamic(1.0, 1.0);
        // Boundary corrections are O(1/N).
        assert!(
            (per_site_200 - bulk).abs() < 0.01,
            "{per_site_200} vs {bulk}"
        );
    }

    #[test]
    fn energy_is_monotone_in_field() {
        let e1 = tfim_ground_energy(6, 1.0, 0.5);
        let e2 = tfim_ground_energy(6, 1.0, 1.0);
        let e3 = tfim_ground_energy(6, 1.0, 2.0);
        assert!(e1 > e2 && e2 > e3);
    }
}
