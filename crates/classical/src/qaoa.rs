//! Closed-form level-1 QAOA energies on Ising cost Hamiltonians.
//!
//! The paper chooses the p=1 variant of QAOA "which is efficiently simulable
//! classically due to recent work" (Sec. IV-D, citing Wang et al.). For the
//! state `|psi(gamma, beta)> = e^{-i beta B} e^{-i gamma C} |+>^n` with
//! `C = sum_{u<v} w_uv Z_u Z_v` and `B = sum_j X_j`, each two-point
//! correlator has a product form (Ozaeta–van Dam–McMahon 2020):
//!
//! ```text
//! <Z_u Z_v> = (sin 4b / 2) sin(2g w_uv) [ prod_{k!=u,v} cos(2g w_uk)
//!                                       + prod_{k!=u,v} cos(2g w_vk) ]
//!           - (sin^2 2b / 2) [ prod_{k!=u,v} cos(2g (w_uk + w_vk))
//!                            - prod_{k!=u,v} cos(2g (w_uk - w_vk)) ]
//! ```
//!
//! so `<C>` costs `O(n^3)` instead of `O(2^n)` — this is what lets the QAOA
//! benchmark scale to arbitrary sizes.

use crate::opt::{grid_search_2d, nelder_mead, NelderMeadOptions};

/// Upper-triangular weight accessor: `w(u, v)` with `u != v`, 0 when absent.
fn weight(n: usize, weights: &[f64], u: usize, v: usize) -> f64 {
    debug_assert!(u != v);
    let (a, b) = (u.min(v), u.max(v));
    // Index of (a, b) in row-major upper-triangular order.
    let idx = a * n - a * (a + 1) / 2 + (b - a - 1);
    weights[idx]
}

/// The exact level-1 QAOA expectation `<C>` for the Ising cost
/// `C = sum_{u<v} w_uv Z_u Z_v` on `n` qubits.
///
/// `weights` holds the `n(n-1)/2` upper-triangular couplings in row-major
/// order (0 entries for absent edges).
///
/// # Panics
///
/// Panics if the weight count does not equal `n(n-1)/2`.
pub fn qaoa_p1_energy(n: usize, weights: &[f64], gamma: f64, beta: f64) -> f64 {
    let expected = n * n.saturating_sub(1) / 2;
    assert_eq!(weights.len(), expected, "need {expected} weights for n={n}");
    let mut energy = 0.0;
    for u in 0..n {
        for v in u + 1..n {
            let w_uv = weight(n, weights, u, v);
            if w_uv == 0.0 {
                continue;
            }
            energy += w_uv * qaoa_p1_zz(n, weights, u, v, gamma, beta);
        }
    }
    energy
}

/// The exact level-1 correlator `<Z_u Z_v>`.
pub fn qaoa_p1_zz(n: usize, weights: &[f64], u: usize, v: usize, gamma: f64, beta: f64) -> f64 {
    let w_uv = weight(n, weights, u, v);
    let g2 = 2.0 * gamma;
    let mut prod_u = 1.0;
    let mut prod_v = 1.0;
    let mut prod_sum = 1.0;
    let mut prod_diff = 1.0;
    for k in 0..n {
        if k == u || k == v {
            continue;
        }
        let w_uk = weight(n, weights, u, k);
        let w_vk = weight(n, weights, v, k);
        prod_u *= (g2 * w_uk).cos();
        prod_v *= (g2 * w_vk).cos();
        prod_sum *= (g2 * (w_uk + w_vk)).cos();
        prod_diff *= (g2 * (w_uk - w_vk)).cos();
    }
    let term1 = 0.5 * (4.0 * beta).sin() * (g2 * w_uv).sin() * (prod_u + prod_v);
    let term2 = 0.5 * (2.0 * beta).sin().powi(2) * (prod_sum - prod_diff);
    term1 - term2
}

/// Finds the level-1 parameters minimizing `<C>` (the paper's proxy targets
/// the ground state of the SK Hamiltonian, i.e. the maximum cut).
///
/// Coarse grid over one period, polished with Nelder–Mead. Returns
/// `((gamma, beta), energy)`.
pub fn qaoa_p1_optimize(n: usize, weights: &[f64]) -> ((f64, f64), f64) {
    use std::f64::consts::PI;
    let (g0, b0, _) = grid_search_2d(
        |g, b| qaoa_p1_energy(n, weights, g, b),
        (-PI / 2.0, PI / 2.0),
        (-PI / 4.0, PI / 4.0),
        41,
    );
    let (x, e) = nelder_mead(
        |v| qaoa_p1_energy(n, weights, v[0], v[1]),
        &[g0, b0],
        NelderMeadOptions {
            max_evals: 4000,
            f_tol: 1e-12,
            initial_step: 0.05,
        },
    );
    ((x[0], x[1]), e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use supermarq_circuit::Circuit;
    use supermarq_pauli::sk_hamiltonian;
    use supermarq_sim::Executor;

    /// Statevector reference: build the p=1 circuit and measure <C> exactly.
    fn statevector_energy(n: usize, weights: &[f64], gamma: f64, beta: f64) -> f64 {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        let mut k = 0;
        for u in 0..n {
            for v in u + 1..n {
                let w = weights[k];
                k += 1;
                if w != 0.0 {
                    // e^{-i gamma w Z_u Z_v} = Rzz(2 gamma w).
                    c.rzz(2.0 * gamma * w, u, v);
                }
            }
        }
        for q in 0..n {
            c.rx(2.0 * beta, q);
        }
        let state = Executor::final_state(&c).expect("QAOA circuits contain no reset");
        state.expectation(&sk_hamiltonian(n, weights))
    }

    #[test]
    fn analytic_matches_statevector_on_triangle() {
        let n = 3;
        let weights = [1.0, -1.0, 1.0];
        for &(g, b) in &[(0.3, 0.2), (-0.7, 0.5), (1.1, -0.4), (0.0, 0.9), (0.6, 0.0)] {
            let exact = statevector_energy(n, &weights, g, b);
            let analytic = qaoa_p1_energy(n, &weights, g, b);
            assert!(
                (exact - analytic).abs() < 1e-9,
                "g={g} b={b}: {exact} vs {analytic}"
            );
        }
    }

    #[test]
    fn analytic_matches_statevector_on_sk5() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let n = 5;
        let mut rng = StdRng::seed_from_u64(31);
        let weights: Vec<f64> = (0..n * (n - 1) / 2)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        for &(g, b) in &[(0.25, 0.35), (-0.5, 0.15), (0.8, -0.6)] {
            let exact = statevector_energy(n, &weights, g, b);
            let analytic = qaoa_p1_energy(n, &weights, g, b);
            assert!(
                (exact - analytic).abs() < 1e-9,
                "g={g} b={b}: {exact} vs {analytic}"
            );
        }
    }

    #[test]
    fn zero_angles_give_zero_energy() {
        let weights = [1.0, 1.0, 1.0];
        assert!(qaoa_p1_energy(3, &weights, 0.0, 0.0).abs() < 1e-12);
        assert!(qaoa_p1_energy(3, &weights, 0.5, 0.0).abs() < 1e-12);
        assert!(qaoa_p1_energy(3, &weights, 0.0, 0.5).abs() < 1e-12);
    }

    #[test]
    fn optimizer_beats_grid_floor_and_is_negative() {
        // On a frustrated triangle, optimal p=1 energy is strictly negative
        // (the ground energy of w = (1,1,1) is -1).
        let weights = [1.0, 1.0, 1.0];
        let ((g, b), e) = qaoa_p1_optimize(3, &weights);
        assert!(e < -0.5, "e={e} at ({g},{b})");
        assert!(e >= -1.0 - 1e-9);
        // Statevector agreement at the optimum.
        let sv = statevector_energy(3, &weights, g, b);
        assert!((sv - e).abs() < 1e-8);
    }

    #[test]
    fn weight_indexing_round_trip() {
        // weights laid out row-major upper triangular for n=4:
        // (0,1) (0,2) (0,3) (1,2) (1,3) (2,3).
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(weight(4, &w, 0, 1), 1.0);
        assert_eq!(weight(4, &w, 2, 0), 2.0);
        assert_eq!(weight(4, &w, 3, 0), 3.0);
        assert_eq!(weight(4, &w, 1, 2), 4.0);
        assert_eq!(weight(4, &w, 3, 1), 5.0);
        assert_eq!(weight(4, &w, 2, 3), 6.0);
    }

    #[test]
    #[should_panic(expected = "need 3 weights")]
    fn validates_weight_count() {
        qaoa_p1_energy(3, &[1.0], 0.1, 0.1);
    }
}
