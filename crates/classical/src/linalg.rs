//! Dense symmetric eigensolver (cyclic Jacobi).
//!
//! Used by the free-fermion solution of the transverse-field Ising chain
//! ([`crate::tfim`]), whose single-particle energies are the square roots of
//! the eigenvalues of a symmetric positive-semidefinite matrix. Jacobi
//! rotations are slow (`O(n^3)` per sweep) but unconditionally robust,
//! which is what a reference implementation wants.

/// Computes all eigenvalues of a symmetric matrix with the cyclic Jacobi
/// method. Eigenvalues are returned in ascending order.
///
/// # Panics
///
/// Panics if the matrix is not square, or if it fails to converge in 100
/// sweeps (does not happen for symmetric input).
pub fn symmetric_eigenvalues(matrix: &[Vec<f64>]) -> Vec<f64> {
    let n = matrix.len();
    assert!(matrix.iter().all(|r| r.len() == n), "matrix must be square");
    if n == 0 {
        return Vec::new();
    }
    let mut a: Vec<Vec<f64>> = matrix.to_vec();
    // Symmetry check (cheap insurance against misuse).
    for (i, row_i) in a.iter().enumerate() {
        for (j, row_j) in a.iter().enumerate().skip(i + 1) {
            let scale = row_i[j].abs().max(row_j[i].abs()).max(1.0);
            assert!(
                (row_i[j] - row_j[i]).abs() <= 1e-8 * scale,
                "matrix is not symmetric at ({i},{j})"
            );
        }
    }
    for _sweep in 0..100 {
        let off: f64 = (0..n)
            .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
            .map(|(i, j)| a[i][j] * a[i][j])
            .sum();
        if off < 1e-22 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                if a[p][q].abs() < 1e-300 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply rotation G(p, q, theta) on both sides.
                for row in a.iter_mut() {
                    let akp = row[p];
                    let akq = row[q];
                    row[p] = c * akp - s * akq;
                    row[q] = s * akp + c * akq;
                }
                let (head, tail) = a.split_at_mut(q);
                let (row_p, row_q) = (&mut head[p], &mut tail[0]);
                for (apk, aqk) in row_p.iter_mut().zip(row_q.iter_mut()) {
                    let (x, y) = (*apk, *aqk);
                    *apk = c * x - s * y;
                    *aqk = s * x + c * y;
                }
            }
        }
    }
    let mut evals: Vec<f64> = (0..n).map(|i| a[i][i]).collect();
    evals.sort_by(|x, y| x.partial_cmp(y).expect("finite eigenvalues"));
    evals
}

/// Multiplies two square matrices.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn matmul(a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    assert!(
        b.len() == n && a.iter().chain(b.iter()).all(|r| r.len() == n),
        "square matrices"
    );
    let mut out = vec![vec![0.0; n]; n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i][k];
            if aik != 0.0 {
                for j in 0..n {
                    out[i][j] += aik * b[k][j];
                }
            }
        }
    }
    out
}

/// Transposes a square matrix.
pub fn transpose(a: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    let mut out = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            out[j][i] = a[i][j];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eigenvalues_of_diagonal_matrix() {
        let m = vec![
            vec![3.0, 0.0, 0.0],
            vec![0.0, -1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ];
        let e = symmetric_eigenvalues(&m);
        assert!((e[0] + 1.0).abs() < 1e-10);
        assert!((e[1] - 2.0).abs() < 1e-10);
        assert!((e[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn eigenvalues_of_2x2() {
        // [[2,1],[1,2]] -> 1, 3.
        let m = vec![vec![2.0, 1.0], vec![1.0, 2.0]];
        let e = symmetric_eigenvalues(&m);
        assert!((e[0] - 1.0).abs() < 1e-10);
        assert!((e[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn eigenvalues_of_path_laplacian() {
        // Path graph P4 Laplacian eigenvalues: 2 - 2cos(k pi / 4), k=0..3.
        let m = vec![
            vec![1.0, -1.0, 0.0, 0.0],
            vec![-1.0, 2.0, -1.0, 0.0],
            vec![0.0, -1.0, 2.0, -1.0],
            vec![0.0, 0.0, -1.0, 1.0],
        ];
        let e = symmetric_eigenvalues(&m);
        for (k, &ev) in e.iter().enumerate() {
            let expect = 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / 4.0).cos();
            assert!((ev - expect).abs() < 1e-9, "k={k} ev={ev}");
        }
    }

    #[test]
    fn trace_and_sum_of_eigenvalues_agree() {
        let m = vec![
            vec![1.0, 0.5, -0.2],
            vec![0.5, -2.0, 0.3],
            vec![-0.2, 0.3, 0.7],
        ];
        let e = symmetric_eigenvalues(&m);
        let trace = 1.0 - 2.0 + 0.7;
        assert!((e.iter().sum::<f64>() - trace).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn rejects_asymmetric_input() {
        let m = vec![vec![1.0, 2.0], vec![0.0, 1.0]];
        symmetric_eigenvalues(&m);
    }

    #[test]
    fn matmul_and_transpose() {
        let a = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let b = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let c = matmul(&a, &b);
        assert_eq!(c, vec![vec![2.0, 1.0], vec![4.0, 3.0]]);
        assert_eq!(transpose(&a), vec![vec![1.0, 3.0], vec![2.0, 4.0]]);
    }
}
