//! Descriptive statistics, Hellinger fidelity, and linear regression.

use std::collections::BTreeMap;

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0 for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// The Hellinger fidelity between two discrete probability distributions:
/// `F_H(p, q) = ( sum_i sqrt(p_i q_i) )^2`.
///
/// This is the score function of the GHZ and error-correction benchmarks
/// (paper Sec. IV-A and IV-C): 1 for identical distributions, 0 for
/// disjoint supports.
pub fn hellinger_fidelity_maps(p: &BTreeMap<u64, f64>, q: &BTreeMap<u64, f64>) -> f64 {
    let mut bc = 0.0; // Bhattacharyya coefficient
    for (k, &pv) in p {
        if let Some(&qv) = q.get(k) {
            bc += (pv.max(0.0) * qv.max(0.0)).sqrt();
        }
    }
    (bc * bc).min(1.0)
}

/// Hellinger fidelity between two dense distributions of equal length.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn hellinger_fidelity_dense(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let bc: f64 = p
        .iter()
        .zip(q)
        .map(|(&a, &b)| (a.max(0.0) * b.max(0.0)).sqrt())
        .sum();
    (bc * bc).min(1.0)
}

/// Result of an ordinary least-squares fit `y ~ slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R^2` — the quantity plotted in the
    /// paper's Fig. 3 heatmaps.
    pub r_squared: f64,
}

/// Ordinary least squares over paired samples.
///
/// Returns `None` if fewer than two points are given or `x` has zero
/// variance (vertical line). `R^2 = 1 - SS_res / SS_tot`; when `y` has zero
/// variance the fit is perfect and `R^2 = 1` by convention.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn linear_regression(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    assert_eq!(xs.len(), ys.len(), "paired samples required");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    if sxx < 1e-15 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let pred = slope * x + intercept;
            (y - pred) * (y - pred)
        })
        .sum();
    let r_squared = if ss_tot < 1e-15 {
        1.0
    } else {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
    })
}

/// Pearson correlation coefficient `r` between paired samples, or `None`
/// when either variable has (near-)zero variance.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "paired samples required");
    if xs.len() < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    if sxx < 1e-15 || syy < 1e-15 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    Some(sxy / (sxx * syy).sqrt())
}

/// A nonparametric bootstrap confidence interval for the mean of `samples`:
/// `resamples` bootstrap means are drawn with replacement (deterministic
/// seed) and the `[alpha/2, 1 - alpha/2]` percentile interval is returned
/// as `(low, high)`.
///
/// Used to put honest uncertainty on the Fig. 2 score bars beyond the
/// plain standard deviation.
///
/// # Panics
///
/// Panics if `samples` is empty, `resamples == 0`, or `alpha` is outside
/// `(0, 1)`.
pub fn bootstrap_mean_ci(samples: &[f64], resamples: usize, alpha: f64, seed: u64) -> (f64, f64) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    assert!(!samples.is_empty(), "need at least one sample");
    assert!(resamples > 0, "need at least one resample");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut means: Vec<f64> = (0..resamples)
        .map(|_| {
            let total: f64 = (0..samples.len())
                .map(|_| samples[rng.gen_range(0..samples.len())])
                .sum();
            total / samples.len() as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let lo_idx = ((alpha / 2.0) * (resamples as f64 - 1.0)).round() as usize;
    let hi_idx = ((1.0 - alpha / 2.0) * (resamples as f64 - 1.0)).round() as usize;
    (means[lo_idx], means[hi_idx.min(resamples - 1)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn hellinger_identical_is_one() {
        let p = BTreeMap::from([(0u64, 0.3), (1, 0.7)]);
        assert!((hellinger_fidelity_maps(&p, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hellinger_disjoint_is_zero() {
        let p = BTreeMap::from([(0u64, 1.0)]);
        let q = BTreeMap::from([(1u64, 1.0)]);
        assert_eq!(hellinger_fidelity_maps(&p, &q), 0.0);
    }

    #[test]
    fn hellinger_partial_overlap() {
        // p = (1, 0), q = (1/2, 1/2): F = (sqrt(1/2))^2 = 1/2.
        let p = BTreeMap::from([(0u64, 1.0)]);
        let q = BTreeMap::from([(0u64, 0.5), (1, 0.5)]);
        assert!((hellinger_fidelity_maps(&p, &q) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hellinger_dense_matches_map_version() {
        let p = [0.25, 0.25, 0.5, 0.0];
        let q = [0.1, 0.4, 0.4, 0.1];
        let pm: BTreeMap<u64, f64> = p.iter().enumerate().map(|(i, &v)| (i as u64, v)).collect();
        let qm: BTreeMap<u64, f64> = q.iter().enumerate().map(|(i, &v)| (i as u64, v)).collect();
        assert!(
            (hellinger_fidelity_dense(&p, &q) - hellinger_fidelity_maps(&pm, &qm)).abs() < 1e-12
        );
    }

    #[test]
    fn regression_on_exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let fit = linear_regression(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn regression_on_noisy_line_has_partial_r2() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.1, 0.9, 2.2, 2.8, 4.1];
        let fit = linear_regression(&xs, &ys).unwrap();
        assert!(fit.r_squared > 0.97 && fit.r_squared < 1.0);
    }

    #[test]
    fn regression_uncorrelated_has_low_r2() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        let fit = linear_regression(&xs, &ys).unwrap();
        assert!(fit.r_squared < 0.2, "r2={}", fit.r_squared);
    }

    #[test]
    fn pearson_matches_r_squared() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.2, 1.1, 1.9, 3.2, 3.9];
        let r = pearson_correlation(&xs, &ys).unwrap();
        let fit = linear_regression(&xs, &ys).unwrap();
        assert!(
            (r * r - fit.r_squared).abs() < 1e-10,
            "r^2={} fit={}",
            r * r,
            fit.r_squared
        );
        // Anti-correlated data gives negative r.
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!(pearson_correlation(&xs, &neg).unwrap() < -0.99);
        assert!(pearson_correlation(&[1.0, 1.0], &[0.0, 1.0]).is_none());
    }

    #[test]
    fn bootstrap_ci_brackets_the_true_mean() {
        // Samples from a known distribution: the CI should contain the
        // sample mean and shrink with more data.
        let small: Vec<f64> = (0..10).map(|i| (i % 5) as f64).collect();
        let (lo, hi) = bootstrap_mean_ci(&small, 2000, 0.05, 1);
        let m = mean(&small);
        assert!(lo <= m && m <= hi, "[{lo}, {hi}] vs {m}");
        let large: Vec<f64> = (0..1000).map(|i| (i % 5) as f64).collect();
        let (lo2, hi2) = bootstrap_mean_ci(&large, 2000, 0.05, 1);
        assert!(hi2 - lo2 < hi - lo, "large-sample CI must be tighter");
    }

    #[test]
    fn bootstrap_ci_of_constant_data_is_degenerate() {
        let (lo, hi) = bootstrap_mean_ci(&[0.7; 20], 200, 0.1, 3);
        assert!((lo - 0.7).abs() < 1e-12);
        assert!((hi - 0.7).abs() < 1e-12);
        assert!(hi - lo < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bootstrap_rejects_bad_alpha() {
        bootstrap_mean_ci(&[1.0], 10, 1.5, 1);
    }

    #[test]
    fn regression_degenerate_inputs() {
        assert!(linear_regression(&[1.0], &[2.0]).is_none());
        assert!(linear_regression(&[1.0, 1.0], &[0.0, 5.0]).is_none()); // zero x-variance
                                                                        // Zero y-variance: perfect horizontal fit.
        let fit = linear_regression(&[0.0, 1.0, 2.0], &[3.0, 3.0, 3.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }
}
