//! The machine catalog: every QPU from the paper's evaluation as a model.

use crate::calibration::Calibration;
use crate::topology::Topology;
use supermarq_sim::noise::GateDurations;
use supermarq_sim::NoiseModel;

/// The native gate set a device's compiler must target (paper Sec. V: the
/// Closed Division allows "transpilation of OpenQASM to native gates").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NativeGateSet {
    /// IBM superconducting basis: `{rz, sx, x, cx}`.
    IbmLike,
    /// Trapped-ion basis: arbitrary single-qubit rotations plus the
    /// Mølmer–Sørensen `rxx` interaction.
    IonLike,
    /// AQT@LBNL superconducting basis: `{rz, sx, cz}`.
    AqtLike,
}

/// A modeled quantum processing unit: topology + calibration + gate set.
///
/// # Example
///
/// ```
/// use supermarq_device::Device;
///
/// let all = Device::all_paper_devices();
/// assert!(all.iter().any(|d| d.name() == "IBM-Montreal"));
/// assert!(all.iter().all(|d| d.num_qubits() >= 4));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    name: String,
    topology: Topology,
    calibration: Calibration,
    gate_set: NativeGateSet,
    /// Cross-talk penalty coefficient passed to the noise model (see
    /// [`NoiseModel::crosstalk`]). Superconducting devices suffer from
    /// simultaneous-gate cross-talk; ion traps less so.
    crosstalk: f64,
    /// Optional per-coupler two-qubit error rates (calibration scatter).
    edge_errors: Option<std::collections::BTreeMap<(usize, usize), f64>>,
    /// Optional per-qubit readout error rates.
    qubit_readout_errors: Option<Vec<f64>>,
}

impl Device {
    /// Builds a custom device model.
    pub fn new(
        name: impl Into<String>,
        topology: Topology,
        calibration: Calibration,
        gate_set: NativeGateSet,
        crosstalk: f64,
    ) -> Self {
        Device {
            name: name.into(),
            topology,
            calibration,
            gate_set,
            crosstalk,
            edge_errors: None,
            qubit_readout_errors: None,
        }
    }

    /// Adds deterministic calibration scatter: every coupler's two-qubit
    /// error and every qubit's readout error is scaled by a factor drawn
    /// log-uniformly from `[1/(1+spread), 1+spread]` using `seed`. Real
    /// devices show 2-5x coupler-to-coupler variation ("not all qubits are
    /// created equal"); this is the signal noise-aware placement exploits.
    ///
    /// # Panics
    ///
    /// Panics if `spread` is negative.
    pub fn with_error_variation(mut self, seed: u64, spread: f64) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        assert!(spread >= 0.0, "spread must be non-negative");
        let mut rng = StdRng::seed_from_u64(seed);
        let span = (1.0 + spread).ln();
        let mut edges = std::collections::BTreeMap::new();
        for (a, b) in self.topology.graph().edges() {
            let factor = (rng.gen_range(-span..=span)).exp();
            edges.insert((a, b), (self.calibration.err_2q * factor).min(0.9));
        }
        let readout: Vec<f64> = (0..self.topology.num_qubits())
            .map(|_| {
                let factor = (rng.gen_range(-span..=span)).exp();
                (self.calibration.err_meas * factor).min(0.45)
            })
            .collect();
        self.edge_errors = Some(edges);
        self.qubit_readout_errors = Some(readout);
        self
    }

    /// The two-qubit error rate of a specific coupler (the device average
    /// when no per-edge calibration is attached).
    pub fn edge_error(&self, a: usize, b: usize) -> f64 {
        let key = (a.min(b), a.max(b));
        self.edge_errors
            .as_ref()
            .and_then(|m| m.get(&key).copied())
            .unwrap_or(self.calibration.err_2q)
    }

    /// The readout error of a specific qubit (device average when no
    /// per-qubit calibration is attached).
    pub fn qubit_readout_error(&self, q: usize) -> f64 {
        self.qubit_readout_errors
            .as_ref()
            .and_then(|v| v.get(q).copied())
            .unwrap_or(self.calibration.err_meas)
    }

    /// Device name as shown in the paper's figures.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The qubit topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.topology.num_qubits()
    }

    /// The calibration record.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// The native gate set.
    pub fn gate_set(&self) -> NativeGateSet {
        self.gate_set
    }

    /// Derives the trajectory noise model used to "execute" benchmarks on
    /// this device.
    pub fn noise_model(&self) -> NoiseModel {
        let c = &self.calibration;
        NoiseModel {
            depolarizing_1q: c.err_1q,
            depolarizing_2q: c.err_2q,
            readout_error: c.err_meas,
            // Reset on current hardware is measurement-based; model its
            // failure rate like a readout error.
            reset_error: c.err_meas,
            t1: c.t1_us,
            t2: c.t2_us,
            durations: GateDurations {
                one_qubit: c.time_1q_us,
                two_qubit: c.time_2q_us,
                measurement: c.time_meas_us,
                reset: c.time_meas_us,
            },
            crosstalk: self.crosstalk,
            edge_depolarizing: self.edge_errors.clone(),
            qubit_readout: self.qubit_readout_errors.clone(),
        }
    }

    // --- Table II machines -------------------------------------------------

    /// IBM-Casablanca: 7 qubits, Falcon "H" layout.
    pub fn ibm_casablanca() -> Self {
        Device::new(
            "IBM-Casablanca",
            Topology::ibm_falcon_7q(),
            Calibration::from_table_row(91.21, 125.23, 0.035, 0.443, 5.9, 0.028, 0.83, 2.09),
            NativeGateSet::IbmLike,
            0.2,
        )
    }

    /// IBM-Montreal: 27 qubits.
    pub fn ibm_montreal() -> Self {
        Device::new(
            "IBM-Montreal",
            Topology::ibm_falcon_27q(),
            Calibration::from_table_row(104.14, 86.88, 0.035, 0.423, 5.2, 0.052, 1.76, 1.96),
            NativeGateSet::IbmLike,
            0.2,
        )
    }

    /// IBM-Guadalupe: 16 qubits.
    pub fn ibm_guadalupe() -> Self {
        Device::new(
            "IBM-Guadalupe",
            Topology::ibm_falcon_16q(),
            Calibration::from_table_row(99.52, 104.99, 0.035, 0.416, 5.4, 0.043, 1.03, 2.79),
            NativeGateSet::IbmLike,
            0.2,
        )
    }

    /// IBM-Lagos: 7 qubits. The paper references this device in Fig. 2/3;
    /// its Table II row points to IBM's online documentation, so
    /// representative Falcon r5.11H values are used here.
    pub fn ibm_lagos() -> Self {
        Device::new(
            "IBM-Lagos",
            Topology::ibm_falcon_7q(),
            Calibration::from_table_row(120.0, 90.0, 0.035, 0.33, 5.2, 0.02, 0.7, 1.2),
            NativeGateSet::IbmLike,
            0.2,
        )
    }

    /// IBM-Mumbai: 27 qubits (representative Falcon values; see
    /// [`Device::ibm_lagos`] note).
    pub fn ibm_mumbai() -> Self {
        Device::new(
            "IBM-Mumbai",
            Topology::ibm_falcon_27q(),
            Calibration::from_table_row(110.0, 95.0, 0.035, 0.43, 5.3, 0.04, 1.1, 2.3),
            NativeGateSet::IbmLike,
            0.2,
        )
    }

    /// IBM-Toronto: 27 qubits (representative Falcon values).
    pub fn ibm_toronto() -> Self {
        Device::new(
            "IBM-Toronto",
            Topology::ibm_falcon_27q(),
            Calibration::from_table_row(95.0, 80.0, 0.035, 0.5, 5.6, 0.06, 1.9, 3.5),
            NativeGateSet::IbmLike,
            0.2,
        )
    }

    /// IonQ: 11 fully connected trapped-ion qubits. Long coherence, slow
    /// gates, higher 2q error than IBM but no routing overhead.
    pub fn ionq() -> Self {
        Device::new(
            "IonQ",
            Topology::all_to_all(11),
            Calibration::from_table_row(1.0e7, 2.0e5, 10.0, 210.0, 100.0, 0.28, 3.04, 0.39),
            NativeGateSet::IonLike,
            0.05,
        )
    }

    /// AQT@LBNL: 4 qubits in a line.
    pub fn aqt() -> Self {
        Device::new(
            "AQT",
            Topology::line(4),
            Calibration::from_table_row(62.0, 37.0, 0.03, 0.152, 1.02, 0.083, 2.1, 1.25),
            NativeGateSet::AqtLike,
            0.2,
        )
    }

    /// Every device used in the paper's evaluation (Figs. 2–4).
    pub fn all_paper_devices() -> Vec<Device> {
        vec![
            Device::ibm_casablanca(),
            Device::ibm_lagos(),
            Device::ibm_guadalupe(),
            Device::ibm_montreal(),
            Device::ibm_mumbai(),
            Device::ibm_toronto(),
            Device::ionq(),
            Device::aqt(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_qubit_counts() {
        assert_eq!(Device::ibm_casablanca().num_qubits(), 7);
        assert_eq!(Device::ibm_montreal().num_qubits(), 27);
        assert_eq!(Device::ibm_guadalupe().num_qubits(), 16);
        assert_eq!(Device::ionq().num_qubits(), 11);
        assert_eq!(Device::aqt().num_qubits(), 4);
    }

    #[test]
    fn ionq_is_all_to_all_ibm_is_not() {
        assert!(Device::ionq().topology().is_fully_connected());
        assert!(!Device::ibm_montreal().topology().is_fully_connected());
    }

    #[test]
    fn noise_model_reflects_calibration() {
        let d = Device::ibm_casablanca();
        let nm = d.noise_model();
        assert!((nm.depolarizing_2q - 0.0083).abs() < 1e-12);
        assert!((nm.readout_error - 0.0209).abs() < 1e-12);
        assert!((nm.t1 - 91.21).abs() < 1e-9);
        assert!((nm.durations.measurement - 5.9).abs() < 1e-9);
        assert!(!nm.is_ideal());
    }

    #[test]
    fn architectural_contrast_readout_vs_t1() {
        // The Table II story: superconducting readout is a significant
        // fraction of T1; trapped-ion readout is negligible.
        for d in [
            Device::ibm_casablanca(),
            Device::ibm_montreal(),
            Device::aqt(),
        ] {
            assert!(d.calibration().readout_to_t1_ratio() > 0.01, "{}", d.name());
        }
        assert!(Device::ionq().calibration().readout_to_t1_ratio() < 1e-4);
    }

    #[test]
    fn catalog_is_complete_and_named_uniquely() {
        let all = Device::all_paper_devices();
        assert_eq!(all.len(), 8);
        let names: std::collections::BTreeSet<&str> = all.iter().map(Device::name).collect();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn error_variation_scatters_but_preserves_scale() {
        let d = Device::ibm_guadalupe().with_error_variation(5, 1.0);
        let avg = d.calibration().err_2q;
        let mut seen_different = false;
        let mut previous: Option<f64> = None;
        for (a, b) in d.topology().graph().edges() {
            let e = d.edge_error(a, b);
            assert!(e > avg / 2.5 && e < avg * 2.5, "edge ({a},{b}) error {e}");
            if let Some(p) = previous {
                if (e - p).abs() > 1e-12 {
                    seen_different = true;
                }
            }
            previous = Some(e);
        }
        assert!(seen_different, "variation must actually vary");
        // Noise model carries the per-edge data through.
        let nm = d.noise_model();
        let (a, b) = d.topology().graph().edges().next().unwrap();
        assert!((nm.depolarizing_2q_for(a, b) - d.edge_error(a, b)).abs() < 1e-12);
        assert!((nm.readout_error_for(0) - d.qubit_readout_error(0)).abs() < 1e-12);
    }

    #[test]
    fn without_variation_edge_error_is_average() {
        let d = Device::ibm_guadalupe();
        assert_eq!(d.edge_error(0, 1), d.calibration().err_2q);
        assert_eq!(d.qubit_readout_error(3), d.calibration().err_meas);
    }

    #[test]
    fn gate_sets_by_architecture() {
        assert_eq!(Device::ibm_lagos().gate_set(), NativeGateSet::IbmLike);
        assert_eq!(Device::ionq().gate_set(), NativeGateSet::IonLike);
        assert_eq!(Device::aqt().gate_set(), NativeGateSet::AqtLike);
    }
}
