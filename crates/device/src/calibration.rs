//! Device calibration records (the columns of the paper's Table II).

/// Average calibration data for one machine: coherence times, operation
/// durations and error rates. Times are microseconds; errors are
/// probabilities (Table II lists percentages — converted here).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Energy-relaxation time constant T1 (us).
    pub t1_us: f64,
    /// Dephasing time constant T2 (us).
    pub t2_us: f64,
    /// One-qubit gate duration (us).
    pub time_1q_us: f64,
    /// Two-qubit gate duration (us).
    pub time_2q_us: f64,
    /// Measurement (readout) duration (us).
    pub time_meas_us: f64,
    /// One-qubit gate error probability.
    pub err_1q: f64,
    /// Two-qubit gate error probability.
    pub err_2q: f64,
    /// Measurement (readout) error probability.
    pub err_meas: f64,
}

impl Calibration {
    /// Builds a calibration record from Table II-style values with errors
    /// given in percent.
    ///
    /// # Panics
    ///
    /// Panics if any duration or time constant is non-positive, or any
    /// error percentage is outside `[0, 100]`.
    #[allow(clippy::too_many_arguments)]
    pub fn from_table_row(
        t1_us: f64,
        t2_us: f64,
        time_1q_us: f64,
        time_2q_us: f64,
        time_meas_us: f64,
        err_1q_pct: f64,
        err_2q_pct: f64,
        err_meas_pct: f64,
    ) -> Self {
        assert!(
            t1_us > 0.0 && t2_us > 0.0,
            "coherence times must be positive"
        );
        assert!(
            time_1q_us > 0.0 && time_2q_us > 0.0 && time_meas_us > 0.0,
            "durations must be positive"
        );
        for e in [err_1q_pct, err_2q_pct, err_meas_pct] {
            assert!(
                (0.0..=100.0).contains(&e),
                "error percentage {e} out of range"
            );
        }
        Calibration {
            t1_us,
            t2_us,
            time_1q_us,
            time_2q_us,
            time_meas_us,
            err_1q: err_1q_pct / 100.0,
            err_2q: err_2q_pct / 100.0,
            err_meas: err_meas_pct / 100.0,
        }
    }

    /// The ratio of measurement duration to T1 — the quantity behind the
    /// paper's error-correction result: superconducting devices have
    /// `time_meas / T1` of a few percent (data qubits decay during ancilla
    /// readout), trapped ions have essentially zero.
    pub fn readout_to_t1_ratio(&self) -> f64 {
        self.time_meas_us / self.t1_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn casablanca() -> Calibration {
        Calibration::from_table_row(91.21, 125.23, 0.035, 0.443, 5.9, 0.028, 0.83, 2.09)
    }

    #[test]
    fn percent_conversion() {
        let c = casablanca();
        assert!((c.err_1q - 0.00028).abs() < 1e-12);
        assert!((c.err_2q - 0.0083).abs() < 1e-12);
        assert!((c.err_meas - 0.0209).abs() < 1e-12);
    }

    #[test]
    fn readout_ratio_distinguishes_architectures() {
        let sc = casablanca();
        let ion = Calibration::from_table_row(1e7, 2e5, 10.0, 210.0, 100.0, 0.28, 3.04, 0.39);
        assert!(sc.readout_to_t1_ratio() > 0.05);
        assert!(ion.readout_to_t1_ratio() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "error percentage")]
    fn rejects_out_of_range_error() {
        Calibration::from_table_row(100.0, 100.0, 0.1, 0.4, 5.0, 0.1, 150.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_duration() {
        Calibration::from_table_row(100.0, 100.0, 0.0, 0.4, 5.0, 0.1, 1.0, 1.0);
    }
}
