//! Device models for the SupermarQ reproduction.
//!
//! The paper evaluates its suite on nine QPUs across three architectures
//! (IBM superconducting, IonQ trapped-ion, AQT@LBNL superconducting) whose
//! characteristics are summarized in Table II. Since real hardware is not
//! available, each machine is modeled here as a
//! [`Device`]: a qubit [`Topology`], a [`Calibration`] record carrying the
//! Table II numbers, and a native gate set — from which a trajectory
//! [`supermarq_sim::NoiseModel`] is derived. This is the same substitution
//! the paper's own artifact makes ("this artifact uses circuit simulation
//! in place of real hardware evaluations").
//!
//! # Example
//!
//! ```
//! use supermarq_device::Device;
//!
//! let ionq = Device::ionq();
//! assert_eq!(ionq.num_qubits(), 11);
//! assert!(ionq.topology().is_fully_connected());
//! let noise = ionq.noise_model();
//! assert!(noise.depolarizing_2q > noise.depolarizing_1q);
//! ```

pub mod calibration;
pub mod catalog;
pub mod topology;

pub use calibration::Calibration;
pub use catalog::{Device, NativeGateSet};
pub use topology::Topology;
