//! Hardware qubit connectivity graphs.

use supermarq_circuit::InteractionGraph;

/// A named hardware coupling graph.
///
/// # Example
///
/// ```
/// use supermarq_device::Topology;
///
/// let line = Topology::line(5);
/// assert_eq!(line.num_qubits(), 5);
/// assert!(line.are_adjacent(1, 2));
/// assert!(!line.are_adjacent(0, 4));
/// assert_eq!(line.distance(0, 4), Some(4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    name: String,
    graph: InteractionGraph,
}

impl Topology {
    /// Builds a topology from an explicit edge list.
    ///
    /// # Panics
    ///
    /// Panics if an edge references an out-of-range qubit or is a self-loop.
    pub fn from_edges(
        name: impl Into<String>,
        num_qubits: usize,
        edges: &[(usize, usize)],
    ) -> Self {
        Topology {
            name: name.into(),
            graph: InteractionGraph::from_edges(num_qubits, edges),
        }
    }

    /// A 1-D chain of `n` qubits.
    pub fn line(n: usize) -> Self {
        let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        Topology::from_edges(format!("line-{n}"), n, &edges)
    }

    /// A ring of `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least 3 qubits");
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        Topology::from_edges(format!("ring-{n}"), n, &edges)
    }

    /// A rows x cols grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn grid(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        let mut edges = Vec::new();
        let idx = |r: usize, c: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        Topology::from_edges(format!("grid-{rows}x{cols}"), rows * cols, &edges)
    }

    /// A complete graph on `n` qubits (trapped-ion all-to-all connectivity).
    pub fn all_to_all(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                edges.push((a, b));
            }
        }
        Topology::from_edges(format!("all-to-all-{n}"), n, &edges)
    }

    /// The IBM 7-qubit Falcon "H" layout (ibmq_casablanca, ibm_lagos, ...).
    pub fn ibm_falcon_7q() -> Self {
        Topology::from_edges(
            "ibm-falcon-7q",
            7,
            &[(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)],
        )
    }

    /// The IBM 16-qubit Falcon layout (ibmq_guadalupe).
    pub fn ibm_falcon_16q() -> Self {
        Topology::from_edges(
            "ibm-falcon-16q",
            16,
            &[
                (0, 1),
                (1, 2),
                (1, 4),
                (2, 3),
                (3, 5),
                (4, 7),
                (5, 8),
                (6, 7),
                (7, 10),
                (8, 9),
                (8, 11),
                (10, 12),
                (11, 14),
                (12, 13),
                (12, 15),
                (13, 14),
            ],
        )
    }

    /// The IBM 27-qubit Falcon layout (ibmq_montreal, ibmq_mumbai,
    /// ibmq_toronto).
    pub fn ibm_falcon_27q() -> Self {
        Topology::from_edges(
            "ibm-falcon-27q",
            27,
            &[
                (0, 1),
                (1, 2),
                (1, 4),
                (2, 3),
                (3, 5),
                (4, 7),
                (5, 8),
                (6, 7),
                (7, 10),
                (8, 9),
                (8, 11),
                (10, 12),
                (11, 14),
                (12, 13),
                (12, 15),
                (13, 14),
                (14, 16),
                (15, 18),
                (16, 19),
                (17, 18),
                (18, 21),
                (19, 20),
                (19, 22),
                (21, 23),
                (22, 25),
                (23, 24),
                (24, 25),
                (25, 26),
            ],
        )
    }

    /// A parametric heavy-hex lattice with `rows` rows of `cells` hexagonal
    /// cells each — the pattern IBM scales its Falcon/Hummingbird/Eagle
    /// processors with. Each cell row is a horizontal chain; vertical
    /// bridge qubits connect alternating chain positions between rows.
    ///
    /// This is the forward-looking device generator the paper's
    /// "scalability" principle asks for: benchmarks can be placed on
    /// lattices of any size, not just the Table II machines.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn heavy_hex(rows: usize, cells: usize) -> Self {
        assert!(
            rows > 0 && cells > 0,
            "heavy-hex dimensions must be positive"
        );
        // Each chain row has 4*cells + 1 qubits; between consecutive chain
        // rows sit `cells + 1` bridge qubits attached at every 4th chain
        // position.
        let chain_len = 4 * cells + 1;
        let mut edges = Vec::new();
        let mut next_index = 0usize;
        let mut chain_starts = Vec::new();
        for _ in 0..rows {
            chain_starts.push(next_index);
            next_index += chain_len;
        }
        for &start in &chain_starts {
            for i in 0..chain_len - 1 {
                edges.push((start + i, start + i + 1));
            }
        }
        for r in 0..rows - 1 {
            let top = chain_starts[r];
            let bottom = chain_starts[r + 1];
            for b in 0..=cells {
                let bridge = next_index;
                next_index += 1;
                // Alternate bridge offsets between row parities, like the
                // real lattice.
                let offset = if r % 2 == 0 {
                    4 * b
                } else {
                    (4 * b + 2).min(chain_len - 1)
                };
                edges.push((top + offset, bridge));
                edges.push((bridge, bottom + offset));
            }
        }
        Topology::from_edges(format!("heavy-hex-{rows}x{cells}"), next_index, &edges)
    }

    /// Human-readable topology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.graph.num_qubits()
    }

    /// Number of coupler edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// `true` if a two-qubit gate can act directly on `(a, b)`.
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        self.graph.has_edge(a, b)
    }

    /// Coupler-graph distance (number of hops), or `None` if disconnected.
    pub fn distance(&self, a: usize, b: usize) -> Option<usize> {
        self.graph.distance(a, b)
    }

    /// `true` when every pair of qubits is directly coupled.
    pub fn is_fully_connected(&self) -> bool {
        let n = self.num_qubits();
        self.edge_count() == n * n.saturating_sub(1) / 2
    }

    /// Degree of physical qubit `q`.
    pub fn degree(&self, q: usize) -> usize {
        self.graph.degree(q)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &InteractionGraph {
        &self.graph
    }

    /// A shortest path between `a` and `b` (inclusive of both endpoints),
    /// or `None` if disconnected.
    pub fn shortest_path(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        if a == b {
            return Some(vec![a]);
        }
        let adj = self.graph.adjacency();
        let n = self.num_qubits();
        let mut prev = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        prev[a] = a;
        queue.push_back(a);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if prev[v] == usize::MAX {
                    prev[v] = u;
                    if v == b {
                        let mut path = vec![b];
                        let mut cur = b;
                        while cur != a {
                            cur = prev[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_structure() {
        let t = Topology::line(4);
        assert_eq!(t.edge_count(), 3);
        assert!(t.are_adjacent(0, 1));
        assert!(!t.are_adjacent(0, 2));
        assert_eq!(t.distance(0, 3), Some(3));
        assert!(!t.is_fully_connected());
    }

    #[test]
    fn ring_closes_the_loop() {
        let t = Topology::ring(5);
        assert_eq!(t.edge_count(), 5);
        assert!(t.are_adjacent(4, 0));
        assert_eq!(t.distance(0, 3), Some(2)); // around the back
    }

    #[test]
    fn grid_structure() {
        let t = Topology::grid(2, 3);
        assert_eq!(t.num_qubits(), 6);
        assert_eq!(t.edge_count(), 7); // 4 horizontal + 3 vertical
        assert!(t.are_adjacent(0, 3));
        assert!(!t.are_adjacent(0, 4));
    }

    #[test]
    fn all_to_all_is_complete() {
        let t = Topology::all_to_all(6);
        assert!(t.is_fully_connected());
        assert_eq!(t.edge_count(), 15);
        assert_eq!(t.distance(0, 5), Some(1));
    }

    #[test]
    fn ibm_layouts_have_expected_shape() {
        let h = Topology::ibm_falcon_7q();
        assert_eq!(h.num_qubits(), 7);
        assert_eq!(h.edge_count(), 6);
        assert_eq!(h.degree(1), 3); // hub of the H
        assert_eq!(h.degree(5), 3);
        let g = Topology::ibm_falcon_16q();
        assert_eq!(g.num_qubits(), 16);
        assert_eq!(g.edge_count(), 16);
        let m = Topology::ibm_falcon_27q();
        assert_eq!(m.num_qubits(), 27);
        assert_eq!(m.edge_count(), 28);
        // All layouts must be connected.
        for t in [h, g, m] {
            for q in 1..t.num_qubits() {
                assert!(
                    t.distance(0, q).is_some(),
                    "{} disconnected at {q}",
                    t.name()
                );
            }
        }
    }

    #[test]
    fn shortest_path_endpoints_and_adjacency() {
        let t = Topology::ibm_falcon_16q();
        let path = t.shortest_path(0, 15).unwrap();
        assert_eq!(*path.first().unwrap(), 0);
        assert_eq!(*path.last().unwrap(), 15);
        for w in path.windows(2) {
            assert!(t.are_adjacent(w[0], w[1]));
        }
        assert_eq!(path.len() - 1, t.distance(0, 15).unwrap());
        assert_eq!(t.shortest_path(3, 3), Some(vec![3]));
    }

    #[test]
    fn heavy_hex_structure() {
        let t = Topology::heavy_hex(2, 2);
        // Two chains of 9 qubits + 3 bridges = 21 qubits.
        assert_eq!(t.num_qubits(), 21);
        // Chain edges: 2 * 8; bridge edges: 3 * 2.
        assert_eq!(t.edge_count(), 22);
        // Connected.
        for q in 1..t.num_qubits() {
            assert!(t.distance(0, q).is_some(), "disconnected at {q}");
        }
        // Degrees bounded by 3 (the heavy-hex property).
        for q in 0..t.num_qubits() {
            assert!(t.degree(q) <= 3, "degree {} at {q}", t.degree(q));
        }
    }

    #[test]
    fn heavy_hex_scales() {
        let t = Topology::heavy_hex(4, 5);
        assert!(t.num_qubits() > 80);
        for q in 1..t.num_qubits() {
            assert!(t.distance(0, q).is_some());
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_rejected() {
        Topology::ring(2);
    }
}
