//! Registry integration: batch grids naming corpus benchmarks (qft, bv,
//! adder, grover) and `-mirror` variants expand to the same specs — and
//! the same content hashes — on the client and on the daemon, and every
//! cell executes through the registry-backed pipeline.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use supermarq::spec::execute_spec;
use supermarq_serve::{Client, ServeConfig, Server};
use supermarq_store::{RunSpec, Store, SweepGrid, TranspileSpec};

fn temp_store(tag: &str) -> Store {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "supermarq-serve-registry-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    Store::open(dir).unwrap()
}

/// A grid mixing legacy ids, promoted corpus ids, and mirror variants —
/// exactly what a post-registry client is allowed to request.
fn corpus_and_mirror_grid() -> SweepGrid {
    SweepGrid {
        benchmarks: vec![
            ("ghz".into(), vec![("size".into(), "3".into())]),
            ("qft".into(), vec![("size".into(), "3".into())]),
            (
                "bv".into(),
                vec![("secret".into(), "5".into()), ("size".into(), "3".into())],
            ),
            (
                "adder".into(),
                vec![
                    ("a".into(), "1".into()),
                    ("b".into(), "2".into()),
                    ("size".into(), "2".into()),
                ],
            ),
            (
                "grover".into(),
                vec![("marked".into(), "1".into()), ("size".into(), "2".into())],
            ),
            ("ghz-mirror".into(), vec![("size".into(), "3".into())]),
            ("qft-mirror".into(), vec![("size".into(), "3".into())]),
        ],
        devices: vec!["IonQ".into()],
        shots: vec![100],
        seeds: vec![7],
        repetitions: 1,
        transpile: TranspileSpec::default(),
        division: "closed".into(),
    }
}

#[test]
fn corpus_and_mirror_grids_expand_identically_on_client_and_server() {
    let grid = corpus_and_mirror_grid();
    let client_specs = grid.expand();
    assert_eq!(client_specs.len(), 7);

    // Mirror ids hash differently from their base benchmarks even with
    // identical params — they are distinct cache keys, not aliases.
    let ghz = client_specs.iter().find(|s| s.benchmark == "ghz").unwrap();
    let ghz_mirror = client_specs
        .iter()
        .find(|s| s.benchmark == "ghz-mirror")
        .unwrap();
    assert_ne!(ghz.content_hash(), ghz_mirror.content_hash());

    let server = Server::bind(
        ServeConfig {
            workers: 2,
            queue_capacity: 32,
            ..ServeConfig::default()
        },
        temp_store("daemon"),
        Arc::new(|spec: &RunSpec| execute_spec(spec).map_err(|e| e.to_string())),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();

    // The daemon expands the grid itself; every cell must execute.
    let batch = client.batch(&grid).unwrap();
    assert_eq!(batch.total, client_specs.len() as u64);
    assert_eq!(batch.failures, 0, "lines: {:?}", batch.lines);
    assert_eq!(batch.lines.len(), client_specs.len());

    // Server-side expansion produced the same specs in the same order:
    // each returned line embeds the content hash of the client's own
    // expansion of that cell.
    for (spec, line) in client_specs.iter().zip(&batch.lines) {
        assert!(
            line.contains(&spec.content_hash()),
            "cell for '{}' did not match client-side hash {}: {line}",
            spec.benchmark,
            spec.content_hash()
        );
    }

    // And an individual warm `run` for each client-expanded spec is
    // byte-identical to the batch cell — same key, same record.
    for (spec, line) in client_specs.iter().zip(&batch.lines) {
        assert_eq!(&client.run(spec).unwrap(), line, "{}", spec.benchmark);
    }

    server.shutdown();
}
