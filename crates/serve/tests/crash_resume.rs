//! Crash/resume semantics on a shared store (in-process simulation of
//! a SIGKILL'd daemon; the real `kill -9` pass lives in
//! `scripts/serve_smoke.sh`).
//!
//! Scenario: a daemon dies mid-batch. What that leaves behind is (a)
//! whatever objects were atomically published and (b) possibly a
//! half-written `tmp/` file. The store must verify clean, a restarted
//! daemon must serve the survivors warm and re-simulate only the gap,
//! and the replayed output must be byte-identical.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use supermarq_serve::{Client, ServeConfig, Server};
use supermarq_store::{RunOutcome, RunSpec, Store, SweepEngine, SweepGrid, TranspileSpec};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "supermarq-serve-crash-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fake_outcome(spec: &RunSpec) -> Result<RunOutcome, String> {
    Ok(RunOutcome {
        scores: (0..spec.repetitions)
            .map(|r| (spec.seed * 7 + spec.shots + r) as f64 / 1000.0)
            .collect(),
        swap_count: spec.seed,
        two_qubit_gates: spec.shots,
    })
}

fn grid() -> SweepGrid {
    SweepGrid {
        benchmarks: vec![("ghz".into(), vec![("size".into(), "3".into())])],
        devices: vec!["IonQ".into(), "AQT".into()],
        shots: vec![32],
        seeds: vec![1, 2, 3],
        repetitions: 1,
        transpile: TranspileSpec::default(),
        division: "closed".into(),
    }
}

#[test]
fn killed_daemon_resumes_with_hits_plus_resimulation_byte_identical() {
    let root = temp_dir("resume");
    let specs = grid().expand();
    assert_eq!(specs.len(), 6);

    // Oracle on a separate store.
    let oracle_store = Store::open(temp_dir("oracle")).unwrap();
    let oracle_engine = SweepEngine::new(&oracle_store);
    let oracle: Vec<String> = specs
        .iter()
        .map(|s| oracle_engine.run_job(s, fake_outcome).to_line())
        .collect();

    // First daemon completes the full batch, then "crashes": we strand
    // a half-written tmp file (what a SIGKILL mid-publication leaves)
    // and delete two published objects (cells whose publication the
    // crash preempted entirely).
    let executions = Arc::new(AtomicUsize::new(0));
    let first_count = Arc::clone(&executions);
    let first = Server::bind(
        ServeConfig::default(),
        Store::open(&root).unwrap(),
        Arc::new(move |spec: &RunSpec| {
            first_count.fetch_add(1, Ordering::Relaxed);
            fake_outcome(spec)
        }),
    )
    .unwrap();
    let mut client = Client::connect(first.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let cold = client.batch(&grid()).unwrap();
    assert_eq!(cold.lines, oracle);
    assert_eq!(executions.load(Ordering::Relaxed), specs.len());
    drop(client);
    first.shutdown();

    let store = Store::open(&root).unwrap();
    std::fs::write(
        store.root().join("tmp").join("deadbeef.777.0.tmp"),
        "{\"schema\":2,\"ha",
    )
    .unwrap();
    for spec in &specs[..2] {
        std::fs::remove_file(store.object_path(&spec.content_hash())).unwrap();
    }
    // The store verifies clean: published objects are intact, the stray
    // tmp file is invisible to reads and survives default gc (it could
    // belong to a live writer) until an exclusive-owner gc collects it.
    let verify = store.verify().unwrap();
    assert!(verify.is_clean(), "no stranded object may fail validation");
    assert_eq!(store.stats().unwrap().stray_tmp, 1);
    assert_eq!(store.gc().unwrap().removed_tmp, 0);
    assert_eq!(store.gc_with_grace(Duration::ZERO).unwrap().removed_tmp, 1);

    // Restarted daemon on the same directory: the re-request completes
    // from 4 warm hits + 2 re-simulations, byte-identical.
    let second_count = Arc::clone(&executions);
    let second = Server::bind(
        ServeConfig::default(),
        store,
        Arc::new(move |spec: &RunSpec| {
            second_count.fetch_add(1, Ordering::Relaxed);
            fake_outcome(spec)
        }),
    )
    .unwrap();
    let mut client = Client::connect(second.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let resumed = client.batch(&grid()).unwrap();
    assert_eq!(resumed.hits, 4);
    assert_eq!(resumed.misses, 2);
    assert_eq!(resumed.lines, oracle, "resume must replay byte-identically");
    assert_eq!(
        executions.load(Ordering::Relaxed),
        specs.len() + 2,
        "only the destroyed cells may re-simulate"
    );
    // And one more pass is fully warm.
    let warm = client.batch(&grid()).unwrap();
    assert_eq!(warm.hits, 6);
    assert_eq!(executions.load(Ordering::Relaxed), specs.len() + 2);
    second.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_jobs_and_strands_nothing() {
    let root = temp_dir("drain");
    let specs = grid().expand();
    let server = Server::bind(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        Store::open(&root).unwrap(),
        Arc::new(|spec: &RunSpec| {
            std::thread::sleep(Duration::from_millis(10));
            fake_outcome(spec)
        }),
    )
    .unwrap();
    let addr = server.addr();
    // A client with a batch in flight while we shut the server down.
    let handle = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        client.batch(&grid()).unwrap()
    });
    // Shut down only once the batch is admitted (visible as misses), so
    // the test exercises drain-of-accepted-work, not an accept race.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while server.metrics().misses.load(Ordering::Relaxed) < specs.len() as u64 {
        assert!(
            std::time::Instant::now() < deadline,
            "batch was never admitted"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    server.shutdown();
    // The in-flight batch still completed: accepted jobs are drained,
    // not abandoned.
    let response = handle.join().unwrap();
    assert_eq!(response.total, specs.len() as u64);
    assert_eq!(response.failures, 0);
    // And the store is clean: every result published, no stray tmp.
    let store = Store::open(&root).unwrap();
    let stats = store.stats().unwrap();
    assert_eq!(stats.entries, specs.len());
    assert_eq!(stats.stray_tmp, 0);
    assert!(store.verify().unwrap().is_clean());
}
