//! Distributed-trace propagation through the daemon.
//!
//! Two contracts:
//!
//! - A traced client `run`/`batch` produces span JSONL — client root
//!   plus the daemon's `serve.request`/`serve.execute`/engine spans —
//!   that parses with the store's strict JSON parser and forms exactly
//!   one well-formed tree per trace, rooted at the client's span. (In
//!   these tests client and daemon share a process, so their lines land
//!   in one sink; the forest checks are identical to merging two files,
//!   and the cross-process case is covered by `scripts/serve_smoke.sh`.)
//! - Tracing is observation only: warm responses are byte-identical
//!   with tracing on vs. off, even with `metrics`/`trace` ops
//!   interleaved on the same connection.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use supermarq_obs::Span;
use supermarq_serve::{Client, RunningServer, ServeConfig, Server};
use supermarq_store::{Json, RunOutcome, RunSpec, Store, SweepGrid, TranspileSpec};

/// Tracing state is process-global; serialize the tests that touch it.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "supermarq-serve-traceprop-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn temp_store(tag: &str) -> Store {
    let dir = temp_path(tag);
    let _ = std::fs::remove_dir_all(&dir);
    Store::open(dir).unwrap()
}

fn start_server(tag: &str) -> RunningServer {
    Server::bind(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        temp_store(tag),
        Arc::new(|spec: &RunSpec| {
            Ok(RunOutcome {
                scores: vec![spec.seed as f64 / 10.0],
                swap_count: spec.seed,
                two_qubit_gates: spec.shots,
            })
        }),
    )
    .unwrap()
}

fn grid() -> SweepGrid {
    SweepGrid {
        benchmarks: vec![("ghz".into(), vec![("size".into(), "3".into())])],
        devices: vec!["IonQ".into(), "AQT".into()],
        shots: vec![64],
        seeds: vec![1, 2],
        repetitions: 2,
        transpile: TranspileSpec::default(),
        division: "closed".into(),
    }
}

/// One parsed span line from the trace file.
#[derive(Debug)]
struct SpanLine {
    name: String,
    id: u64,
    parent: u64,
    remote_parent: u64,
    trace: Option<String>,
}

/// Parses the JSONL sink output with the store's strict parser,
/// keeping only span lines.
fn parse_spans(raw: &str) -> Vec<SpanLine> {
    raw.lines()
        .filter(|line| !line.is_empty())
        .map(|line| Json::parse(line).unwrap_or_else(|e| panic!("bad trace line {line:?}: {e}")))
        .filter(|value| value.get("type").and_then(Json::as_str) == Some("span"))
        .map(|value| SpanLine {
            name: value
                .get("name")
                .and_then(Json::as_str)
                .expect("span line has a name")
                .to_string(),
            id: value.get("id").and_then(Json::as_u64).expect("span id"),
            parent: value.get("parent").and_then(Json::as_u64).unwrap_or(0),
            remote_parent: value
                .get("remote_parent")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            trace: value
                .get("trace")
                .and_then(Json::as_str)
                .map(str::to_string),
        })
        .collect()
}

/// Asserts the spans carrying `trace` form one tree rooted at a span
/// named `root_name`: exactly one root, every edge (in-process parent
/// or cross-process remote parent) resolves within the group, and
/// every span reaches the root without cycles.
fn assert_single_forest(spans: &[SpanLine], trace: &str, root_name: &str) {
    let group: Vec<&SpanLine> = spans
        .iter()
        .filter(|s| s.trace.as_deref() == Some(trace))
        .collect();
    assert!(!group.is_empty(), "no spans recorded for trace {trace}");
    let ids: HashSet<u64> = group.iter().map(|s| s.id).collect();
    assert_eq!(ids.len(), group.len(), "duplicate span ids in {trace}");
    let mut edges: HashMap<u64, u64> = HashMap::new();
    let mut roots = Vec::new();
    for span in &group {
        // A span's upward edge is its in-process parent, or — for the
        // first server-side span of a request — the client's span id.
        let up = if span.parent != 0 {
            span.parent
        } else {
            span.remote_parent
        };
        if up == 0 {
            roots.push(*span);
        } else {
            assert!(
                ids.contains(&up),
                "span {} ({}) points at {} which is not in trace {trace}",
                span.id,
                span.name,
                up
            );
            edges.insert(span.id, up);
        }
    }
    assert_eq!(
        roots.len(),
        1,
        "trace {trace} must have exactly one root, got {roots:?}"
    );
    assert_eq!(roots[0].name, root_name, "root must be the client span");
    let root_id = roots[0].id;
    for span in &group {
        let mut at = span.id;
        let mut hops = 0;
        while at != root_id {
            at = *edges.get(&at).expect("edge chain ends at the root");
            hops += 1;
            assert!(hops <= group.len(), "cycle in trace {trace}");
        }
    }
}

#[test]
fn traced_run_and_batch_merge_into_one_forest_per_request() {
    let _guard = lock();
    let trace_file = temp_path("forest.jsonl");
    supermarq_obs::init_trace_file(&trace_file).unwrap();

    let server = start_server("forest");
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let specs = grid().expand();

    // Traced run: the client opens a root, forwards its context, and
    // gets the timing echo back.
    let run_trace = {
        let root = Span::open_traced("client.run");
        let ctx = root.ctx().expect("tracing is on");
        let hex = root.trace_id().expect("root carries a trace").to_hex();
        let (line, timing) = client.run_traced(&specs[0], Some(&ctx)).unwrap();
        assert!(Json::parse(&line).is_ok(), "result line is strict JSON");
        let timing = timing.expect("traced run echoes timing");
        assert_eq!(timing.source, "executed");
        assert!(timing.total_ns >= timing.queue_ns + timing.execute_ns || timing.total_ns > 0);
        hex
    };

    // Traced batch on the same connection: a fresh root, a new trace.
    let batch_trace = {
        let root = Span::open_traced("client.batch");
        let hex = root.trace_id().unwrap().to_hex();
        let response = client.batch_traced(&grid(), root.ctx().as_ref()).unwrap();
        assert_eq!(response.total as usize, specs.len());
        hex
    };
    assert_ne!(run_trace, batch_trace, "each root starts its own trace");

    server.shutdown();
    supermarq_obs::flush();
    supermarq_obs::disable();
    supermarq_obs::reset_for_tests();

    let raw = std::fs::read_to_string(&trace_file).unwrap();
    let spans = parse_spans(&raw);
    assert_single_forest(&spans, &run_trace, "client.run");
    assert_single_forest(&spans, &batch_trace, "client.batch");

    // The stitched chain exists: client.run <- serve.request (via
    // remote_parent) <- serve.execute (via parent).
    let request = spans
        .iter()
        .find(|s| s.name == "serve.request" && s.trace.as_deref() == Some(run_trace.as_str()))
        .expect("daemon recorded a traced serve.request");
    assert_ne!(request.remote_parent, 0, "request stitches to the client");
    assert!(
        spans.iter().any(|s| s.name == "serve.execute"
            && s.trace.as_deref() == Some(run_trace.as_str())
            && s.parent == request.id),
        "serve.execute parents to the traced serve.request"
    );
}

#[test]
fn warm_responses_are_byte_identical_with_tracing_on() {
    let _guard = lock();
    supermarq_obs::disable();
    supermarq_obs::reset_for_tests();

    let server = start_server("byteid");
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // Seed the store, then capture the warm responses with tracing off.
    client.batch(&grid()).unwrap();
    let warm_batch = client.batch(&grid()).unwrap();
    assert_eq!(warm_batch.hits, warm_batch.total, "second pass is warm");
    let warm_run = client.run(&grid().expand()[0]).unwrap();

    // Tracing on, with telemetry ops interleaved on the same
    // connection: the payload bytes must not move.
    let trace_file = temp_path("byteid.jsonl");
    supermarq_obs::init_trace_file(&trace_file).unwrap();
    let root = Span::open_traced("client.batch");
    let ctx = root.ctx();
    client.metrics_json().unwrap();
    let traced_batch = client.batch_traced(&grid(), ctx.as_ref()).unwrap();
    client.metrics_prometheus().unwrap();
    let (traced_run, timing) = client
        .run_traced(&grid().expand()[0], ctx.as_ref())
        .unwrap();
    client.trace_recent(None, Some(16)).unwrap();
    drop(root);
    supermarq_obs::disable();
    supermarq_obs::reset_for_tests();

    assert_eq!(traced_batch.lines, warm_batch.lines, "batch bytes moved");
    assert_eq!(traced_run, warm_run, "run bytes moved");
    let timing = timing.expect("traced warm run echoes timing");
    assert_eq!(timing.source, "warm");
    assert_eq!(timing.queue_ns, 0);
    assert_eq!(timing.execute_ns, 0);
    server.shutdown();
}
