//! Live telemetry: the `metrics` and `trace` protocol ops, scraped
//! mid-batch while work is genuinely in flight.
//!
//! A gate in the executor holds jobs open so the scrape observes
//! nonzero queue-depth/in-flight gauges and windowed latency, then the
//! gate lifts and the batch completes normally. A separate test pins
//! the schema contract: the `serve` object in `stats` and `metrics`
//! responses must expose identical field sets (one serializer, no
//! drift).

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use supermarq_serve::{Client, RunningServer, ServeConfig, Server};
use supermarq_store::{Json, RunOutcome, RunSpec, Store, SweepGrid, TranspileSpec};

fn temp_store(tag: &str) -> Store {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "supermarq-serve-telemetry-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    Store::open(dir).unwrap()
}

fn grid() -> SweepGrid {
    SweepGrid {
        benchmarks: vec![("ghz".into(), vec![("size".into(), "3".into())])],
        devices: vec!["IonQ".into(), "AQT".into()],
        shots: vec![64],
        seeds: vec![1, 2],
        repetitions: 2,
        transpile: TranspileSpec::default(),
        division: "closed".into(),
    }
}

/// A latch the executor blocks on until the test opens it.
#[derive(Default)]
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn wait(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }

    fn lift(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

/// Checks one Prometheus text-exposition line against the grammar
/// `name(\{labels\})? value` with `name` in `[a-zA-Z_:][a-zA-Z0-9_:]*`
/// and `value` a plain (non-scientific) decimal.
fn assert_exposition_line(line: &str) {
    let (metric, value) = line
        .rsplit_once(' ')
        .unwrap_or_else(|| panic!("no value separator in {line:?}"));
    let name = metric.split('{').next().unwrap();
    assert!(!name.is_empty(), "empty metric name in {line:?}");
    let mut chars = name.chars();
    let first = chars.next().unwrap();
    assert!(
        first.is_ascii_alphabetic() || first == '_' || first == ':',
        "bad metric name start in {line:?}"
    );
    assert!(
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "bad metric name in {line:?}"
    );
    if let Some(rest) = metric.strip_prefix(name) {
        if !rest.is_empty() {
            assert!(
                rest.starts_with('{') && rest.ends_with('}'),
                "bad label block in {line:?}"
            );
        }
    }
    assert!(
        value
            .strip_prefix('-')
            .unwrap_or(value)
            .chars()
            .all(|c| c.is_ascii_digit() || c == '.'),
        "value must be plain decimal (no scientific notation) in {line:?}"
    );
    assert!(
        value.parse::<f64>().is_ok(),
        "unparseable value in {line:?}"
    );
}

#[test]
fn metrics_scraped_mid_batch_show_live_queue_and_window() {
    let gate = Arc::new(Gate::default());
    let exec_gate = Arc::clone(&gate);
    let server: RunningServer = Server::bind(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        temp_store("midbatch"),
        Arc::new(move |spec: &RunSpec| {
            exec_gate.wait();
            Ok(RunOutcome {
                scores: vec![spec.seed as f64 / 10.0],
                swap_count: 0,
                two_qubit_gates: 1,
            })
        }),
    )
    .unwrap();
    let addr = server.addr();

    // Launch the batch from a helper thread; its jobs park on the gate.
    let batch = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        client.batch(&grid()).unwrap()
    });

    // Wait until the daemon reports work in flight, then scrape.
    let mut scraper = Client::connect(addr).unwrap();
    scraper
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut inflight = 0;
    for _ in 0..200 {
        let metrics = scraper.metrics_json().unwrap();
        inflight = metrics
            .get("serve")
            .and_then(|s| s.get("inflight"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if inflight > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(inflight > 0, "batch jobs never showed up as in flight");

    // JSON form: counters plus rolling-window digests.
    let json = scraper.metrics_json().unwrap();
    assert_eq!(json.get("format").and_then(Json::as_str), Some("json"));
    let window = json.get("window").expect("window digests");
    for group in ["request", "warm_hit"] {
        let digest = window.get(group).expect("both latency groups");
        for key in ["count", "p50_ns", "p99_ns", "window_ms"] {
            assert!(
                digest.get(key).and_then(Json::as_u64).is_some(),
                "window.{group}.{key} missing"
            );
        }
    }
    // The scrapes themselves are requests, so the request window has
    // samples even while every batch job is still parked on the gate.
    let request_window = window.get("request").unwrap();
    assert!(request_window.get("count").and_then(Json::as_u64).unwrap() > 0);

    // Prometheus form: every line passes the exposition grammar, and
    // the live gauges + windowed quantiles are present.
    let text = scraper.metrics_prometheus().unwrap();
    let mut seen = BTreeSet::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        assert_exposition_line(line);
        seen.insert(line.split(['{', ' ']).next().unwrap().to_string());
    }
    for required in [
        "supermarq_serve_requests_total",
        "supermarq_serve_queue_depth",
        "supermarq_serve_inflight",
        "supermarq_serve_request_latency_seconds",
        "supermarq_serve_request_latency_window_p50_seconds",
        "supermarq_serve_request_latency_window_p99_seconds",
        "supermarq_serve_warm_hit_latency_window_p99_seconds",
    ] {
        assert!(seen.contains(required), "missing metric {required}");
    }
    let inflight_line = text
        .lines()
        .find(|l| l.starts_with("supermarq_serve_inflight "))
        .unwrap();
    assert_ne!(inflight_line, "supermarq_serve_inflight 0", "{text}");

    gate.lift();
    let response = batch.join().unwrap();
    assert_eq!(response.failures, 0);

    // After the batch lands, the trace op shows its spans.
    let trace = scraper.trace_recent(None, Some(64)).unwrap();
    assert_eq!(trace.get("type").and_then(Json::as_str), Some("trace"));
    let spans = trace.get("spans").and_then(Json::as_arr).unwrap();
    assert!(
        spans
            .iter()
            .any(|s| s.get("name").and_then(Json::as_str) == Some("serve.execute")),
        "executed jobs appear in the span ring"
    );
    assert!(
        spans
            .iter()
            .any(|s| s.get("op").and_then(Json::as_str) == Some("metrics")),
        "telemetry requests appear in the span ring"
    );
    server.shutdown();
}

#[test]
fn stats_and_metrics_serve_objects_expose_the_same_fields() {
    let server = Server::bind(
        ServeConfig::default(),
        temp_store("schema"),
        Arc::new(|spec: &RunSpec| {
            Ok(RunOutcome {
                scores: vec![spec.seed as f64],
                swap_count: 0,
                two_qubit_gates: 1,
            })
        }),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    client.run(&grid().expand()[0]).unwrap();

    let keys = |value: &Json| -> BTreeSet<String> {
        match value {
            Json::Obj(pairs) => pairs.iter().map(|(k, _)| k.clone()).collect(),
            other => panic!("expected an object, got {other:?}"),
        }
    };
    let stats = client.stats().unwrap();
    let metrics = client.metrics_json().unwrap();
    let stats_serve = keys(stats.get("serve").expect("stats carries serve"));
    let metrics_serve = keys(metrics.get("serve").expect("metrics carries serve"));
    assert_eq!(
        stats_serve, metrics_serve,
        "stats and metrics must serialize the serve object through one path"
    );
    for key in ["queue_depth", "inflight", "requests", "hits"] {
        assert!(stats_serve.contains(key), "serve object missing {key}");
    }
    server.shutdown();
}
