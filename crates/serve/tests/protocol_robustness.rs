//! Protocol robustness at the socket level: malformed, truncated, and
//! oversized request frames. The contract is absolute — every frame
//! earns a typed error response (or a clean close after one); never a
//! panic, never a hung connection.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use supermarq_obs::TraceId;
use supermarq_serve::protocol::{encode_request, parse_request};
use supermarq_serve::{Client, Request, RunningServer, ServeConfig, Server, MAX_FRAME};
use supermarq_store::{Json, RunOutcome, RunSpec, Store, SweepGrid, TranspileSpec};

fn temp_store(tag: &str) -> Store {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "supermarq-serve-proto-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    Store::open(dir).unwrap()
}

fn start_server(tag: &str) -> RunningServer {
    Server::bind(
        ServeConfig {
            idle_timeout: Duration::from_secs(5),
            ..ServeConfig::default()
        },
        temp_store(tag),
        Arc::new(|spec: &RunSpec| {
            Ok(RunOutcome {
                scores: vec![spec.seed as f64 / 10.0],
                swap_count: 0,
                two_qubit_gates: 1,
            })
        }),
    )
    .unwrap()
}

/// Sends raw bytes and reads one response line, with a hang guard.
fn raw_round_trip(addr: SocketAddr, payload: &[u8]) -> Option<String> {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(payload).unwrap();
    writer.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => None,
        Ok(_) => Some(line.trim_end().to_string()),
        Err(e) => panic!("connection hung or died on {payload:?}: {e}"),
    }
}

fn assert_error_kind(line: &str, kind: &str) {
    let value = Json::parse(line).unwrap_or_else(|e| panic!("unparseable response {line:?}: {e}"));
    assert_eq!(value.get("type").and_then(Json::as_str), Some("error"));
    assert_eq!(
        value.get("kind").and_then(Json::as_str),
        Some(kind),
        "{line}"
    );
    assert!(value.get("message").and_then(Json::as_str).is_some());
}

#[test]
fn malformed_corpus_gets_typed_parse_errors_and_connection_survives() {
    let server = start_server("corpus");
    let addr = server.addr();
    let corpus: [&[u8]; 12] = [
        b"not json\n",
        b"{}\n",
        b"[]\n",
        b"42\n",
        b"\"op\"\n",
        b"{\"op\":42}\n",
        b"{\"op\":\"launch-missiles\"}\n",
        b"{\"op\":\"run\"}\n",
        b"{\"op\":\"run\",\"spec\":[]}\n",
        b"{\"op\":\"batch\",\"grid\":{\"benchmarks\":3}}\n",
        b"{\"op\":\"run\",\"spec\":{\"benchmark\":\"ghz\"}}\n",
        &[0xff, 0xfe, 0x01, b'\n'], // invalid UTF-8
    ];
    for payload in corpus {
        let line = raw_round_trip(addr, payload).expect("a response line");
        assert_error_kind(&line, "parse");
    }
    // One connection, garbage then a valid request: the parse error
    // must not poison the stream.
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer.write_all(b"garbage\n{\"op\":\"ping\"}\n").unwrap();
    let mut first = String::new();
    reader.read_line(&mut first).unwrap();
    assert_error_kind(first.trim_end(), "parse");
    let mut second = String::new();
    reader.read_line(&mut second).unwrap();
    assert_eq!(second.trim_end(), r#"{"type":"pong"}"#);
    server.shutdown();
}

#[test]
fn truncated_frame_gets_a_parse_error_then_a_clean_close() {
    let server = start_server("truncated");
    let stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    // A request cut mid-object, never newline-terminated; then the
    // client half-closes, signalling EOF.
    writer
        .write_all(b"{\"op\":\"run\",\"spec\":{\"benchm")
        .unwrap();
    writer.flush().unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_error_kind(line.trim_end(), "parse");
    // And then the server closes: next read is EOF, not a hang.
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).unwrap(), 0);
    server.shutdown();
}

#[test]
fn oversized_frame_gets_a_typed_error_and_the_connection_closes() {
    let server = start_server("oversized");
    let stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    // A single frame just past the cap. Write may fail partway once the
    // server closes its end — that is acceptable; the error line must
    // still arrive.
    let huge = vec![b'x'; MAX_FRAME + 2];
    let _ = writer.write_all(&huge);
    let _ = writer.flush();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_error_kind(line.trim_end(), "oversized");
    let mut rest = String::new();
    assert_eq!(
        reader.read_line(&mut rest).unwrap(),
        0,
        "connection must close after an unrecoverable frame"
    );
    server.shutdown();
}

#[test]
fn empty_and_whitespace_lines_are_ignored_keepalives() {
    let server = start_server("blank");
    let stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(b"\n\r\n   \n{\"op\":\"ping\"}\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(
        line.trim_end(),
        r#"{"type":"pong"}"#,
        "blanks must be skipped"
    );
    server.shutdown();
}

#[test]
fn typed_client_reports_protocol_errors_as_errors() {
    let server = start_server("typed");
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    client.ping().unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.get("serve").is_some());
    server.shutdown();
}

/// One fixed, valid spec for the trace-field fuzzing below.
fn fixed_spec() -> RunSpec {
    SweepGrid {
        benchmarks: vec![("ghz".into(), vec![("size".into(), "3".into())])],
        devices: vec!["IonQ".into()],
        shots: vec![64],
        seeds: vec![1],
        repetitions: 2,
        transpile: TranspileSpec::default(),
        division: "closed".into(),
    }
    .expand()
    .remove(0)
}

/// Arbitrary junk for the optional `trace` field on a `run` frame:
/// wrong types, wrong lengths, truncated/oversized/zero hex — and,
/// when the random hex happens to be exactly 32 nonzero digits, a
/// well-formed context that must survive the round trip.
fn junk_trace() -> impl Strategy<Value = Json> {
    (
        0u32..8,
        prop::collection::vec(0u32..16, 0..48),
        0u64..u64::MAX,
    )
        .prop_map(|(variant, nibbles, parent)| {
            let hex: String = nibbles
                .iter()
                .map(|&n| char::from_digit(n, 16).unwrap())
                .collect();
            match variant {
                0 => Json::Null,
                1 => Json::Bool(parent % 2 == 0),
                2 => Json::uint(parent),
                3 => Json::str(hex), // right shape, wrong type (bare string)
                4 => Json::Arr(vec![]),
                5 => Json::Obj(vec![]), // object missing `id`
                6 => Json::Obj(vec![("id".into(), Json::uint(parent))]), // id wrong type
                _ => Json::Obj(vec![
                    ("id".into(), Json::str(hex)),
                    ("parent".into(), Json::uint(parent)),
                ]),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A valid `run` frame with an arbitrary `trace` field always
    /// parses, never errors: junk/missing/oversized contexts degrade
    /// to an untraced request (`trace: None`), and only a well-formed
    /// `{id: 32-hex-nonzero}` object survives the round trip.
    #[test]
    fn junk_trace_fields_degrade_to_untraced_never_error(junk in junk_trace()) {
        let spec = fixed_spec();
        let encoded = encode_request(&Request::Run { spec: spec.clone(), trace: None });
        let mut obj = match Json::parse(&encoded).unwrap() {
            Json::Obj(pairs) => pairs,
            other => panic!("encoded request is not an object: {other:?}"),
        };
        obj.push(("trace".into(), junk.clone()));
        let frame = Json::Obj(obj).to_string();

        // Parse level: the frame is accepted, and the context survives
        // exactly when the id is a valid 32-hex nonzero trace id.
        let parsed = parse_request(&frame).expect("junk trace must not fail the frame");
        let expected_id = junk.get("id").and_then(Json::as_str).and_then(TraceId::parse);
        match parsed {
            Request::Run { trace, .. } => match expected_id {
                Some(id) => {
                    let ctx = trace.expect("valid context must be kept");
                    prop_assert_eq!(ctx.trace, Some(id));
                    prop_assert_eq!(ctx.parent, junk.get("parent").and_then(Json::as_u64).unwrap_or(0));
                }
                None => prop_assert!(trace.is_none(), "junk must degrade to None"),
            },
            other => panic!("round-tripped into {other:?}"),
        }

        // Socket level: the daemon answers with a result line, not an
        // error — tracing junk never breaks the request itself.
        static SERVER: std::sync::OnceLock<RunningServer> = std::sync::OnceLock::new();
        let server = SERVER.get_or_init(|| start_server("tracejunk"));
        let mut payload = frame.into_bytes();
        payload.push(b'\n');
        let line = raw_round_trip(server.addr(), &payload).expect("a response line");
        let value = Json::parse(&line).expect("response must be valid JSON");
        prop_assert_ne!(value.get("type").and_then(Json::as_str), Some("error"), "{}", line);
    }

    /// Arbitrary junk frames (newlines stripped so each is one frame)
    /// always produce exactly one parseable JSON response line.
    #[test]
    fn junk_frames_always_get_a_json_response(bytes in prop::collection::vec(0u8..=255, 1..200)) {
        static SERVER: std::sync::OnceLock<RunningServer> = std::sync::OnceLock::new();
        let server = SERVER.get_or_init(|| start_server("proptest"));
        let mut payload: Vec<u8> = bytes
            .into_iter()
            .filter(|&b| b != b'\n' && b != b'\r')
            .collect();
        payload.push(b'\n');
        if payload.iter().all(|b| b.is_ascii_whitespace()) {
            return; // blank keep-alive: legitimately no response
        }
        let line = raw_round_trip(server.addr(), &payload).expect("a response line");
        let value = Json::parse(&line).expect("response must be valid JSON");
        // Random bytes can only ever parse as a protocol error (it
        // takes a well-formed op to get anything else).
        prop_assert_eq!(value.get("type").and_then(Json::as_str), Some("error"));
    }
}
