//! Concurrency hammer: N client threads issuing overlapping `run` and
//! `batch` requests against one daemon.
//!
//! The contract under load:
//! - every response is byte-identical to a cold, single-threaded oracle
//!   sweep over a separate store;
//! - warm requests are answered with zero new simulations;
//! - duplicate specs are simulated exactly once, no matter how many
//!   clients ask concurrently (coalescing + cache, asserted via the
//!   `serve.*` counters and the executor's own call count).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use supermarq_serve::{Client, ServeConfig, Server};
use supermarq_store::{Json, RunOutcome, RunSpec, Store, SweepEngine, SweepGrid, TranspileSpec};

fn temp_store(tag: &str) -> Store {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "supermarq-serve-hammer-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    Store::open(dir).unwrap()
}

/// Deterministic pure function of the spec, slow enough (2 ms) that
/// concurrent duplicates genuinely overlap and must coalesce.
fn fake_outcome(spec: &RunSpec) -> Result<RunOutcome, String> {
    std::thread::sleep(Duration::from_millis(2));
    Ok(RunOutcome {
        scores: (0..spec.repetitions)
            .map(|r| (spec.seed + spec.shots + r) as f64 / 1000.0)
            .collect(),
        swap_count: spec.seed,
        two_qubit_gates: spec.shots,
    })
}

fn grid() -> SweepGrid {
    SweepGrid {
        benchmarks: vec![
            ("ghz".into(), vec![("size".into(), "3".into())]),
            ("qaoa".into(), vec![("size".into(), "4".into())]),
        ],
        devices: vec!["IonQ".into(), "AQT".into()],
        shots: vec![64],
        seeds: vec![1, 2],
        repetitions: 2,
        transpile: TranspileSpec::default(),
        division: "closed".into(),
    }
}

/// Cold single-threaded oracle: hash → expected line.
fn oracle_lines(specs: &[RunSpec]) -> HashMap<String, String> {
    let store = temp_store("oracle");
    let engine = SweepEngine::new(&store);
    specs
        .iter()
        .map(|spec| {
            let result = engine.run_job(spec, fake_outcome);
            (spec.content_hash(), result.to_line())
        })
        .collect()
}

#[test]
fn hammer_overlapping_runs_and_batches_match_the_oracle() {
    let specs = grid().expand();
    assert_eq!(specs.len(), 8);
    let oracle = oracle_lines(&specs);
    let executions = Arc::new(AtomicUsize::new(0));
    let exec_count = Arc::clone(&executions);
    let server = Server::bind(
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            ..ServeConfig::default()
        },
        temp_store("daemon"),
        Arc::new(move |spec: &RunSpec| {
            exec_count.fetch_add(1, Ordering::Relaxed);
            fake_outcome(spec)
        }),
    )
    .unwrap();
    let addr = server.addr();

    // Phase 1 — cold hammer: 8 threads, each issuing every spec as a
    // `run` plus the whole grid as a `batch`, all overlapping.
    let threads = 8;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let specs = &specs;
            let oracle = &oracle;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .unwrap();
                // Interleave request shapes across threads.
                if t % 2 == 0 {
                    for spec in specs.iter() {
                        let line = client.run(spec).unwrap();
                        assert_eq!(line, oracle[&spec.content_hash()], "run line diverged");
                    }
                    let batch = client.batch(&grid()).unwrap();
                    assert_eq!(batch.total, 8);
                    assert_eq!(batch.hits + batch.misses, 8);
                    assert_eq!(batch.failures, 0);
                    for (spec, line) in specs.iter().zip(&batch.lines) {
                        assert_eq!(line, &oracle[&spec.content_hash()], "batch line diverged");
                    }
                } else {
                    let batch = client.batch(&grid()).unwrap();
                    for (spec, line) in specs.iter().zip(&batch.lines) {
                        assert_eq!(line, &oracle[&spec.content_hash()]);
                    }
                    for spec in specs.iter().rev() {
                        let line = client.run(spec).unwrap();
                        assert_eq!(line, oracle[&spec.content_hash()]);
                    }
                }
            });
        }
    });

    // Coalescing + cache: despite 8 threads × (8 runs + 8 batch cells),
    // each unique spec was simulated exactly once.
    assert_eq!(
        executions.load(Ordering::Relaxed),
        specs.len(),
        "duplicate specs must be simulated exactly once"
    );
    let metrics = server.metrics();
    assert_eq!(
        metrics.simulations.load(Ordering::Relaxed),
        specs.len() as u64
    );
    let hits = metrics.hits.load(Ordering::Relaxed);
    let misses = metrics.misses.load(Ordering::Relaxed);
    // Every cell of every request resolved as either warm hit or miss.
    assert_eq!(hits + misses, (threads * specs.len() * 2) as u64);
    // Misses beyond the unique specs either joined an in-flight twin or
    // re-resolved warm inside the worker; neither re-simulates. (The
    // exact coalesced count is timing-dependent; the deterministic
    // guarantee is pinned by `concurrent_duplicates_share_one_simulation`.)
    assert!(metrics.coalesced.load(Ordering::Relaxed) <= misses);
    assert_eq!(metrics.errors.load(Ordering::Relaxed), 0);
    assert_eq!(metrics.rejected.load(Ordering::Relaxed), 0);

    // Phase 2 — fully warm: a fresh batch is all hits, zero simulations.
    let mut client = Client::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let warm = client.batch(&grid()).unwrap();
    assert_eq!(
        warm.hits, 8,
        "warm pass must be served entirely from the store"
    );
    assert_eq!(warm.misses, 0);
    assert_eq!(
        executions.load(Ordering::Relaxed),
        specs.len(),
        "warm pass must perform zero simulations"
    );
    for (spec, line) in specs.iter().zip(&warm.lines) {
        assert_eq!(line, &oracle[&spec.content_hash()]);
    }

    // The stats request sees the same counters the test just asserted.
    let stats = client.stats().unwrap();
    let serve = stats.get("serve").unwrap();
    assert_eq!(
        serve.get("simulations").and_then(Json::as_u64),
        Some(specs.len() as u64)
    );
    assert_eq!(
        stats
            .get("store")
            .and_then(|s| s.get("entries"))
            .and_then(Json::as_u64),
        Some(specs.len() as u64)
    );
    server.shutdown();
}

#[test]
fn concurrent_duplicates_share_one_simulation() {
    // The executor blocks on a gate until every duplicate is enqueued,
    // making the coalescing count deterministic: first request starts
    // the job, the other three must join it.
    let gate = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
    let executions = Arc::new(AtomicUsize::new(0));
    let (exec_gate, exec_count) = (Arc::clone(&gate), Arc::clone(&executions));
    let server = Server::bind(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        temp_store("coalesce"),
        Arc::new(move |spec: &RunSpec| {
            executions_wait(&exec_gate);
            exec_count.fetch_add(1, Ordering::Relaxed);
            fake_outcome(spec)
        }),
    )
    .unwrap();
    let addr = server.addr();
    let spec = grid().expand().remove(0);
    let clients: u64 = 4;
    std::thread::scope(|scope| {
        let mut lines = Vec::new();
        for _ in 0..clients {
            let spec = spec.clone();
            lines.push(scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .unwrap();
                client.run(&spec).unwrap()
            }));
        }
        // Wait until all four requests are counted as misses, then open
        // the gate so the single job can run.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while server.metrics().misses.load(Ordering::Relaxed) < clients {
            assert!(
                std::time::Instant::now() < deadline,
                "requests never queued"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let (lock, cvar) = &*gate;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
        let all: Vec<String> = lines.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(all.windows(2).all(|w| w[0] == w[1]), "responses diverged");
    });
    assert_eq!(executions.load(Ordering::Relaxed), 1);
    let metrics = server.metrics();
    assert_eq!(metrics.misses.load(Ordering::Relaxed), clients);
    assert_eq!(metrics.coalesced.load(Ordering::Relaxed), clients - 1);
    assert_eq!(metrics.simulations.load(Ordering::Relaxed), 1);
    server.shutdown();
}

fn executions_wait(gate: &(std::sync::Mutex<bool>, std::sync::Condvar)) {
    let (lock, cvar) = gate;
    let mut open = lock.lock().unwrap();
    while !*open {
        open = cvar.wait(open).unwrap();
    }
}

#[test]
fn warm_single_run_latency_is_recorded() {
    let store = temp_store("warmlat");
    let spec = grid().expand().remove(0);
    // Pre-warm the store so the first request is already a hit.
    SweepEngine::new(&store).run_job(&spec, fake_outcome);
    let server = Server::bind(
        ServeConfig::default(),
        store,
        Arc::new(|_: &RunSpec| Err("cold path must not run".into())),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    for _ in 0..10 {
        client.run(&spec).unwrap();
    }
    let metrics = server.metrics();
    assert_eq!(metrics.hits.load(Ordering::Relaxed), 10);
    assert_eq!(metrics.warm_hit_ns.count(), 10);
    assert!(metrics.warm_hit_ns.quantile(0.99) > 0);
    server.shutdown();
}
