//! The wire protocol: one strict-JSON request per line, answered by one
//! or more strict-JSON response lines.
//!
//! Grammar (each `<...>` is a single `\n`-terminated JSON object):
//!
//! ```text
//! request  := {"op":"ping"}
//!           | {"op":"run","spec":<RunSpec>}
//!           | {"op":"batch","grid":<SweepGrid>}
//!           | {"op":"stats"}
//!           | {"op":"shutdown"}
//!
//! response := {"type":"pong"}                                 (ping)
//!           | <result-line>                                   (run)
//!           | {"type":"batch","total":N,"hits":H,
//!              "misses":M,"failures":F} <result-line>*N       (batch)
//!           | {"type":"stats","store":{..},"serve":{..}}      (stats)
//!           | {"type":"shutdown"}                             (shutdown)
//!           | {"type":"error","kind":K,"message":S
//!              [,"retry_after_ms":N]}                         (any)
//! ```
//!
//! A `<result-line>` is exactly [`SweepResult::to_line`]: the stored
//! record serialization on success, `{"schema":..,"error":..,"spec":..}`
//! on executor failure. That makes daemon responses byte-identical to
//! `supermarq batch` output and to the store's on-disk objects — the
//! property the hammer and smoke tests pin.
//!
//! Responses never use the key `"type":"error"` for anything but
//! protocol-level errors, so clients classify lines by that key alone.
//!
//! [`SweepResult::to_line`]: supermarq_store::SweepResult::to_line

use supermarq_store::{Json, RunSpec, SweepGrid};

/// Maximum accepted request-frame length in bytes (newline included).
/// Anything longer gets a typed `oversized` error and the connection is
/// closed (there is no way to resynchronize mid-line).
pub const MAX_FRAME: usize = 1 << 20;

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Execute (or fetch) a single run.
    Run(RunSpec),
    /// Expand and execute a whole grid server-side.
    Batch(SweepGrid),
    /// Store + service counters.
    Stats,
    /// Graceful shutdown: finish in-flight jobs, then exit.
    Shutdown,
}

/// Error taxonomy for `{"type":"error","kind":...}` responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Unintelligible or schema-violating request.
    Parse,
    /// Job queue full; retry after `retry_after_ms`.
    Busy,
    /// Request frame exceeded [`MAX_FRAME`].
    Oversized,
    /// Daemon is draining; no new work accepted.
    ShuttingDown,
    /// Server-side invariant violation (e.g. executor panic).
    Internal,
}

impl ErrorKind {
    /// The wire name of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Busy => "busy",
            ErrorKind::Oversized => "oversized",
            ErrorKind::ShuttingDown => "shutting-down",
            ErrorKind::Internal => "internal",
        }
    }
}

/// Parses one request line. Strict: any deviation is an error message
/// (which the server wraps in a typed `parse` response) — never a panic.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = Json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing string field 'op'")?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "run" => {
            let spec = value.get("spec").ok_or("'run' request missing 'spec'")?;
            RunSpec::from_json(spec)
                .map(Request::Run)
                .map_err(|e| format!("bad spec: {e}"))
        }
        "batch" => {
            let grid = value.get("grid").ok_or("'batch' request missing 'grid'")?;
            SweepGrid::from_json(grid)
                .map(Request::Batch)
                .map_err(|e| format!("bad grid: {e}"))
        }
        other => Err(format!("unknown op '{other}'")),
    }
}

/// Encodes a request for the wire (client side).
pub fn encode_request(request: &Request) -> String {
    let obj = match request {
        Request::Ping => vec![("op".into(), Json::str("ping"))],
        Request::Stats => vec![("op".into(), Json::str("stats"))],
        Request::Shutdown => vec![("op".into(), Json::str("shutdown"))],
        Request::Run(spec) => vec![
            ("op".into(), Json::str("run")),
            ("spec".into(), spec.to_json()),
        ],
        Request::Batch(grid) => vec![
            ("op".into(), Json::str("batch")),
            ("grid".into(), grid.to_json()),
        ],
    };
    Json::Obj(obj).to_string()
}

/// The `ping` response.
pub fn pong_line() -> String {
    Json::Obj(vec![("type".into(), Json::str("pong"))]).to_string()
}

/// The `shutdown` acknowledgement.
pub fn shutdown_line() -> String {
    Json::Obj(vec![("type".into(), Json::str("shutdown"))]).to_string()
}

/// A typed error response.
pub fn error_line(kind: ErrorKind, message: &str, retry_after_ms: Option<u64>) -> String {
    let mut obj = vec![
        ("type".into(), Json::str("error")),
        ("kind".into(), Json::str(kind.as_str())),
        ("message".into(), Json::str(message)),
    ];
    if let Some(ms) = retry_after_ms {
        obj.push(("retry_after_ms".into(), Json::uint(ms)));
    }
    Json::Obj(obj).to_string()
}

/// The `batch` response header; exactly `total` result lines follow.
pub fn batch_header_line(total: u64, hits: u64, misses: u64, failures: u64) -> String {
    Json::Obj(vec![
        ("type".into(), Json::str("batch")),
        ("total".into(), Json::uint(total)),
        ("hits".into(), Json::uint(hits)),
        ("misses".into(), Json::uint(misses)),
        ("failures".into(), Json::uint(failures)),
    ])
    .to_string()
}

/// The `stats` response: the store's [`StoreStats::to_json`] schema plus
/// service counters, one serializer end to end.
///
/// [`StoreStats::to_json`]: supermarq_store::StoreStats::to_json
pub fn stats_line(store: Json, serve: Json) -> String {
    Json::Obj(vec![
        ("type".into(), Json::str("stats")),
        ("store".into(), store),
        ("serve".into(), serve),
    ])
    .to_string()
}

/// Classifies a response line: `Err((kind, message))` when it is a
/// protocol error, `Ok(parsed)` otherwise.
pub fn classify_response(line: &str) -> Result<Json, (String, String)> {
    match Json::parse(line) {
        Ok(value) => {
            if value.get("type").and_then(Json::as_str) == Some("error") {
                let kind = value
                    .get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("internal")
                    .to_string();
                let message = value
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                Err((kind, message))
            } else {
                Ok(value)
            }
        }
        Err(e) => Err(("parse".into(), format!("unparseable response: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> RunSpec {
        RunSpec::new("ghz", vec![("size".into(), "3".into())], "IonQ", 100, 2, 7)
    }

    #[test]
    fn requests_round_trip_through_the_wire() {
        let grid = SweepGrid {
            benchmarks: vec![("ghz".into(), vec![("size".into(), "3".into())])],
            devices: vec!["IonQ".into()],
            shots: vec![10],
            seeds: vec![1],
            repetitions: 1,
            transpile: Default::default(),
            division: "closed".into(),
        };
        for request in [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Run(spec()),
            Request::Batch(grid),
        ] {
            let line = encode_request(&request);
            let back = parse_request(&line).unwrap();
            match (&request, &back) {
                (Request::Run(a), Request::Run(b)) => assert_eq!(a, b),
                (Request::Batch(a), Request::Batch(b)) => {
                    assert_eq!(a.expand(), b.expand())
                }
                _ => assert_eq!(
                    std::mem::discriminant(&request),
                    std::mem::discriminant(&back)
                ),
            }
        }
    }

    #[test]
    fn malformed_requests_produce_messages_never_panics() {
        for junk in [
            "",
            "not json",
            "{}",
            "[1,2]",
            r#"{"op":42}"#,
            r#"{"op":"transmogrify"}"#,
            r#"{"op":"run"}"#,
            r#"{"op":"run","spec":17}"#,
            r#"{"op":"batch","grid":[]}"#,
            r#"{"op":"batch","grid":{"benchmarks":"all"}}"#,
        ] {
            assert!(parse_request(junk).is_err(), "{junk:?} must be rejected");
        }
    }

    #[test]
    fn error_lines_carry_kind_and_optional_retry() {
        let plain = error_line(ErrorKind::Parse, "bad", None);
        assert_eq!(plain, r#"{"type":"error","kind":"parse","message":"bad"}"#);
        let busy = error_line(ErrorKind::Busy, "queue full", Some(250));
        assert!(busy.contains("\"retry_after_ms\":250"));
        let (kind, message) = classify_response(&busy).unwrap_err();
        assert_eq!(kind, "busy");
        assert_eq!(message, "queue full");
        assert!(classify_response(&pong_line()).is_ok());
    }
}
