//! The wire protocol: one strict-JSON request per line, answered by one
//! or more strict-JSON response lines.
//!
//! Grammar (each `<...>` is a single `\n`-terminated JSON object):
//!
//! ```text
//! request  := {"op":"ping"}
//!           | {"op":"run","spec":<RunSpec>[,"trace":<ctx>]}
//!           | {"op":"batch","grid":<SweepGrid>[,"trace":<ctx>]}
//!           | {"op":"stats"}
//!           | {"op":"metrics"[,"format":"json"|"prometheus"]}
//!           | {"op":"trace"[,"id":S][,"limit":N]}
//!           | {"op":"shutdown"}
//! ctx      := {"id":<32-hex trace id>,"parent":<span id>}
//!
//! response := {"type":"pong"}                                 (ping)
//!           | <result-line> [<timing-line>]                   (run)
//!           | {"type":"batch","total":N,"hits":H,
//!              "misses":M,"failures":F} <result-line>*N       (batch)
//!           | {"type":"stats","store":{..},"serve":{..}}      (stats)
//!           | {"type":"metrics","format":"json",
//!              "serve":{..},"window":{..}}                    (metrics)
//!           | {"type":"metrics","format":"prometheus",
//!              "body":S}                                      (metrics)
//!           | {"type":"trace","count":N,"spans":[{..}..]}     (trace)
//!           | {"type":"shutdown"}                             (shutdown)
//!           | {"type":"error","kind":K,"message":S
//!              [,"retry_after_ms":N]}                         (any)
//! ```
//!
//! A `<result-line>` is exactly [`SweepResult::to_line`]: the stored
//! record serialization on success, `{"schema":..,"error":..,"spec":..}`
//! on executor failure. That makes daemon responses byte-identical to
//! `supermarq batch` output and to the store's on-disk objects — the
//! property the hammer and smoke tests pin.
//!
//! The optional `trace` field continues a client-initiated distributed
//! trace through the daemon. It is parsed *leniently*: a junk, missing,
//! oversized, or otherwise malformed context degrades to "no trace"
//! (the server starts a fresh root) and is **never** a protocol error —
//! observability must not be able to fail a request. A `run` that *did*
//! carry a context gets one extra `{"type":"timing",...}` line after
//! its result, attributing server time to queue wait vs. execution;
//! requests without a context get byte-identical responses to a daemon
//! that has never heard of tracing.
//!
//! Responses never use the key `"type":"error"` for anything but
//! protocol-level errors, so clients classify lines by that key alone.
//!
//! [`SweepResult::to_line`]: supermarq_store::SweepResult::to_line

use supermarq_obs::{TraceContext, TraceId};
use supermarq_store::{Json, RunSpec, SweepGrid};

/// Maximum accepted request-frame length in bytes (newline included).
/// Anything longer gets a typed `oversized` error and the connection is
/// closed (there is no way to resynchronize mid-line).
pub const MAX_FRAME: usize = 1 << 20;

/// Requested wire format for the `metrics` op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// Strict JSON (the default).
    #[default]
    Json,
    /// Prometheus text exposition, shipped as an escaped string field.
    Prometheus,
}

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Execute (or fetch) a single run, optionally inside a
    /// client-initiated trace.
    Run {
        /// The run to execute or fetch.
        spec: RunSpec,
        /// Distributed-trace context, when the client sent a valid one.
        trace: Option<TraceContext>,
    },
    /// Expand and execute a whole grid server-side.
    Batch {
        /// The grid to expand.
        grid: SweepGrid,
        /// Distributed-trace context, when the client sent a valid one.
        trace: Option<TraceContext>,
    },
    /// Store + service counters.
    Stats,
    /// Live telemetry: counters, gauges, windowed latency.
    Metrics(MetricsFormat),
    /// Recent completed spans from the in-daemon ring buffer.
    Trace {
        /// Only return spans from this trace (32-hex id). A filter that
        /// matches nothing returns zero spans, not an error.
        id: Option<String>,
        /// At most this many spans (server clamps to the ring size).
        limit: Option<u64>,
    },
    /// Graceful shutdown: finish in-flight jobs, then exit.
    Shutdown,
}

/// Error taxonomy for `{"type":"error","kind":...}` responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Unintelligible or schema-violating request.
    Parse,
    /// Job queue full; retry after `retry_after_ms`.
    Busy,
    /// Request frame exceeded [`MAX_FRAME`].
    Oversized,
    /// Daemon is draining; no new work accepted.
    ShuttingDown,
    /// Server-side invariant violation (e.g. executor panic).
    Internal,
}

impl ErrorKind {
    /// The wire name of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Busy => "busy",
            ErrorKind::Oversized => "oversized",
            ErrorKind::ShuttingDown => "shutting-down",
            ErrorKind::Internal => "internal",
        }
    }
}

/// Lenient trace-context extraction: any malformation — wrong type,
/// junk or oversized id, missing parent — degrades to `None` ("no
/// trace") rather than an error. A request must never fail because its
/// observability envelope was bad.
fn parse_trace(value: &Json) -> Option<TraceContext> {
    let ctx = value.get("trace")?;
    let id = ctx.get("id").and_then(Json::as_str)?;
    let trace = TraceId::parse(id)?;
    let parent = ctx.get("parent").and_then(Json::as_u64).unwrap_or(0);
    Some(TraceContext::new(Some(trace), parent))
}

fn trace_to_json(ctx: &TraceContext) -> Option<Json> {
    let id = ctx.trace?;
    Some(Json::Obj(vec![
        ("id".into(), Json::str(id.to_hex())),
        ("parent".into(), Json::uint(ctx.parent)),
    ]))
}

/// Parses one request line. Strict about the operation envelope (any
/// deviation is an error message the server wraps in a typed `parse`
/// response — never a panic); lenient only about the optional `trace`
/// field, which degrades to "no trace" when malformed.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = Json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing string field 'op'")?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "run" => {
            let spec = value.get("spec").ok_or("'run' request missing 'spec'")?;
            let spec = RunSpec::from_json(spec).map_err(|e| format!("bad spec: {e}"))?;
            Ok(Request::Run {
                spec,
                trace: parse_trace(&value),
            })
        }
        "batch" => {
            let grid = value.get("grid").ok_or("'batch' request missing 'grid'")?;
            let grid = SweepGrid::from_json(grid).map_err(|e| format!("bad grid: {e}"))?;
            Ok(Request::Batch {
                grid,
                trace: parse_trace(&value),
            })
        }
        "metrics" => match value.get("format").map(Json::as_str) {
            None => Ok(Request::Metrics(MetricsFormat::Json)),
            Some(Some("json")) => Ok(Request::Metrics(MetricsFormat::Json)),
            Some(Some("prometheus")) => Ok(Request::Metrics(MetricsFormat::Prometheus)),
            Some(other) => Err(format!(
                "unknown metrics format {:?} (expected \"json\" or \"prometheus\")",
                other.unwrap_or("<non-string>")
            )),
        },
        "trace" => Ok(Request::Trace {
            id: value.get("id").and_then(Json::as_str).map(str::to_string),
            limit: value.get("limit").and_then(Json::as_u64),
        }),
        other => Err(format!("unknown op '{other}'")),
    }
}

/// Encodes a request for the wire (client side).
pub fn encode_request(request: &Request) -> String {
    let obj = match request {
        Request::Ping => vec![("op".into(), Json::str("ping"))],
        Request::Stats => vec![("op".into(), Json::str("stats"))],
        Request::Shutdown => vec![("op".into(), Json::str("shutdown"))],
        Request::Run { spec, trace } => {
            let mut obj = vec![
                ("op".into(), Json::str("run")),
                ("spec".into(), spec.to_json()),
            ];
            if let Some(ctx) = trace.as_ref().and_then(trace_to_json) {
                obj.push(("trace".into(), ctx));
            }
            obj
        }
        Request::Batch { grid, trace } => {
            let mut obj = vec![
                ("op".into(), Json::str("batch")),
                ("grid".into(), grid.to_json()),
            ];
            if let Some(ctx) = trace.as_ref().and_then(trace_to_json) {
                obj.push(("trace".into(), ctx));
            }
            obj
        }
        Request::Metrics(format) => vec![
            ("op".into(), Json::str("metrics")),
            (
                "format".into(),
                Json::str(match format {
                    MetricsFormat::Json => "json",
                    MetricsFormat::Prometheus => "prometheus",
                }),
            ),
        ],
        Request::Trace { id, limit } => {
            let mut obj = vec![("op".into(), Json::str("trace"))];
            if let Some(id) = id {
                obj.push(("id".into(), Json::str(id)));
            }
            if let Some(limit) = limit {
                obj.push(("limit".into(), Json::uint(*limit)));
            }
            obj
        }
    };
    Json::Obj(obj).to_string()
}

/// The `ping` response.
pub fn pong_line() -> String {
    Json::Obj(vec![("type".into(), Json::str("pong"))]).to_string()
}

/// The `shutdown` acknowledgement.
pub fn shutdown_line() -> String {
    Json::Obj(vec![("type".into(), Json::str("shutdown"))]).to_string()
}

/// A typed error response.
pub fn error_line(kind: ErrorKind, message: &str, retry_after_ms: Option<u64>) -> String {
    let mut obj = vec![
        ("type".into(), Json::str("error")),
        ("kind".into(), Json::str(kind.as_str())),
        ("message".into(), Json::str(message)),
    ];
    if let Some(ms) = retry_after_ms {
        obj.push(("retry_after_ms".into(), Json::uint(ms)));
    }
    Json::Obj(obj).to_string()
}

/// The `batch` response header; exactly `total` result lines follow.
pub fn batch_header_line(total: u64, hits: u64, misses: u64, failures: u64) -> String {
    Json::Obj(vec![
        ("type".into(), Json::str("batch")),
        ("total".into(), Json::uint(total)),
        ("hits".into(), Json::uint(hits)),
        ("misses".into(), Json::uint(misses)),
        ("failures".into(), Json::uint(failures)),
    ])
    .to_string()
}

/// The `stats` response: the store's [`StoreStats::to_json`] schema plus
/// service counters, one serializer end to end.
///
/// [`StoreStats::to_json`]: supermarq_store::StoreStats::to_json
pub fn stats_line(store: Json, serve: Json) -> String {
    Json::Obj(vec![
        ("type".into(), Json::str("stats")),
        ("store".into(), store),
        ("serve".into(), serve),
    ])
    .to_string()
}

/// The extra line a traced `run` gets after its result: server-side
/// time attribution. `source` is `"warm"` (answered from the store
/// before queueing), `"executed"` (simulated by a worker), or
/// `"coalesced"` (joined an in-flight twin).
pub fn timing_line(source: &str, total_ns: u64, queue_ns: u64, execute_ns: u64) -> String {
    Json::Obj(vec![
        ("type".into(), Json::str("timing")),
        ("source".into(), Json::str(source)),
        ("total_ns".into(), Json::uint(total_ns)),
        ("queue_ns".into(), Json::uint(queue_ns)),
        ("execute_ns".into(), Json::uint(execute_ns)),
    ])
    .to_string()
}

/// The JSON-format `metrics` response: lifetime counters (the same
/// `serve` object the `stats` op carries) plus rolling-window digests.
pub fn metrics_json_line(serve: Json, window: Json) -> String {
    Json::Obj(vec![
        ("type".into(), Json::str("metrics")),
        ("format".into(), Json::str("json")),
        ("serve".into(), serve),
        ("window".into(), window),
    ])
    .to_string()
}

/// The Prometheus-format `metrics` response. The exposition text is
/// shipped as one escaped JSON string field so the protocol stays
/// line-oriented; clients unwrap `body` before handing it to a scraper.
pub fn metrics_prometheus_line(body: &str) -> String {
    Json::Obj(vec![
        ("type".into(), Json::str("metrics")),
        ("format".into(), Json::str("prometheus")),
        ("body".into(), Json::str(body)),
    ])
    .to_string()
}

/// The `trace` response: recent completed spans, newest last.
pub fn trace_line(spans: Vec<Json>) -> String {
    Json::Obj(vec![
        ("type".into(), Json::str("trace")),
        ("count".into(), Json::uint(spans.len() as u64)),
        ("spans".into(), Json::Arr(spans)),
    ])
    .to_string()
}

/// Classifies a response line: `Err((kind, message))` when it is a
/// protocol error, `Ok(parsed)` otherwise.
pub fn classify_response(line: &str) -> Result<Json, (String, String)> {
    match Json::parse(line) {
        Ok(value) => {
            if value.get("type").and_then(Json::as_str) == Some("error") {
                let kind = value
                    .get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("internal")
                    .to_string();
                let message = value
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                Err((kind, message))
            } else {
                Ok(value)
            }
        }
        Err(e) => Err(("parse".into(), format!("unparseable response: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> RunSpec {
        RunSpec::new("ghz", vec![("size".into(), "3".into())], "IonQ", 100, 2, 7)
    }

    fn ctx() -> TraceContext {
        TraceContext::new(
            TraceId::from_u128(0xdead_beef_0000_0000_0000_0000_0000_0042),
            99,
        )
    }

    #[test]
    fn requests_round_trip_through_the_wire() {
        let grid = SweepGrid {
            benchmarks: vec![("ghz".into(), vec![("size".into(), "3".into())])],
            devices: vec!["IonQ".into()],
            shots: vec![10],
            seeds: vec![1],
            repetitions: 1,
            transpile: Default::default(),
            division: "closed".into(),
        };
        for request in [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Run {
                spec: spec(),
                trace: None,
            },
            Request::Run {
                spec: spec(),
                trace: Some(ctx()),
            },
            Request::Batch {
                grid: grid.clone(),
                trace: Some(ctx()),
            },
            Request::Metrics(MetricsFormat::Json),
            Request::Metrics(MetricsFormat::Prometheus),
            Request::Trace {
                id: Some(ctx().trace.unwrap().to_hex()),
                limit: Some(32),
            },
            Request::Trace {
                id: None,
                limit: None,
            },
        ] {
            let line = encode_request(&request);
            let back = parse_request(&line).unwrap();
            match (&request, &back) {
                (Request::Run { spec: a, trace: ta }, Request::Run { spec: b, trace: tb }) => {
                    assert_eq!(a, b);
                    assert_eq!(ta, tb);
                }
                (Request::Batch { grid: a, trace: ta }, Request::Batch { grid: b, trace: tb }) => {
                    assert_eq!(a.expand(), b.expand());
                    assert_eq!(ta, tb);
                }
                (Request::Metrics(a), Request::Metrics(b)) => assert_eq!(a, b),
                (Request::Trace { id: a, limit: la }, Request::Trace { id: b, limit: lb }) => {
                    assert_eq!(a, b);
                    assert_eq!(la, lb);
                }
                _ => assert_eq!(
                    std::mem::discriminant(&request),
                    std::mem::discriminant(&back)
                ),
            }
        }
    }

    #[test]
    fn malformed_requests_produce_messages_never_panics() {
        for junk in [
            "",
            "not json",
            "{}",
            "[1,2]",
            r#"{"op":42}"#,
            r#"{"op":"transmogrify"}"#,
            r#"{"op":"run"}"#,
            r#"{"op":"run","spec":17}"#,
            r#"{"op":"batch","grid":[]}"#,
            r#"{"op":"batch","grid":{"benchmarks":"all"}}"#,
            r#"{"op":"metrics","format":"xml"}"#,
            r#"{"op":"metrics","format":7}"#,
        ] {
            assert!(parse_request(junk).is_err(), "{junk:?} must be rejected");
        }
    }

    #[test]
    fn malformed_trace_contexts_degrade_to_none_never_error() {
        let spec_json = spec().to_json().to_string();
        for trace in [
            r#"null"#,
            r#"17"#,
            r#""deadbeef""#,
            r#"{}"#,
            r#"{"id":17}"#,
            r#"{"id":"zz"}"#,
            r#"{"id":""}"#,
            r#"{"id":"00000000000000000000000000000000"}"#,
            // One hex digit too many (oversized).
            r#"{"id":"0123456789abcdef0123456789abcdef0","parent":4}"#,
        ] {
            let line = format!(r#"{{"op":"run","spec":{spec_json},"trace":{trace}}}"#);
            match parse_request(&line) {
                Ok(Request::Run { trace, .. }) => {
                    assert_eq!(trace, None, "junk context must degrade to None: {line}")
                }
                other => panic!("junk trace must not fail the request: {other:?}"),
            }
        }
        // A valid id with a missing parent still joins the trace.
        let line = format!(
            r#"{{"op":"run","spec":{spec_json},"trace":{{"id":"0123456789abcdef0123456789abcdef"}}}}"#
        );
        match parse_request(&line) {
            Ok(Request::Run {
                trace: Some(ctx), ..
            }) => {
                assert_eq!(ctx.parent, 0);
                assert!(ctx.trace.is_some());
            }
            other => panic!("valid id without parent must parse: {other:?}"),
        }
    }

    #[test]
    fn error_lines_carry_kind_and_optional_retry() {
        let plain = error_line(ErrorKind::Parse, "bad", None);
        assert_eq!(plain, r#"{"type":"error","kind":"parse","message":"bad"}"#);
        let busy = error_line(ErrorKind::Busy, "queue full", Some(250));
        assert!(busy.contains("\"retry_after_ms\":250"));
        let (kind, message) = classify_response(&busy).unwrap_err();
        assert_eq!(kind, "busy");
        assert_eq!(message, "queue full");
        assert!(classify_response(&pong_line()).is_ok());
    }

    #[test]
    fn telemetry_response_lines_are_classifiable() {
        let timing = timing_line("warm", 1000, 0, 0);
        let parsed = classify_response(&timing).unwrap();
        assert_eq!(parsed.get("type").and_then(Json::as_str), Some("timing"));
        assert_eq!(parsed.get("total_ns").and_then(Json::as_u64), Some(1000));
        let prom = metrics_prometheus_line("a_total 1\n");
        let parsed = classify_response(&prom).unwrap();
        assert_eq!(
            parsed.get("body").and_then(Json::as_str),
            Some("a_total 1\n")
        );
        let trace = trace_line(vec![Json::Obj(vec![("span".into(), Json::uint(7))])]);
        let parsed = classify_response(&trace).unwrap();
        assert_eq!(parsed.get("count").and_then(Json::as_u64), Some(1));
    }
}
