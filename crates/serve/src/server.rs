//! The daemon core: accept loop, per-connection handlers, and the
//! worker pool draining the job queue.
//!
//! Layout:
//!
//! - one **accept thread** (non-blocking + poll, so shutdown is prompt);
//! - one detached **handler thread per connection**, counted so shutdown
//!   can wait for responses in flight;
//! - `workers` **worker threads** popping the [`JobQueue`] and running
//!   jobs through [`SweepEngine::run_job`] — the exact path `supermarq
//!   batch` uses, which is what makes daemon responses byte-identical
//!   to offline sweeps.
//!
//! Graceful shutdown (a `shutdown` request, [`RunningServer::shutdown`],
//! or drop): stop admission, drain every accepted job, join workers,
//! then wait for handlers to finish writing. Because all persistence
//! goes through the store's atomic tmp+rename, even a SIGKILL strands at
//! worst a `tmp/` file that `Store::gc` collects once it is stale.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use supermarq_obs::metrics::Histogram;
use supermarq_obs::{counter, gauge, histogram, Span, TraceContext, WindowedHistogram};
use supermarq_store::{Json, RunOutcome, RunRecord, RunSpec, Store, SweepEngine, SweepResult};

use crate::protocol::{self, ErrorKind, MetricsFormat, Request, MAX_FRAME};
use crate::queue::{Job, JobQueue, Submit};
use crate::telemetry::{self, SpanRecord, SpanRing};

/// How the server executes a cache miss. The daemon is as
/// executor-agnostic as the sweep engine: the CLI passes
/// `supermarq::execute_spec`, tests pass synthetic closures.
pub type Executor = Arc<dyn Fn(&RunSpec) -> Result<RunOutcome, String> + Send + Sync>;

/// Poll interval for the accept loop and connection reads; bounds how
/// long shutdown can lag behind the stop signal.
const POLL: Duration = Duration::from_millis(100);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7787` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads; `0` means `rayon::current_num_threads()`.
    pub workers: usize,
    /// Maximum queued (accepted, not yet running) jobs before `busy`.
    pub queue_capacity: usize,
    /// Serve warm requests from the store (`false` forces re-execution;
    /// results are still persisted).
    pub use_cache: bool,
    /// Close a connection after this long with no complete request.
    pub idle_timeout: Duration,
    /// `retry_after_ms` hint attached to `busy` rejections.
    pub retry_after_ms: u64,
    /// Completed span records retained for the `trace` op (ring buffer,
    /// oldest overwritten first).
    pub trace_buffer: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_capacity: 256,
            use_cache: true,
            idle_timeout: Duration::from_secs(30),
            retry_after_ms: 200,
            trace_buffer: 512,
        }
    }
}

/// Service counters, readable while the daemon runs. Mirrored into the
/// global obs registry as `serve.*` so `--profile` sees them; kept here
/// as plain per-server atomics so tests get deterministic values.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Request lines received (including malformed ones).
    pub requests: AtomicU64,
    /// Run/batch cells answered straight from the store.
    pub hits: AtomicU64,
    /// Run/batch cells that needed a job.
    pub misses: AtomicU64,
    /// Misses that joined an in-flight twin instead of a new job.
    pub coalesced: AtomicU64,
    /// Jobs actually executed by a worker (not resolved warm).
    pub simulations: AtomicU64,
    /// Requests rejected with `busy`.
    pub rejected: AtomicU64,
    /// Protocol errors returned (parse, oversized, internal).
    pub errors: AtomicU64,
    /// End-to-end latency per request line, nanoseconds.
    pub request_ns: Histogram,
    /// Latency of warm single-run hits, nanoseconds.
    pub warm_hit_ns: Histogram,
    /// Rolling 60 s window over request latency (live telemetry; the
    /// lifetime histograms above never forget).
    pub request_window: WindowedHistogram,
    /// Rolling 60 s window over warm-hit latency.
    pub warm_window: WindowedHistogram,
}

impl ServeMetrics {
    /// Strict-JSON snapshot, embedded in `stats` responses and the
    /// JSON-format `metrics` response — one serializer for both ops, so
    /// the schemas cannot drift.
    pub fn to_json(&self, queue_depth: usize, inflight: usize) -> Json {
        fn hist(h: &Histogram) -> Json {
            Json::Obj(vec![
                ("count".into(), Json::uint(h.count())),
                ("p50_ns".into(), Json::uint(h.quantile(0.5))),
                ("p99_ns".into(), Json::uint(h.quantile(0.99))),
                ("mean_ns".into(), Json::float(h.mean())),
            ])
        }
        let n = |a: &AtomicU64| Json::uint(a.load(Ordering::Relaxed));
        Json::Obj(vec![
            ("requests".into(), n(&self.requests)),
            ("hits".into(), n(&self.hits)),
            ("misses".into(), n(&self.misses)),
            ("coalesced".into(), n(&self.coalesced)),
            ("simulations".into(), n(&self.simulations)),
            ("rejected".into(), n(&self.rejected)),
            ("errors".into(), n(&self.errors)),
            ("queue_depth".into(), Json::uint(queue_depth as u64)),
            ("inflight".into(), Json::uint(inflight as u64)),
            ("request_ns".into(), hist(&self.request_ns)),
            ("warm_hit_ns".into(), hist(&self.warm_hit_ns)),
        ])
    }

    /// Rolling-window digests for the JSON-format `metrics` response.
    pub fn window_json(&self) -> Json {
        fn digest(w: &WindowedHistogram) -> Json {
            let d = w.snapshot();
            Json::Obj(vec![
                ("count".into(), Json::uint(d.count)),
                ("p50_ns".into(), Json::uint(d.p50)),
                ("p99_ns".into(), Json::uint(d.p99)),
                ("window_ms".into(), Json::uint(d.window_ms)),
            ])
        }
        Json::Obj(vec![
            ("request".into(), digest(&self.request_window)),
            ("warm_hit".into(), digest(&self.warm_window)),
        ])
    }
}

/// State shared by the accept loop, handlers, and workers.
struct Shared {
    config: ServeConfig,
    store: Store,
    exec: Executor,
    queue: JobQueue,
    metrics: ServeMetrics,
    /// Completed span records for the `trace` op.
    ring: SpanRing,
    /// Daemon start time; ring records stamp `start_ms` against it.
    started: Instant,
    stop: AtomicBool,
    /// Live connection-handler count, awaited at shutdown.
    active: Mutex<usize>,
    idle: Condvar,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.queue.close();
    }
}

/// Constructor namespace for the daemon.
pub struct Server;

impl Server {
    /// Binds `config.addr` and starts the accept loop and worker pool.
    /// Returns immediately; the daemon runs on background threads until
    /// [`RunningServer::shutdown`] (or a client `shutdown` request).
    pub fn bind(config: ServeConfig, store: Store, exec: Executor) -> io::Result<RunningServer> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = if config.workers == 0 {
            rayon::current_num_threads().max(1)
        } else {
            config.workers
        };
        let queue_capacity = config.queue_capacity;
        let trace_buffer = config.trace_buffer;
        let shared = Arc::new(Shared {
            config,
            store,
            exec,
            queue: JobQueue::new(queue_capacity),
            metrics: ServeMetrics::default(),
            ring: SpanRing::new(trace_buffer),
            started: Instant::now(),
            stop: AtomicBool::new(false),
            active: Mutex::new(0),
            idle: Condvar::new(),
        });
        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&shared, listener))?
        };
        Ok(RunningServer {
            addr,
            shared,
            accept: Some(accept),
            workers: worker_handles,
        })
    }
}

/// Handle to a live daemon. Dropping it performs a graceful shutdown.
pub struct RunningServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl RunningServer {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live service counters.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// Whether a stop was requested (client `shutdown` or signal path).
    pub fn stop_requested(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Requests a stop without blocking (idempotent).
    pub fn request_stop(&self) {
        self.shared.begin_shutdown();
    }

    /// Graceful shutdown: drain accepted jobs, join workers and the
    /// accept thread, wait for handlers to finish writing.
    pub fn shutdown(mut self) {
        self.finish();
    }

    /// One-line counter summary for CLI output.
    pub fn summary(&self) -> String {
        let m = &self.shared.metrics;
        let n = |a: &AtomicU64| a.load(Ordering::Relaxed);
        format!(
            "serve: requests={} hits={} misses={} coalesced={} simulations={} rejected={} errors={}",
            n(&m.requests),
            n(&m.hits),
            n(&m.misses),
            n(&m.coalesced),
            n(&m.simulations),
            n(&m.rejected),
            n(&m.errors),
        )
    }

    fn finish(&mut self) {
        self.shared.begin_shutdown();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Handlers may still be streaming responses for drained jobs;
        // give them a bounded window to finish.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut active = self.shared.active.lock().unwrap();
        while *active > 0 && Instant::now() < deadline {
            let (guard, _) = self
                .shared
                .idle
                .wait_timeout(active, Duration::from_millis(50))
                .unwrap();
            active = guard;
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.finish();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                *shared.active.lock().unwrap() += 1;
                let conn = Arc::clone(shared);
                let spawned = thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || {
                        handle_connection(&conn, stream);
                        *conn.active.lock().unwrap() -= 1;
                        conn.idle.notify_all();
                    });
                if spawned.is_err() {
                    // Thread spawn failed; undo the count and move on.
                    *shared.active.lock().unwrap() -= 1;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        job.mark_dequeued();
        gauge!("serve.queue_depth").set(shared.queue.depth() as i64);
        let engine = SweepEngine::new(&shared.store).with_cache(shared.config.use_cache);
        let exec = &shared.exec;
        // Continue the submitting request's trace (in-process link:
        // the request span is the parent, the trace id flows to every
        // store/executor span `run_job` opens via the thread-current
        // chain).
        let link = job.link;
        let mut span = Span::open_with_link(
            "serve.execute",
            link.map(|ctx| ctx.parent).filter(|&p| p != 0),
            link.and_then(|ctx| ctx.trace),
        );
        let span_id = span.id();
        let start_ms = elapsed_ms(shared.started);
        let exec_start = Instant::now();
        // `run_job` re-consults the store at execution time, so a job
        // queued behind a twin published meanwhile (by another process
        // on a shared store) resolves warm. A panicking executor must
        // not strand coalesced waiters: convert it to an error result.
        let result = catch_unwind(AssertUnwindSafe(|| {
            engine.run_job(&job.spec, |spec| (exec)(spec))
        }))
        .unwrap_or_else(|_| SweepResult {
            spec: job.spec.clone(),
            from_cache: false,
            store_error: false,
            outcome: Err("internal: executor panicked".into()),
        });
        let execute_ns = u64::try_from(exec_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        job.set_execute_ns(execute_ns);
        span.record("ok", result.outcome.is_ok());
        span.record("from_cache", result.from_cache);
        drop(span);
        if !result.from_cache {
            shared.metrics.simulations.fetch_add(1, Ordering::Relaxed);
            counter!("serve.simulations").incr();
        }
        shared.ring.push(SpanRecord {
            name: "serve.execute",
            op: "job",
            trace: link.and_then(|ctx| ctx.trace).map(|t| t.to_hex()),
            span: span_id.unwrap_or(0),
            parent: link.map_or(0, |ctx| ctx.parent),
            start_ms,
            elapsed_ns: execute_ns,
            ok: result.outcome.is_ok(),
            source: if result.from_cache {
                "warm"
            } else {
                "executed"
            },
        });
        shared.queue.complete(&job, result);
    }
}

/// Milliseconds since `since`, saturating.
fn elapsed_ms(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// One complete request frame, or the reason there is none.
enum Frame {
    Line(String),
    Eof,
    TooLong,
    Stopped,
}

/// Reads one `\n`-terminated frame, enforcing [`MAX_FRAME`], the idle
/// timeout, and the stop flag (the stream has a `POLL` read timeout, so
/// this loop wakes regularly). A partial line at EOF is still returned
/// for processing — a truncated frame earns a typed parse error, not a
/// silent drop.
fn read_frame(reader: &mut BufReader<TcpStream>, stop: &AtomicBool, idle: Duration) -> Frame {
    let mut buf: Vec<u8> = Vec::new();
    let deadline = Instant::now() + idle;
    loop {
        if stop.load(Ordering::SeqCst) {
            return Frame::Stopped;
        }
        let limit = (MAX_FRAME + 1 - buf.len()) as u64;
        match (&mut *reader).take(limit).read_until(b'\n', &mut buf) {
            Ok(0) => {
                if buf.is_empty() {
                    return Frame::Eof;
                }
                // EOF after a partial line buffered on an earlier
                // iteration: surface it so it earns a parse error.
                return Frame::Line(String::from_utf8_lossy(&buf).into_owned());
            }
            Ok(_) => {
                if buf.last() == Some(&b'\n') {
                    buf.pop();
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return Frame::Line(String::from_utf8_lossy(&buf).into_owned());
                }
                if buf.len() > MAX_FRAME {
                    return Frame::TooLong;
                }
                // No delimiter, under the cap, yet `read_until`
                // returned: the peer closed mid-line.
                return Frame::Line(String::from_utf8_lossy(&buf).into_owned());
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if Instant::now() >= deadline {
                    return Frame::Eof;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Frame::Eof,
        }
    }
}

fn write_line(out: &mut impl Write, line: &str) -> bool {
    out.write_all(line.as_bytes())
        .and_then(|_| out.write_all(b"\n"))
        .and_then(|_| out.flush())
        .is_ok()
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader, &shared.stop, shared.config.idle_timeout) {
            Frame::Line(line) => {
                if line.trim().is_empty() {
                    continue; // blank keep-alives from interactive netcat
                }
                if !handle_request(shared, &line, &mut writer) {
                    return;
                }
            }
            Frame::TooLong => {
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                counter!("serve.errors").incr();
                let message = format!("request frame exceeds {MAX_FRAME} bytes");
                write_line(
                    &mut writer,
                    &protocol::error_line(ErrorKind::Oversized, &message, None),
                );
                // The rest of the oversized line is unread; there is no
                // way to resynchronize, so close.
                return;
            }
            Frame::Eof | Frame::Stopped => return,
        }
    }
}

/// Per-request facts the dispatch handlers report back so the epilogue
/// (latency histograms, ring record) can attribute the outcome.
struct Outcome {
    ok: bool,
    /// `warm` / `executed` / `coalesced` for run-shaped work, `""`
    /// otherwise.
    source: &'static str,
}

/// Serves one request line. Returns `false` when the connection should
/// close (write failure, shutdown, unrecoverable framing).
fn handle_request(shared: &Arc<Shared>, line: &str, out: &mut impl Write) -> bool {
    shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
    counter!("serve.requests").incr();
    let start = Instant::now();
    let start_ms = elapsed_ms(shared.started);
    let request = match protocol::parse_request(line) {
        Ok(request) => request,
        Err(message) => {
            // Parse failures still get a (trace-less) span and latency
            // sample: a flood of junk shows up in telemetry too.
            let mut span = Span::open("serve.request");
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            counter!("serve.errors").incr();
            span.record("ok", false);
            let keep_open =
                write_line(out, &protocol::error_line(ErrorKind::Parse, &message, None));
            let span_id = span.id();
            drop(span);
            finish_request(
                shared, start, start_ms, "parse", span_id, 0, None, false, "",
            );
            return keep_open;
        }
    };
    // The request span continues the client's trace when the frame
    // carried a context: the client's span id becomes `remote_parent`,
    // and the trace id flows to every child span on this thread.
    let (op, ctx) = match &request {
        Request::Ping => ("ping", None),
        Request::Stats => ("stats", None),
        Request::Shutdown => ("shutdown", None),
        Request::Metrics(_) => ("metrics", None),
        Request::Trace { .. } => ("trace", None),
        Request::Run { trace, .. } => ("run", *trace),
        Request::Batch { trace, .. } => ("batch", *trace),
    };
    let mut span = Span::open_in_context("serve.request", ctx.as_ref());
    span.record("op", op);
    let mut outcome = Outcome {
        ok: true,
        source: "",
    };
    let keep_open = match request {
        Request::Ping => write_line(out, &protocol::pong_line()),
        Request::Stats => write_line(out, &stats_response(shared)),
        Request::Metrics(format) => write_line(out, &metrics_response(shared, format)),
        Request::Trace { id, limit } => {
            write_line(out, &trace_response(shared, id.as_deref(), limit))
        }
        Request::Shutdown => {
            write_line(out, &protocol::shutdown_line());
            shared.begin_shutdown();
            false
        }
        Request::Run { spec, trace } => handle_run(
            shared,
            &spec,
            trace.as_ref(),
            out,
            start,
            &span,
            &mut outcome,
        ),
        Request::Batch { grid, .. } => handle_batch(shared, &grid, out, &span, &mut outcome),
    };
    span.record("ok", outcome.ok);
    let span_id = span.id();
    let trace = span.trace_id().or(ctx.and_then(|c| c.trace));
    // The ring's serve.request record points back at the *client's*
    // span when one was given, so merged tooling sees the stitch even
    // without trace files.
    let remote_parent = ctx.map_or(0, |c| c.parent);
    drop(span);
    finish_request(
        shared,
        start,
        start_ms,
        op,
        span_id,
        remote_parent,
        trace.map(|t| t.to_hex()),
        outcome.ok,
        outcome.source,
    );
    keep_open
}

/// Request epilogue: latency histograms (lifetime + rolling window) and
/// the ring record every protocol op leaves behind.
#[allow(clippy::too_many_arguments)]
fn finish_request(
    shared: &Shared,
    start: Instant,
    start_ms: u64,
    op: &'static str,
    span_id: Option<u64>,
    parent: u64,
    trace: Option<String>,
    ok: bool,
    source: &'static str,
) {
    let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    shared.metrics.request_ns.record(elapsed_ns);
    shared.metrics.request_window.record(elapsed_ns);
    histogram!("serve.request_ns").record(elapsed_ns);
    shared.ring.push(SpanRecord {
        name: "serve.request",
        op,
        trace,
        span: span_id.unwrap_or(0),
        parent,
        start_ms,
        elapsed_ns,
        ok,
        source,
    });
}

fn stats_response(shared: &Shared) -> String {
    let store = match shared.store.stats() {
        Ok(stats) => stats.to_json(),
        Err(e) => Json::Obj(vec![("error".into(), Json::str(e.to_string()))]),
    };
    protocol::stats_line(
        store,
        shared
            .metrics
            .to_json(shared.queue.depth(), shared.queue.inflight()),
    )
}

fn metrics_response(shared: &Shared, format: MetricsFormat) -> String {
    let depth = shared.queue.depth();
    let inflight = shared.queue.inflight();
    match format {
        MetricsFormat::Json => protocol::metrics_json_line(
            shared.metrics.to_json(depth, inflight),
            shared.metrics.window_json(),
        ),
        MetricsFormat::Prometheus => protocol::metrics_prometheus_line(
            &telemetry::prometheus_text(&shared.metrics, depth as u64, inflight as u64),
        ),
    }
}

fn trace_response(shared: &Shared, id: Option<&str>, limit: Option<u64>) -> String {
    let limit = limit.unwrap_or(64).min(shared.ring.capacity() as u64) as usize;
    let spans = shared.ring.recent(limit, id);
    protocol::trace_line(spans.iter().map(SpanRecord::to_json).collect())
}

/// Waits for a queued job inside a `serve.wait` child span, so traces
/// show queue wait distinctly from execution.
fn wait_traced(job: &Job, coalesced: bool) -> SweepResult {
    let mut span = Span::open("serve.wait");
    span.record("coalesced", coalesced);
    job.wait()
}

#[allow(clippy::too_many_arguments)]
fn handle_run(
    shared: &Shared,
    spec: &RunSpec,
    wire_ctx: Option<&TraceContext>,
    out: &mut impl Write,
    start: Instant,
    span: &Span,
    outcome: &mut Outcome,
) -> bool {
    // The timing echo is strictly opt-in: only requests that carried a
    // trace context get the extra line, so untraced responses stay
    // byte-identical to the pre-telemetry wire format.
    let echo = wire_ctx.is_some();
    if shared.config.use_cache {
        if let Some(record) = shared.store.get(spec) {
            shared.metrics.hits.fetch_add(1, Ordering::Relaxed);
            counter!("serve.hits").incr();
            let warm_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            shared.metrics.warm_hit_ns.record(warm_ns);
            shared.metrics.warm_window.record(warm_ns);
            histogram!("serve.warm_hit_ns").record(warm_ns);
            outcome.source = "warm";
            let mut keep_open = write_line(out, &record.to_line());
            if keep_open && echo {
                keep_open = write_line(out, &protocol::timing_line("warm", warm_ns, 0, 0));
            }
            return keep_open;
        }
    }
    // The job link is *this server's* request span (which itself points
    // at the client's root): the worker parents its execute span here.
    let submitted = match shared.queue.submit(spec, span.ctx()) {
        Submit::New(job) => {
            shared.metrics.misses.fetch_add(1, Ordering::Relaxed);
            counter!("serve.misses").incr();
            gauge!("serve.queue_depth").set(shared.queue.depth() as i64);
            outcome.source = "executed";
            Some((job, false))
        }
        Submit::Joined(job) => {
            shared.metrics.misses.fetch_add(1, Ordering::Relaxed);
            shared.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
            counter!("serve.misses").incr();
            counter!("serve.coalesced").incr();
            outcome.source = "coalesced";
            Some((job, true))
        }
        Submit::Full => {
            shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            counter!("serve.rejected").incr();
            outcome.ok = false;
            return write_line(
                out,
                &protocol::error_line(
                    ErrorKind::Busy,
                    "job queue full",
                    Some(shared.config.retry_after_ms),
                ),
            );
        }
        Submit::Closed => {
            outcome.ok = false;
            write_line(
                out,
                &protocol::error_line(ErrorKind::ShuttingDown, "daemon is draining", None),
            );
            return false;
        }
    };
    let (job, coalesced) = submitted.expect("submit variants handled above");
    let result = wait_traced(&job, coalesced);
    outcome.ok = result.outcome.is_ok();
    let mut keep_open = write_line(out, &result.to_line());
    if keep_open && echo {
        let total_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        keep_open = write_line(
            out,
            &protocol::timing_line(outcome.source, total_ns, job.queue_ns(), job.execute_ns()),
        );
    }
    keep_open
}

fn handle_batch(
    shared: &Shared,
    grid: &supermarq_store::SweepGrid,
    out: &mut impl Write,
    span: &Span,
    outcome: &mut Outcome,
) -> bool {
    let specs = grid.expand();
    // Partition warm cells exactly like `SweepEngine::run` does, so the
    // response body is byte-identical to `supermarq batch` output.
    let cached: Vec<Option<RunRecord>> = specs
        .iter()
        .map(|spec| {
            if shared.config.use_cache {
                shared.store.get(spec)
            } else {
                None
            }
        })
        .collect();
    let miss_specs: Vec<RunSpec> = specs
        .iter()
        .zip(&cached)
        .filter(|(_, c)| c.is_none())
        .map(|(s, _)| s.clone())
        .collect();
    let (jobs, coalesced) = match shared.queue.submit_all(&miss_specs, span.ctx()) {
        Ok(admitted) => admitted,
        Err(Submit::Full) => {
            shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            counter!("serve.rejected").incr();
            outcome.ok = false;
            let message = format!(
                "job queue cannot admit {} jobs; retry later",
                miss_specs.len()
            );
            return write_line(
                out,
                &protocol::error_line(
                    ErrorKind::Busy,
                    &message,
                    Some(shared.config.retry_after_ms),
                ),
            );
        }
        Err(_) => {
            outcome.ok = false;
            write_line(
                out,
                &protocol::error_line(ErrorKind::ShuttingDown, "daemon is draining", None),
            );
            return false;
        }
    };
    let hits = (specs.len() - miss_specs.len()) as u64;
    shared.metrics.hits.fetch_add(hits, Ordering::Relaxed);
    shared
        .metrics
        .misses
        .fetch_add(miss_specs.len() as u64, Ordering::Relaxed);
    shared
        .metrics
        .coalesced
        .fetch_add(coalesced, Ordering::Relaxed);
    counter!("serve.hits").add(hits);
    counter!("serve.misses").add(miss_specs.len() as u64);
    counter!("serve.coalesced").add(coalesced);
    gauge!("serve.queue_depth").set(shared.queue.depth() as i64);
    // Wait for every job, then assemble lines in grid order. Waiting
    // first lets the header carry the failure count.
    let fresh: Vec<SweepResult> = jobs.iter().map(|job| job.wait()).collect();
    let failures = fresh.iter().filter(|r| r.outcome.is_err()).count() as u64;
    let header =
        protocol::batch_header_line(specs.len() as u64, hits, miss_specs.len() as u64, failures);
    if !write_line(out, &header) {
        return false;
    }
    let mut next_fresh = fresh.into_iter();
    for record in cached {
        let line = match record {
            Some(record) => record.to_line(),
            None => match next_fresh.next() {
                Some(result) => result.to_line(),
                None => protocol::error_line(ErrorKind::Internal, "job result missing", None),
            },
        };
        if !write_line(out, &line) {
            return false;
        }
    }
    true
}
