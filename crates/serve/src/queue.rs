//! Bounded job queue with request coalescing.
//!
//! The queue is the daemon's admission controller:
//!
//! - **Bounded**: at most `capacity` jobs may be *queued* (accepted but
//!   not yet picked up by a worker). Beyond that, submission fails with
//!   [`Submit::Full`] and the server answers `busy` + `retry_after_ms` —
//!   backpressure instead of unbounded memory.
//! - **Coalescing**: jobs are keyed by the spec's content hash. A second
//!   submission of an in-flight hash joins the existing job
//!   ([`Submit::Joined`]) and shares its one result — two clients asking
//!   for the same spec cost one simulation.
//! - **Draining**: [`JobQueue::close`] stops admission, but workers keep
//!   popping until the queue is empty, so every accepted job completes
//!   and every waiter is woken. Nothing accepted is ever abandoned.
//!
//! The in-flight map holds a job from submission until
//! [`JobQueue::complete`] — including while it executes — so latecomers
//! coalesce with *running* work, not just queued work.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use supermarq_obs::TraceContext;
use supermarq_store::{RunSpec, SweepResult};

/// One unit of work: a spec, a slot its result lands in, and the
/// telemetry a traced request wants back (queue wait, execute time,
/// the submitter's trace link).
#[derive(Debug)]
pub struct Job {
    /// The spec to resolve.
    pub spec: RunSpec,
    /// Trace context of the *first* submitter (coalesced joiners share
    /// it): the worker parents its execute span here, so a trace shows
    /// the simulation under the request that actually caused it.
    pub link: Option<TraceContext>,
    /// When the job was admitted (queue wait starts here).
    submitted: Instant,
    /// Nanoseconds spent queued before a worker picked the job up.
    queue_ns: AtomicU64,
    /// Nanoseconds the worker spent resolving the job.
    execute_ns: AtomicU64,
    result: Mutex<Option<SweepResult>>,
    done: Condvar,
}

impl Job {
    fn new(spec: RunSpec, link: Option<TraceContext>) -> Arc<Job> {
        Arc::new(Job {
            spec,
            link,
            submitted: Instant::now(),
            queue_ns: AtomicU64::new(0),
            execute_ns: AtomicU64::new(0),
            result: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    /// Blocks until the job completes and returns its result. Safe to
    /// call from any number of coalesced waiters.
    pub fn wait(&self) -> SweepResult {
        let mut slot = self.result.lock().unwrap();
        while slot.is_none() {
            slot = self.done.wait(slot).unwrap();
        }
        slot.clone().unwrap()
    }

    /// Stamps the end of the queue-wait phase; called by the worker
    /// that pops the job, before executing it.
    pub fn mark_dequeued(&self) {
        self.queue_ns.store(
            self.submitted.elapsed().as_nanos() as u64,
            Ordering::Relaxed,
        );
    }

    /// Records how long the worker spent resolving the job.
    pub fn set_execute_ns(&self, ns: u64) {
        self.execute_ns.store(ns, Ordering::Relaxed);
    }

    /// Nanoseconds spent queued (0 until [`Job::mark_dequeued`]).
    pub fn queue_ns(&self) -> u64 {
        self.queue_ns.load(Ordering::Relaxed)
    }

    /// Nanoseconds spent executing (0 until the worker finishes).
    pub fn execute_ns(&self) -> u64 {
        self.execute_ns.load(Ordering::Relaxed)
    }

    fn complete(&self, result: SweepResult) {
        *self.result.lock().unwrap() = Some(result);
        self.done.notify_all();
    }
}

/// Outcome of a submission attempt.
#[derive(Debug)]
pub enum Submit {
    /// A new job was enqueued; wait on it.
    New(Arc<Job>),
    /// Coalesced with an in-flight job for the same hash; wait on it.
    Joined(Arc<Job>),
    /// Queue at capacity — retry later.
    Full,
    /// Queue closed — the daemon is draining.
    Closed,
}

#[derive(Default)]
struct QueueState {
    /// Accepted, not yet picked up by a worker.
    queued: VecDeque<Arc<Job>>,
    /// Hash → job, from submission until completion (spans execution).
    inflight: HashMap<String, Arc<Job>>,
    closed: bool,
}

/// The bounded, coalescing job queue shared by connection handlers
/// (producers) and workers (consumers).
pub struct JobQueue {
    state: Mutex<QueueState>,
    /// Signalled on enqueue and close; workers wait on it.
    available: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// A queue admitting at most `capacity` queued jobs (minimum 1).
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState::default()),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Submits one spec, coalescing with any in-flight twin. `link` is
    /// the submitter's trace context; it sticks to the job only when
    /// this submission creates it (joiners inherit the first
    /// submitter's link).
    pub fn submit(&self, spec: &RunSpec, link: Option<TraceContext>) -> Submit {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return Submit::Closed;
        }
        let hash = spec.content_hash();
        if let Some(job) = state.inflight.get(&hash) {
            return Submit::Joined(Arc::clone(job));
        }
        if state.queued.len() >= self.capacity {
            return Submit::Full;
        }
        let job = Job::new(spec.clone(), link);
        state.inflight.insert(hash, Arc::clone(&job));
        state.queued.push_back(Arc::clone(&job));
        self.available.notify_one();
        Submit::New(job)
    }

    /// Submits a whole batch atomically: either every spec is admitted
    /// (as a new job or by joining an in-flight twin — duplicates inside
    /// the batch coalesce too) or none is and the batch gets one `Full`
    /// / `Closed` answer. Returns one job per input spec, in order,
    /// plus how many coalesced. `link` follows the same rule as
    /// [`JobQueue::submit`]: it attaches to jobs this batch creates.
    pub fn submit_all(
        &self,
        specs: &[RunSpec],
        link: Option<TraceContext>,
    ) -> Result<(Vec<Arc<Job>>, u64), Submit> {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return Err(Submit::Closed);
        }
        // First pass: count the genuinely new hashes so admission is
        // all-or-nothing under one lock.
        let hashes: Vec<String> = specs.iter().map(RunSpec::content_hash).collect();
        let mut fresh: Vec<&String> = Vec::new();
        for hash in &hashes {
            if !state.inflight.contains_key(hash) && !fresh.contains(&hash) {
                fresh.push(hash);
            }
        }
        if state.queued.len() + fresh.len() > self.capacity {
            return Err(Submit::Full);
        }
        let mut jobs = Vec::with_capacity(specs.len());
        let mut coalesced = 0u64;
        for (spec, hash) in specs.iter().zip(&hashes) {
            if let Some(job) = state.inflight.get(hash) {
                coalesced += 1;
                jobs.push(Arc::clone(job));
                continue;
            }
            let job = Job::new(spec.clone(), link);
            state.inflight.insert(hash.clone(), Arc::clone(&job));
            state.queued.push_back(Arc::clone(&job));
            jobs.push(job);
        }
        self.available.notify_all();
        Ok((jobs, coalesced))
    }

    /// Blocks until a job is available and pops it. Returns `None` only
    /// when the queue is closed **and** drained — the worker-loop exit
    /// condition that guarantees every accepted job completes.
    pub fn pop(&self) -> Option<Arc<Job>> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(job) = state.queued.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).unwrap();
        }
    }

    /// Publishes `result`, wakes every waiter, and retires the hash so
    /// future submissions start a fresh job.
    pub fn complete(&self, job: &Job, result: SweepResult) {
        let mut state = self.state.lock().unwrap();
        state.inflight.remove(&job.spec.content_hash());
        drop(state);
        job.complete(result);
    }

    /// Jobs accepted but not yet picked up by a worker.
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap().queued.len()
    }

    /// Jobs between submission and completion — queued *plus*
    /// executing. The in-flight gauge the `metrics` op exposes.
    pub fn inflight(&self) -> usize {
        self.state.lock().unwrap().inflight.len()
    }

    /// Stops admission. Workers drain what was already accepted.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supermarq_store::{RunOutcome, RunRecord};

    fn spec(seed: u64) -> RunSpec {
        RunSpec::new(
            "ghz",
            vec![("size".into(), "3".into())],
            "IonQ",
            10,
            1,
            seed,
        )
    }

    fn result_for(spec: &RunSpec) -> SweepResult {
        SweepResult {
            spec: spec.clone(),
            from_cache: false,
            store_error: false,
            outcome: Ok(RunRecord {
                spec: spec.clone(),
                outcome: RunOutcome {
                    scores: vec![0.5],
                    swap_count: 0,
                    two_qubit_gates: 1,
                },
            }),
        }
    }

    #[test]
    fn duplicate_submissions_coalesce_onto_one_job() {
        let queue = JobQueue::new(4);
        let first = match queue.submit(&spec(1), None) {
            Submit::New(job) => job,
            other => panic!("expected New, got {other:?}"),
        };
        // Same hash joins — even after a worker picked the job up.
        assert!(matches!(queue.submit(&spec(1), None), Submit::Joined(_)));
        let picked = queue.pop().unwrap();
        assert!(matches!(queue.submit(&spec(1), None), Submit::Joined(_)));
        assert_eq!(queue.depth(), 0);
        queue.complete(&picked, result_for(&picked.spec));
        assert_eq!(first.wait().spec, spec(1));
        // Completion retires the hash: the next submission is new work.
        assert!(matches!(queue.submit(&spec(1), None), Submit::New(_)));
    }

    #[test]
    fn capacity_rejects_with_full_but_joins_still_succeed() {
        let queue = JobQueue::new(2);
        assert!(matches!(queue.submit(&spec(1), None), Submit::New(_)));
        assert!(matches!(queue.submit(&spec(2), None), Submit::New(_)));
        assert!(matches!(queue.submit(&spec(3), None), Submit::Full));
        // Coalescing costs no slot, so it succeeds even at capacity.
        assert!(matches!(queue.submit(&spec(1), None), Submit::Joined(_)));
    }

    #[test]
    fn batch_admission_is_all_or_nothing_with_in_batch_coalescing() {
        let queue = JobQueue::new(2);
        // 3 specs, 2 unique → fits in capacity 2, one coalesced.
        let (jobs, coalesced) = queue
            .submit_all(&[spec(1), spec(2), spec(1)], None)
            .unwrap();
        assert_eq!(jobs.len(), 3);
        assert_eq!(coalesced, 1);
        assert!(Arc::ptr_eq(&jobs[0], &jobs[2]));
        assert_eq!(queue.depth(), 2);
        // A batch that does not fit is rejected whole: nothing enqueued.
        assert!(matches!(
            queue.submit_all(&[spec(3), spec(4), spec(5)], None),
            Err(Submit::Full)
        ));
        assert_eq!(queue.depth(), 2);
        // But a batch made entirely of joins is free.
        let (joined, n) = queue.submit_all(&[spec(1), spec(2)], None).unwrap();
        assert_eq!((joined.len(), n), (2, 2));
    }

    #[test]
    fn close_drains_accepted_work_then_stops_workers() {
        let queue = Arc::new(JobQueue::new(8));
        let jobs: Vec<_> = (0..4)
            .map(|i| match queue.submit(&spec(i), None) {
                Submit::New(job) => job,
                other => panic!("{other:?}"),
            })
            .collect();
        queue.close();
        assert!(matches!(queue.submit(&spec(99), None), Submit::Closed));
        // A worker still sees all four, then the stop signal.
        let mut served = 0;
        while let Some(job) = queue.pop() {
            queue.complete(&job, result_for(&job.spec));
            served += 1;
        }
        assert_eq!(served, 4);
        for job in jobs {
            assert!(job.wait().outcome.is_ok());
        }
    }

    #[test]
    fn waiters_block_until_completion_across_threads() {
        let queue = Arc::new(JobQueue::new(4));
        let job = match queue.submit(&spec(5), None) {
            Submit::New(job) => job,
            other => panic!("{other:?}"),
        };
        let waiter = {
            let job = Arc::clone(&job);
            std::thread::spawn(move || job.wait())
        };
        let picked = queue.pop().unwrap();
        queue.complete(&picked, result_for(&picked.spec));
        assert_eq!(waiter.join().unwrap().spec, spec(5));
    }
}
