//! # supermarq-serve — benchmark-as-a-service over the run store
//!
//! The store (PR 3) made every run content-addressable; this crate puts
//! a socket in front of it. `supermarq serve` is a long-running daemon
//! speaking a line-oriented strict-JSON protocol over plain
//! `std::net::TcpListener` — no async runtime, no HTTP stack, zero new
//! dependencies — in the spirit of QSimBench's "serve precomputed
//! traces" pitch: clients ask for runs, warm hits come straight off
//! disk, misses are simulated once and cached forever.
//!
//! The moving parts:
//!
//! - [`protocol`] — request/response grammar ([`Request`], typed error
//!   lines, [`MAX_FRAME`]). Result lines are exactly
//!   [`SweepResult::to_line`], so daemon output is byte-identical to
//!   `supermarq batch`.
//! - [`queue`] — the bounded, coalescing [`JobQueue`]: backpressure via
//!   `busy` + `retry_after_ms`, duplicate specs share one simulation,
//!   graceful drain on shutdown.
//! - [`server`] — [`Server::bind`] / [`RunningServer`]: accept loop,
//!   per-connection handlers, worker pool over
//!   [`SweepEngine::run_job`], per-request obs spans and `serve.*`
//!   counters surfaced by the `stats` request.
//! - [`telemetry`] — the in-daemon [`SpanRing`] of completed spans
//!   (queried by the `trace` op) and the Prometheus text exposition
//!   behind `metrics`.
//! - [`client`] — the blocking [`Client`] used by `supermarq client`,
//!   the hammer tests, and the warm-hit benchmark.
//! - [`signal`] — flag-based Ctrl-C interception shared with the batch
//!   CLI.
//!
//! Distributed tracing rides the same protocol: `run`/`batch` frames
//! may carry a `trace` context (128-bit trace id + client span id), and
//! the daemon stitches its `serve.request` → `serve.execute` spans under
//! the client's root so both processes' JSONL merges into one forest.
//! Untraced requests are byte-identical to the pre-tracing protocol.
//!
//! Crash-safety is inherited, not reinvented: all persistence goes
//! through the store's atomic tmp+rename publication, so `kill -9` at
//! any instant strands at most a stale `tmp/` file that `Store::gc`
//! collects, and a restarted daemon resumes from whatever completed.
//!
//! Like the sweep engine, the daemon is executor-agnostic: it takes an
//! [`Executor`] closure, so tests drive it with synthetic workloads and
//! the CLI wires in `supermarq::execute_spec`.
//!
//! [`SweepResult::to_line`]: supermarq_store::SweepResult::to_line
//! [`SweepEngine::run_job`]: supermarq_store::SweepEngine::run_job

pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod signal;
pub mod telemetry;

pub use client::{BatchResponse, Client, RunTiming};
pub use protocol::{ErrorKind, MetricsFormat, Request, MAX_FRAME};
pub use queue::{Job, JobQueue, Submit};
pub use server::{Executor, RunningServer, ServeConfig, ServeMetrics, Server};
pub use telemetry::{SpanRecord, SpanRing};
