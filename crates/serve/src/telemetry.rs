//! In-daemon telemetry: the span ring buffer and the Prometheus text
//! exposition.
//!
//! The JSONL trace sink is process-global and file-backed — right for
//! offline analysis, wrong for a live daemon that wants to answer
//! "what just happened" over the wire. [`SpanRing`] is the in-memory
//! complement: a bounded ring of completed [`SpanRecord`]s, overwriting
//! oldest-first, queryable through the `trace` protocol op.
//!
//! Lock-light, not lock-free: one atomic head allocates slots
//! (`fetch_add`), and each slot is its own tiny mutex held only for a
//! record move. Writers never contend on a shared lock unless the ring
//! has fully wrapped within one write's critical section (at which
//! point losing a record to overwrite is the documented retention
//! policy anyway). Readers walk the ring newest-backward and return
//! spans oldest-first.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use supermarq_store::Json;

use crate::server::ServeMetrics;

/// One completed span, flattened for the wire. Field names mirror the
/// JSONL sink schema (`id`/`parent`/`trace`/`elapsed_ns`) so tooling
/// can treat ring output and trace files uniformly.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (`serve.request`, `serve.execute`, ...).
    pub name: &'static str,
    /// Request op (`run`, `batch`, ...) or `""` when not applicable.
    pub op: &'static str,
    /// 32-hex trace id, when the span belonged to a distributed trace.
    pub trace: Option<String>,
    /// Span id (0 when tracing was off — the record still carries
    /// timing).
    pub span: u64,
    /// Remote parent span id (0 = none).
    pub parent: u64,
    /// Milliseconds since the daemon started.
    pub start_ms: u64,
    /// Wall time the span covered.
    pub elapsed_ns: u64,
    /// Whether the operation succeeded.
    pub ok: bool,
    /// How the result was obtained (`warm`, `executed`, `coalesced`,
    /// or `""` for non-run ops).
    pub source: &'static str,
}

impl SpanRecord {
    /// Strict-JSON object for the `trace` op response.
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("name".into(), Json::str(self.name)),
            ("op".into(), Json::str(self.op)),
        ];
        if let Some(trace) = &self.trace {
            obj.push(("trace".into(), Json::str(trace)));
        }
        obj.push(("span".into(), Json::uint(self.span)));
        obj.push(("parent".into(), Json::uint(self.parent)));
        obj.push(("start_ms".into(), Json::uint(self.start_ms)));
        obj.push(("elapsed_ns".into(), Json::uint(self.elapsed_ns)));
        obj.push(("ok".into(), Json::Bool(self.ok)));
        obj.push(("source".into(), Json::str(self.source)));
        Json::Obj(obj)
    }
}

/// Bounded ring of recently completed spans; see the module docs.
#[derive(Debug)]
pub struct SpanRing {
    slots: Vec<Mutex<Option<SpanRecord>>>,
    /// Total records ever pushed; `head % slots.len()` is the next slot.
    head: AtomicU64,
}

impl SpanRing {
    /// A ring keeping the most recent `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> SpanRing {
        SpanRing {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Number of records the ring retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records one completed span, overwriting the oldest when full.
    pub fn push(&self, record: SpanRecord) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        *slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(record);
    }

    /// The most recent records, oldest first, optionally filtered by
    /// 32-hex trace id. `limit` caps the result (clamped to capacity);
    /// a filter that matches nothing returns an empty vec.
    pub fn recent(&self, limit: usize, trace_filter: Option<&str>) -> Vec<SpanRecord> {
        let limit = limit.min(self.slots.len());
        let head = self.head.load(Ordering::Relaxed);
        let n = self.slots.len() as u64;
        let mut out = Vec::new();
        // Walk newest-backward so the limit keeps the *latest* spans.
        for back in 0..head.min(n) {
            if out.len() >= limit {
                break;
            }
            let seq = head - 1 - back;
            let slot = &self.slots[(seq % n) as usize];
            let record = slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clone();
            let Some(record) = record else { continue };
            if let Some(filter) = trace_filter {
                if record.trace.as_deref() != Some(filter) {
                    continue;
                }
            }
            out.push(record);
        }
        out.reverse();
        out
    }
}

/// Formats one Prometheus sample line. Values are `u64`/`f64` rendered
/// through Rust's `Display`, which never produces scientific notation —
/// keeping every line inside the exposition grammar
/// `name(\{labels\})? value`.
fn sample(out: &mut String, name: &str, labels: &str, value: impl std::fmt::Display) {
    out.push_str(name);
    out.push_str(labels);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

fn seconds(ns: u64) -> f64 {
    ns as f64 / 1e9
}

/// Renders the full Prometheus text exposition for a server: lifetime
/// counters, queue-depth/in-flight gauges, lifetime latency summaries
/// (quantiles are power-of-two bucket upper bounds), and the rolling
/// 60 s window digests as gauges.
pub fn prometheus_text(metrics: &ServeMetrics, queue_depth: u64, inflight: u64) -> String {
    let mut out = String::with_capacity(2048);
    for (name, value) in [
        ("requests", metrics.requests.load(Ordering::Relaxed)),
        ("hits", metrics.hits.load(Ordering::Relaxed)),
        ("misses", metrics.misses.load(Ordering::Relaxed)),
        ("coalesced", metrics.coalesced.load(Ordering::Relaxed)),
        ("simulations", metrics.simulations.load(Ordering::Relaxed)),
        ("rejected", metrics.rejected.load(Ordering::Relaxed)),
        ("errors", metrics.errors.load(Ordering::Relaxed)),
    ] {
        let full = format!("supermarq_serve_{name}_total");
        out.push_str(&format!("# TYPE {full} counter\n"));
        sample(&mut out, &full, "", value);
    }
    out.push_str("# TYPE supermarq_serve_queue_depth gauge\n");
    sample(&mut out, "supermarq_serve_queue_depth", "", queue_depth);
    out.push_str("# TYPE supermarq_serve_inflight gauge\n");
    sample(&mut out, "supermarq_serve_inflight", "", inflight);
    for (stem, hist, window) in [
        (
            "supermarq_serve_request_latency",
            &metrics.request_ns,
            &metrics.request_window,
        ),
        (
            "supermarq_serve_warm_hit_latency",
            &metrics.warm_hit_ns,
            &metrics.warm_window,
        ),
    ] {
        // Lifetime summary.
        let name = format!("{stem}_seconds");
        out.push_str(&format!("# TYPE {name} summary\n"));
        sample(
            &mut out,
            &name,
            "{quantile=\"0.5\"}",
            seconds(hist.quantile(0.50)),
        );
        sample(
            &mut out,
            &name,
            "{quantile=\"0.99\"}",
            seconds(hist.quantile(0.99)),
        );
        sample(&mut out, &format!("{name}_sum"), "", seconds(hist.sum()));
        sample(&mut out, &format!("{name}_count"), "", hist.count());
        // Rolling window, exported as gauges (a Prometheus summary
        // cannot express "over the last minute").
        let digest = window.snapshot();
        for (suffix, value) in [
            ("window_p50_seconds", seconds(digest.p50)),
            ("window_p99_seconds", seconds(digest.p99)),
        ] {
            let full = format!("{stem}_{suffix}");
            out.push_str(&format!("# TYPE {full} gauge\n"));
            sample(&mut out, &full, "", value);
        }
        let full = format!("{stem}_window_count");
        out.push_str(&format!("# TYPE {full} gauge\n"));
        sample(&mut out, &full, "", digest.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(n: u64, trace: Option<&str>) -> SpanRecord {
        SpanRecord {
            name: "serve.request",
            op: "run",
            trace: trace.map(str::to_string),
            span: n,
            parent: 0,
            start_ms: n,
            elapsed_ns: n * 100,
            ok: true,
            source: "warm",
        }
    }

    #[test]
    fn ring_keeps_the_newest_records_in_order() {
        let ring = SpanRing::new(4);
        for n in 0..10 {
            ring.push(record(n, None));
        }
        let recent = ring.recent(16, None);
        let spans: Vec<u64> = recent.iter().map(|r| r.span).collect();
        assert_eq!(spans, [6, 7, 8, 9], "oldest-first, newest retained");
        // Limit keeps the latest, still oldest-first.
        let limited: Vec<u64> = ring.recent(2, None).iter().map(|r| r.span).collect();
        assert_eq!(limited, [8, 9]);
    }

    #[test]
    fn ring_filters_by_trace_id() {
        let ring = SpanRing::new(8);
        ring.push(record(1, Some("aa")));
        ring.push(record(2, None));
        ring.push(record(3, Some("bb")));
        ring.push(record(4, Some("aa")));
        let aa: Vec<u64> = ring.recent(8, Some("aa")).iter().map(|r| r.span).collect();
        assert_eq!(aa, [1, 4]);
        assert!(ring.recent(8, Some("zz")).is_empty());
    }

    #[test]
    fn record_json_shape() {
        let json = record(7, Some("abc")).to_json();
        assert_eq!(
            json.get("name").and_then(Json::as_str),
            Some("serve.request")
        );
        assert_eq!(json.get("trace").and_then(Json::as_str), Some("abc"));
        assert_eq!(json.get("span").and_then(Json::as_u64), Some(7));
        assert_eq!(json.get("elapsed_ns").and_then(Json::as_u64), Some(700));
        // Untraced records omit the trace key entirely.
        assert!(record(1, None).to_json().get("trace").is_none());
    }

    #[test]
    fn ring_push_is_safe_under_contention() {
        let ring = SpanRing::new(16);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ring = &ring;
                s.spawn(move || {
                    for n in 0..100 {
                        ring.push(record(t * 1000 + n, None));
                    }
                });
            }
        });
        let recent = ring.recent(16, None);
        assert_eq!(recent.len(), 16, "full ring after 400 pushes");
    }
}
