//! A blocking line-protocol client, used by `supermarq client`, the
//! tests, and the warm-hit benchmark. One [`Client`] is one connection;
//! requests are serial (the protocol has no multiplexing).

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use supermarq_store::{Json, RunSpec, SweepGrid};

use crate::protocol::{classify_response, encode_request, Request};

/// A parsed `batch` response: the header counters plus the raw result
/// lines, in grid order, exactly as the daemon sent them.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResponse {
    /// Cells in the expanded grid.
    pub total: u64,
    /// Cells served warm.
    pub hits: u64,
    /// Cells that needed a job.
    pub misses: u64,
    /// Cells whose executor failed.
    pub failures: u64,
    /// One line per cell; byte-identical to `supermarq batch` output.
    pub lines: Vec<String>,
}

/// A connected protocol client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Caps how long a single response read may block (`None` = wait
    /// forever, the default — batch jobs can legitimately take a while).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    fn send(&mut self, request: &Request) -> Result<(), String> {
        let line = encode_request(request);
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .and_then(|_| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))
    }

    fn read_line(&mut self) -> Result<String, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("connection closed by server".into()),
            Ok(_) => Ok(line.trim_end_matches(['\n', '\r']).to_string()),
            Err(e) => Err(format!("read failed: {e}")),
        }
    }

    fn read_classified(&mut self) -> Result<Json, String> {
        let line = self.read_line()?;
        classify_response(&line).map_err(|(kind, message)| format!("{kind}: {message}"))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), String> {
        self.send(&Request::Ping)?;
        let value = self.read_classified()?;
        match value.get("type").and_then(Json::as_str) {
            Some("pong") => Ok(()),
            other => Err(format!("unexpected ping reply: {other:?}")),
        }
    }

    /// Fetches the combined store + service stats object.
    pub fn stats(&mut self) -> Result<Json, String> {
        self.send(&Request::Stats)?;
        self.read_classified()
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown_server(&mut self) -> Result<(), String> {
        self.send(&Request::Shutdown)?;
        let value = self.read_classified()?;
        match value.get("type").and_then(Json::as_str) {
            Some("shutdown") => Ok(()),
            other => Err(format!("unexpected shutdown reply: {other:?}")),
        }
    }

    /// Resolves one run. `Ok` carries the raw result line (a stored
    /// record or an executor-failure object — byte-identical to
    /// `supermarq batch` output); `Err` is a protocol-level failure
    /// (busy, parse, shutting-down, transport).
    pub fn run(&mut self, spec: &RunSpec) -> Result<String, String> {
        self.send(&Request::Run(spec.clone()))?;
        let line = self.read_line()?;
        match classify_response(&line) {
            Ok(_) => Ok(line),
            Err((kind, message)) => Err(format!("{kind}: {message}")),
        }
    }

    /// Resolves a whole grid server-side.
    pub fn batch(&mut self, grid: &SweepGrid) -> Result<BatchResponse, String> {
        self.send(&Request::Batch(grid.clone()))?;
        let header = self.read_classified()?;
        if header.get("type").and_then(Json::as_str) != Some("batch") {
            return Err("missing batch header".into());
        }
        let count = |key: &str| -> Result<u64, String> {
            header
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("batch header missing '{key}'"))
        };
        let response = BatchResponse {
            total: count("total")?,
            hits: count("hits")?,
            misses: count("misses")?,
            failures: count("failures")?,
            lines: Vec::new(),
        };
        let mut lines = Vec::with_capacity(response.total as usize);
        for _ in 0..response.total {
            lines.push(self.read_line()?);
        }
        Ok(BatchResponse { lines, ..response })
    }
}
