//! A blocking line-protocol client, used by `supermarq client`, the
//! tests, and the warm-hit benchmark. One [`Client`] is one connection;
//! requests are serial (the protocol has no multiplexing).

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use supermarq_obs::TraceContext;
use supermarq_store::{Json, RunSpec, SweepGrid};

use crate::protocol::{classify_response, encode_request, MetricsFormat, Request};

/// Server-side timing echoed on traced `run` requests: how the
/// response was produced and where the time went, so the client can
/// attribute wire vs. queue vs. simulate latency.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTiming {
    /// `warm`, `executed`, or `coalesced`.
    pub source: String,
    /// Total server-side time for the request.
    pub total_ns: u64,
    /// Time the job sat queued (0 for warm hits).
    pub queue_ns: u64,
    /// Time the executor ran (0 for warm hits).
    pub execute_ns: u64,
}

impl RunTiming {
    fn from_json(value: &Json) -> Option<RunTiming> {
        let field = |key: &str| value.get(key).and_then(Json::as_u64);
        Some(RunTiming {
            source: value.get("source").and_then(Json::as_str)?.to_string(),
            total_ns: field("total_ns")?,
            queue_ns: field("queue_ns")?,
            execute_ns: field("execute_ns")?,
        })
    }
}

/// A parsed `batch` response: the header counters plus the raw result
/// lines, in grid order, exactly as the daemon sent them.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResponse {
    /// Cells in the expanded grid.
    pub total: u64,
    /// Cells served warm.
    pub hits: u64,
    /// Cells that needed a job.
    pub misses: u64,
    /// Cells whose executor failed.
    pub failures: u64,
    /// One line per cell; byte-identical to `supermarq batch` output.
    pub lines: Vec<String>,
}

/// A connected protocol client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Caps how long a single response read may block (`None` = wait
    /// forever, the default — batch jobs can legitimately take a while).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    fn send(&mut self, request: &Request) -> Result<(), String> {
        let line = encode_request(request);
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .and_then(|_| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))
    }

    fn read_line(&mut self) -> Result<String, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("connection closed by server".into()),
            Ok(_) => Ok(line.trim_end_matches(['\n', '\r']).to_string()),
            Err(e) => Err(format!("read failed: {e}")),
        }
    }

    fn read_classified(&mut self) -> Result<Json, String> {
        let line = self.read_line()?;
        classify_response(&line).map_err(|(kind, message)| format!("{kind}: {message}"))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), String> {
        self.send(&Request::Ping)?;
        let value = self.read_classified()?;
        match value.get("type").and_then(Json::as_str) {
            Some("pong") => Ok(()),
            other => Err(format!("unexpected ping reply: {other:?}")),
        }
    }

    /// Fetches the combined store + service stats object.
    pub fn stats(&mut self) -> Result<Json, String> {
        self.send(&Request::Stats)?;
        self.read_classified()
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown_server(&mut self) -> Result<(), String> {
        self.send(&Request::Shutdown)?;
        let value = self.read_classified()?;
        match value.get("type").and_then(Json::as_str) {
            Some("shutdown") => Ok(()),
            other => Err(format!("unexpected shutdown reply: {other:?}")),
        }
    }

    /// Resolves one run. `Ok` carries the raw result line (a stored
    /// record or an executor-failure object — byte-identical to
    /// `supermarq batch` output); `Err` is a protocol-level failure
    /// (busy, parse, shutting-down, transport).
    pub fn run(&mut self, spec: &RunSpec) -> Result<String, String> {
        self.run_traced(spec, None).map(|(line, _)| line)
    }

    /// [`Client::run`] carrying an optional trace context. When a
    /// context is sent, the daemon continues the trace under the
    /// caller's span and echoes an extra timing line, returned here as
    /// [`RunTiming`]. Untraced calls read exactly one line — the wire
    /// exchange is byte-identical to the pre-tracing protocol.
    pub fn run_traced(
        &mut self,
        spec: &RunSpec,
        trace: Option<&TraceContext>,
    ) -> Result<(String, Option<RunTiming>), String> {
        let traced = trace.is_some_and(|ctx| ctx.trace.is_some());
        self.send(&Request::Run {
            spec: spec.clone(),
            trace: trace.copied(),
        })?;
        let line = self.read_line()?;
        if let Err((kind, message)) = classify_response(&line) {
            return Err(format!("{kind}: {message}"));
        }
        // The timing echo only follows a *valid* trace context; a
        // context without a trace id degrades server-side to untraced.
        let timing = if traced {
            let echo = self.read_classified()?;
            if echo.get("type").and_then(Json::as_str) != Some("timing") {
                return Err("missing timing echo on traced run".into());
            }
            RunTiming::from_json(&echo)
        } else {
            None
        };
        Ok((line, timing))
    }

    /// Resolves a whole grid server-side.
    pub fn batch(&mut self, grid: &SweepGrid) -> Result<BatchResponse, String> {
        self.batch_traced(grid, None)
    }

    /// [`Client::batch`] carrying an optional trace context, so the
    /// daemon's batch spans join the caller's trace. Batch responses
    /// never carry timing lines; the body stays byte-identical either
    /// way.
    pub fn batch_traced(
        &mut self,
        grid: &SweepGrid,
        trace: Option<&TraceContext>,
    ) -> Result<BatchResponse, String> {
        self.send(&Request::Batch {
            grid: grid.clone(),
            trace: trace.copied(),
        })?;
        let header = self.read_classified()?;
        if header.get("type").and_then(Json::as_str) != Some("batch") {
            return Err("missing batch header".into());
        }
        let count = |key: &str| -> Result<u64, String> {
            header
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("batch header missing '{key}'"))
        };
        let response = BatchResponse {
            total: count("total")?,
            hits: count("hits")?,
            misses: count("misses")?,
            failures: count("failures")?,
            lines: Vec::new(),
        };
        let mut lines = Vec::with_capacity(response.total as usize);
        for _ in 0..response.total {
            lines.push(self.read_line()?);
        }
        Ok(BatchResponse { lines, ..response })
    }

    /// Fetches live telemetry as strict JSON: the `serve` counter
    /// object (same schema as `stats`) plus rolling-window latency
    /// digests.
    pub fn metrics_json(&mut self) -> Result<Json, String> {
        self.send(&Request::Metrics(MetricsFormat::Json))?;
        self.read_classified()
    }

    /// Fetches live telemetry as Prometheus text exposition, ready to
    /// hand to a scraper.
    pub fn metrics_prometheus(&mut self) -> Result<String, String> {
        self.send(&Request::Metrics(MetricsFormat::Prometheus))?;
        let value = self.read_classified()?;
        value
            .get("body")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| "metrics response missing 'body'".into())
    }

    /// Fetches recently completed daemon spans, oldest first,
    /// optionally filtered by 32-hex trace id.
    pub fn trace_recent(&mut self, id: Option<&str>, limit: Option<u64>) -> Result<Json, String> {
        self.send(&Request::Trace {
            id: id.map(str::to_string),
            limit,
        })?;
        self.read_classified()
    }
}
