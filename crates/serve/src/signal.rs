//! Minimal Ctrl-C (SIGINT) interception without a libc crate.
//!
//! `std` always links the C runtime, so `signal(2)` is declared here
//! directly. The handler only flips an `AtomicBool` (the one
//! async-signal-safe thing worth doing); callers poll [`interrupted`] at
//! convenient boundaries — between sweep jobs, around the serve accept
//! loop — and run their own orderly teardown. A **second** Ctrl-C while
//! the flag is already set calls `_exit(130)`: the escape hatch when
//! teardown itself wedges.
//!
//! On non-Unix targets installation is a no-op and [`interrupted`] never
//! fires spontaneously (tests can still [`raise`] it).

use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::INTERRUPTED;
    use std::sync::atomic::Ordering;
    use std::sync::Once;

    const SIGINT: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn _exit(status: i32) -> !;
    }

    extern "C" fn on_sigint(_signum: i32) {
        if INTERRUPTED.swap(true, Ordering::SeqCst) {
            // Second Ctrl-C: the polite path is stuck; leave now with
            // the conventional 128+SIGINT status.
            unsafe { _exit(130) }
        }
    }

    pub fn install() {
        static ONCE: Once = Once::new();
        ONCE.call_once(|| unsafe {
            signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
        });
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT handler (idempotent, cheap to call repeatedly).
pub fn install_handler() {
    imp::install();
}

/// Whether a Ctrl-C has arrived since the last [`clear`].
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Resets the flag (start of a new interruptible phase).
pub fn clear() {
    INTERRUPTED.store(false, Ordering::SeqCst);
}

/// Sets the flag as if a signal had arrived — for tests.
pub fn raise() {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_lifecycle_without_a_real_signal() {
        install_handler();
        clear();
        assert!(!interrupted());
        raise();
        assert!(interrupted());
        clear();
        assert!(!interrupted());
    }
}
