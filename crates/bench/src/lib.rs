//! Shared helpers for the evaluation harness binaries.
//!
//! Each table and figure of the paper's evaluation section has a dedicated
//! binary in this crate (see `src/bin/`); this library holds the pieces
//! they share: the Fig. 2 benchmark grid, result records, and plain-text
//! table rendering.

use supermarq::spec::{benchmark_from_params, default_init};
use supermarq::Benchmark;

/// A benchmark point in spec form: `(benchmark id, parameters)` — the
/// `(benchmark, params)` half of a `supermarq_store::RunSpec`, so grid
/// cells are content-addressable.
pub type BenchPoint = (String, Vec<(String, String)>);

/// One Fig. 2 panel: `(panel_label, instances, is_error_correction)`.
pub type Fig2Panel = (&'static str, Vec<Box<dyn Benchmark>>, bool);

/// One Fig. 2 panel in spec form: `(panel_label, points, is_error_correction)`.
pub type Fig2SpecPanel = (&'static str, Vec<BenchPoint>, bool);

/// Parses the observability flags shared by the figure binaries
/// (`--profile`, `--trace-out <path>`) from the process arguments and
/// enables tracing accordingly. Returns `true` when the caller should
/// print the profile summary at exit (via [`finish_observability`]).
/// Exits with status 2 when the trace file cannot be created.
pub fn init_observability(tool: &str) -> bool {
    let args: Vec<String> = std::env::args().collect();
    let profile = args.iter().any(|a| a == "--profile");
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1));
    if let Some(path) = trace_out {
        if let Err(e) = supermarq_obs::init_trace_file(path) {
            eprintln!("{tool}: cannot create trace file {path}: {e}");
            std::process::exit(2);
        }
    } else if profile {
        supermarq_obs::enable();
    }
    profile
}

/// Flushes the trace sink and, when `profile` is set, prints the span /
/// metrics summary table to stderr. The tables on stdout are unaffected.
pub fn finish_observability(profile: bool) {
    supermarq_obs::flush();
    if profile {
        let table = supermarq_obs::summary_table();
        if !table.is_empty() {
            eprint!("{table}");
        }
    }
}

/// Paper shot budgets per device: 2000 on IBM machines, 1024 on AQT, 35
/// on IonQ ("selected to maintain a reasonable cost budget"). Shared by
/// the Fig. 2 binary and the warm-cache regression test so their specs
/// hash identically.
pub fn shots_for(device: &supermarq_device::Device) -> u64 {
    match device.name() {
        "IonQ" => 35,
        "AQT" => 1024,
        _ => 2000,
    }
}

fn point(id: &str, params: &[(&str, String)]) -> BenchPoint {
    (
        id.to_string(),
        params
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    )
}

fn sized(id: &str, size: usize) -> BenchPoint {
    point(id, &[("size", size.to_string())])
}

fn code(id: &str, size: usize, rounds: usize) -> BenchPoint {
    point(
        id,
        &[
            ("size", size.to_string()),
            ("rounds", rounds.to_string()),
            ("init", default_init(size)),
        ],
    )
}

/// The Fig. 2 benchmark grid in spec form: for each of the eight
/// applications, the instance sizes the paper swept (kept within
/// statevector reach), in the paper's panel order. This is the single
/// source of truth; [`figure2_grid`] instantiates it.
pub fn figure2_points() -> Vec<Fig2SpecPanel> {
    let qaoa =
        |id: &str, size: usize| point(id, &[("size", size.to_string()), ("seed", "1".to_string())]);
    let vqe = |size: usize| {
        point(
            "vqe",
            &[("size", size.to_string()), ("layers", "1".to_string())],
        )
    };
    let hamsim = |size: usize| {
        point(
            "hamsim",
            &[("size", size.to_string()), ("steps", size.to_string())],
        )
    };
    vec![
        ("a) GHZ", (3..=6).map(|n| sized("ghz", n)).collect(), false),
        (
            "b) Mermin-Bell",
            (3..=5).map(|n| sized("mermin-bell", n)).collect(),
            false,
        ),
        (
            "c) Phase Code",
            vec![
                code("phase-code", 3, 1),
                code("phase-code", 3, 3),
                code("phase-code", 4, 2),
            ],
            true,
        ),
        (
            "d) Bit Code",
            vec![
                code("bit-code", 3, 1),
                code("bit-code", 3, 3),
                code("bit-code", 4, 2),
            ],
            true,
        ),
        ("e) VQE", (3..=5).map(vqe).collect(), false),
        (
            "f) Hamiltonian Simulation",
            (3..=5).map(hamsim).collect(),
            false,
        ),
        (
            "g) ZZ-SWAP QAOA",
            (4..=6).map(|n| qaoa("qaoa-swap", n)).collect(),
            false,
        ),
        (
            "h) Vanilla QAOA",
            (4..=6).map(|n| qaoa("qaoa-vanilla", n)).collect(),
            false,
        ),
    ]
}

/// The Fig. 2 benchmark grid, instantiated from [`figure2_points`].
pub fn figure2_grid() -> Vec<Fig2Panel> {
    figure2_points()
        .into_iter()
        .map(|(label, points, is_ec)| {
            let instances = points
                .iter()
                .map(|(id, params)| {
                    benchmark_from_params(id, params)
                        .unwrap_or_else(|e| panic!("in-tree grid point {id} is valid: {e}"))
                })
                .collect();
            (label, instances, is_ec)
        })
        .collect()
}

/// Renders a plain-text table with a header row.
pub fn render_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let mut out = String::new();
    out.push_str(&fmt_row(headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats an optional score cell (`None` renders the paper's black X for
/// benchmarks that exceed a device's qubit count).
pub fn score_cell(score: Option<(f64, f64)>) -> String {
    match score {
        Some((mean, sd)) => format!("{mean:.3}±{sd:.3}"),
        None => "X".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_all_eight_applications() {
        let grid = figure2_grid();
        assert_eq!(grid.len(), 8);
        let ec_panels = grid.iter().filter(|(_, _, ec)| *ec).count();
        assert_eq!(ec_panels, 2);
        for (label, instances, _) in &grid {
            assert!(!instances.is_empty(), "{label}");
        }
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let t = render_table(
            &["a".into(), "bb".into()],
            &[
                vec!["xxx".into(), "y".into()],
                vec!["z".into(), "wwww".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
    }

    #[test]
    fn score_cells() {
        assert_eq!(score_cell(None), "X");
        assert_eq!(score_cell(Some((0.5, 0.01))), "0.500±0.010");
    }

    /// Acceptance gate for the Closed-Division pipeline: the smallest
    /// instance of each of the eight applications must transpile onto every
    /// Table II device with zero error-level diagnostics at the strictest
    /// verification level. Benchmarks that exceed a device's qubit count
    /// are the legitimate black X's of Fig. 2 and are skipped.
    #[test]
    fn verifier_accepts_every_benchmark_on_every_device() {
        use supermarq_device::Device;
        use supermarq_transpile::{TranspileError, Transpiler, VerifyLevel};
        use supermarq_verify::verify_on_device;
        for (label, instances, _) in figure2_grid() {
            let bench = &instances[0];
            for device in Device::all_paper_devices() {
                let transpiler = Transpiler::for_device(&device).with_verify(VerifyLevel::Stages);
                for circuit in bench.circuits() {
                    match transpiler.run(&circuit) {
                        Ok(result) => {
                            let report = verify_on_device(&result.circuit, &device);
                            assert!(
                                !report.has_errors(),
                                "{label} on {}:\n{}",
                                device.name(),
                                report.render()
                            );
                        }
                        Err(TranspileError::TooManyQubits { .. }) => {}
                        Err(e) => panic!("{label} on {}: {e}", device.name()),
                    }
                }
            }
        }
    }
}
