//! Shared helpers for the evaluation harness binaries.
//!
//! Each table and figure of the paper's evaluation section has a dedicated
//! binary in this crate (see `src/bin/`); this library holds the pieces
//! they share: the Fig. 2 benchmark grid, result records, and plain-text
//! table rendering.

use supermarq::benchmarks::{
    BitCodeBenchmark, GhzBenchmark, HamiltonianSimBenchmark, MerminBellBenchmark,
    PhaseCodeBenchmark, QaoaSwapBenchmark, QaoaVanillaBenchmark, VqeBenchmark,
};
use supermarq::Benchmark;

/// One Fig. 2 panel: `(panel_label, instances, is_error_correction)`.
pub type Fig2Panel = (&'static str, Vec<Box<dyn Benchmark>>, bool);

/// The Fig. 2 benchmark grid: for each of the eight applications, the
/// instance sizes the paper swept (kept within statevector reach), in the
/// paper's panel order.
pub fn figure2_grid() -> Vec<Fig2Panel> {
    vec![
        (
            "a) GHZ",
            vec![
                Box::new(GhzBenchmark::new(3)) as Box<dyn Benchmark>,
                Box::new(GhzBenchmark::new(4)),
                Box::new(GhzBenchmark::new(5)),
                Box::new(GhzBenchmark::new(6)),
            ],
            false,
        ),
        (
            "b) Mermin-Bell",
            vec![
                Box::new(MerminBellBenchmark::new(3)) as Box<dyn Benchmark>,
                Box::new(MerminBellBenchmark::new(4)),
                Box::new(MerminBellBenchmark::new(5)),
            ],
            false,
        ),
        (
            "c) Phase Code",
            vec![
                Box::new(PhaseCodeBenchmark::new(3, 1, &[true, false, true])) as Box<dyn Benchmark>,
                Box::new(PhaseCodeBenchmark::new(3, 3, &[true, false, true])),
                Box::new(PhaseCodeBenchmark::new(4, 2, &[true, false, true, false])),
            ],
            true,
        ),
        (
            "d) Bit Code",
            vec![
                Box::new(BitCodeBenchmark::new(3, 1, &[true, false, true])) as Box<dyn Benchmark>,
                Box::new(BitCodeBenchmark::new(3, 3, &[true, false, true])),
                Box::new(BitCodeBenchmark::new(4, 2, &[true, false, true, false])),
            ],
            true,
        ),
        (
            "e) VQE",
            vec![
                Box::new(VqeBenchmark::new(3, 1)) as Box<dyn Benchmark>,
                Box::new(VqeBenchmark::new(4, 1)),
                Box::new(VqeBenchmark::new(5, 1)),
            ],
            false,
        ),
        (
            "f) Hamiltonian Simulation",
            vec![
                Box::new(HamiltonianSimBenchmark::new(3, 3)) as Box<dyn Benchmark>,
                Box::new(HamiltonianSimBenchmark::new(4, 4)),
                Box::new(HamiltonianSimBenchmark::new(5, 5)),
            ],
            false,
        ),
        (
            "g) ZZ-SWAP QAOA",
            vec![
                Box::new(QaoaSwapBenchmark::new(4, 1)) as Box<dyn Benchmark>,
                Box::new(QaoaSwapBenchmark::new(5, 1)),
                Box::new(QaoaSwapBenchmark::new(6, 1)),
            ],
            false,
        ),
        (
            "h) Vanilla QAOA",
            vec![
                Box::new(QaoaVanillaBenchmark::new(4, 1)) as Box<dyn Benchmark>,
                Box::new(QaoaVanillaBenchmark::new(5, 1)),
                Box::new(QaoaVanillaBenchmark::new(6, 1)),
            ],
            false,
        ),
    ]
}

/// Renders a plain-text table with a header row.
pub fn render_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let mut out = String::new();
    out.push_str(&fmt_row(headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats an optional score cell (`None` renders the paper's black X for
/// benchmarks that exceed a device's qubit count).
pub fn score_cell(score: Option<(f64, f64)>) -> String {
    match score {
        Some((mean, sd)) => format!("{mean:.3}±{sd:.3}"),
        None => "X".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_all_eight_applications() {
        let grid = figure2_grid();
        assert_eq!(grid.len(), 8);
        let ec_panels = grid.iter().filter(|(_, _, ec)| *ec).count();
        assert_eq!(ec_panels, 2);
        for (label, instances, _) in &grid {
            assert!(!instances.is_empty(), "{label}");
        }
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let t = render_table(
            &["a".into(), "bb".into()],
            &[
                vec!["xxx".into(), "y".into()],
                vec!["z".into(), "wwww".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
    }

    #[test]
    fn score_cells() {
        assert_eq!(score_cell(None), "X");
        assert_eq!(score_cell(Some((0.5, 0.01))), "0.500±0.010");
    }

    /// Acceptance gate for the Closed-Division pipeline: the smallest
    /// instance of each of the eight applications must transpile onto every
    /// Table II device with zero error-level diagnostics at the strictest
    /// verification level. Benchmarks that exceed a device's qubit count
    /// are the legitimate black X's of Fig. 2 and are skipped.
    #[test]
    fn verifier_accepts_every_benchmark_on_every_device() {
        use supermarq_device::Device;
        use supermarq_transpile::{TranspileError, Transpiler, VerifyLevel};
        use supermarq_verify::verify_on_device;
        for (label, instances, _) in figure2_grid() {
            let bench = &instances[0];
            for device in Device::all_paper_devices() {
                let transpiler = Transpiler::for_device(&device).with_verify(VerifyLevel::Stages);
                for circuit in bench.circuits() {
                    match transpiler.run(&circuit) {
                        Ok(result) => {
                            let report = verify_on_device(&result.circuit, &device);
                            assert!(
                                !report.has_errors(),
                                "{label} on {}:\n{}",
                                device.name(),
                                report.render()
                            );
                        }
                        Err(TranspileError::TooManyQubits { .. }) => {}
                        Err(e) => panic!("{label} on {}: {e}", device.name()),
                    }
                }
            }
        }
    }
}
