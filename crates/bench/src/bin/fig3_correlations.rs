//! Regenerates **Fig. 3**: R^2 heatmaps correlating application features
//! (plus conventional metrics) with device performance — (a) over all
//! benchmarks, (b) excluding the error-correction proxies.

use supermarq::correlation::{correlation_table, ScoreRecord, REGRESSOR_NAMES};
use supermarq::runner::{run_on_device, RunConfig};
use supermarq_bench::{figure2_grid, render_table};
use supermarq_device::Device;

fn collect_records() -> Vec<ScoreRecord> {
    let devices = Device::all_paper_devices();
    let mut records = Vec::new();
    for (_, instances, is_ec) in figure2_grid() {
        for b in &instances {
            let circuit = &b.circuits()[0];
            for device in &devices {
                let config = RunConfig {
                    shots: 1000,
                    repetitions: 2,
                    seed: 7,
                    ..RunConfig::default()
                };
                if let Ok(result) = run_on_device(b.as_ref(), device, &config) {
                    records.push(ScoreRecord::from_circuit(
                        device.name(),
                        b.name(),
                        circuit,
                        result.mean_score(),
                        is_ec,
                    ));
                }
            }
        }
    }
    records
}

fn print_heatmap(title: &str, records: &[ScoreRecord], exclude_ec: bool) {
    let table = correlation_table(records, exclude_ec);
    println!("--- {title} ---");
    let mut headers: Vec<String> = vec!["Feature".into()];
    headers.extend(table.devices.iter().cloned());
    let mut rows = Vec::new();
    for (i, name) in REGRESSOR_NAMES.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for cell in &table.r_squared[i] {
            row.push(match cell {
                Some(v) => format!("{v:.2}"),
                None => "-".into(),
            });
        }
        rows.push(row);
    }
    println!("{}", render_table(&headers, &rows));
}

fn main() {
    println!("== Fig. 3: feature-performance correlation (R^2) ==\n");
    let records = collect_records();
    println!("collected {} (benchmark, device) records\n", records.len());
    print_heatmap("(a) all benchmarks", &records, false);
    print_heatmap("(b) excluding error-correction benchmarks", &records, true);
    println!("Expected shape (paper Sec. VI): with EC included, the Measurement");
    println!("feature dominates on superconducting devices and barely registers on");
    println!("IonQ; excluding EC boosts the Entanglement-Ratio and #2Q-gates");
    println!("correlations across devices.");
}
