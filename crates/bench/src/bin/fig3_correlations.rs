//! Regenerates **Fig. 3**: R^2 heatmaps correlating application features
//! (plus conventional metrics) with device performance — (a) over all
//! benchmarks, (b) excluding the error-correction proxies.
//!
//! The underlying (benchmark × device) runs are served through the
//! `supermarq-store` sweep engine, so reruns (and any cells Fig. 2
//! already computed at matching settings) come from the cache instead of
//! re-simulating. Failing cells are reported on stderr and skipped.
//!
//! Observability: pass `--profile` to print a per-span stage-timing
//! summary on stderr after the tables, and `--trace-out <path>` to write
//! the JSONL span trace. Neither flag changes the tables.

use supermarq::correlation::{correlation_table, ScoreRecord, REGRESSOR_NAMES};
use supermarq::spec::{benchmark_from_params, execute_spec};
use supermarq_bench::{figure2_points, finish_observability, init_observability, render_table};
use supermarq_circuit::Circuit;
use supermarq_device::Device;
use supermarq_store::{RunSpec, Store, SweepEngine, SweepStats};

fn collect_records(store: &Store) -> (Vec<ScoreRecord>, SweepStats) {
    let devices = Device::all_paper_devices();
    let mut specs: Vec<RunSpec> = Vec::new();
    // Sidecar per spec: what the correlation table needs beyond the record.
    let mut meta: Vec<(String, String, Circuit, bool)> = Vec::new();
    for (_, points, is_ec) in figure2_points() {
        for (id, params) in &points {
            let bench = benchmark_from_params(id, params)
                .unwrap_or_else(|e| panic!("in-tree grid point {id} is valid: {e}"));
            let circuit = bench.circuits()[0].clone();
            for device in &devices {
                if bench.num_qubits() > device.num_qubits() {
                    continue;
                }
                specs.push(RunSpec::new(
                    id.clone(),
                    params.clone(),
                    device.name(),
                    1000,
                    2,
                    7,
                ));
                meta.push((
                    device.name().to_string(),
                    bench.name(),
                    circuit.clone(),
                    is_ec,
                ));
            }
        }
    }
    let report =
        SweepEngine::new(store).run(&specs, |spec| execute_spec(spec).map_err(|e| e.to_string()));
    let mut records = Vec::new();
    for (result, (device, name, circuit, is_ec)) in report.results.iter().zip(&meta) {
        match &result.outcome {
            Ok(record) => records.push(ScoreRecord::from_circuit(
                device.clone(),
                name.clone(),
                circuit,
                record.outcome.mean_score(),
                *is_ec,
            )),
            Err(message) => {
                supermarq_obs::progress(&format!(
                    "fig3_correlations: {name} on {device}: {message}"
                ));
            }
        }
    }
    (records, report.stats)
}

fn print_heatmap(title: &str, records: &[ScoreRecord], exclude_ec: bool) {
    let table = correlation_table(records, exclude_ec);
    println!("--- {title} ---");
    let mut headers: Vec<String> = vec!["Feature".into()];
    headers.extend(table.devices.iter().cloned());
    let mut rows = Vec::new();
    for (i, name) in REGRESSOR_NAMES.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for cell in &table.r_squared[i] {
            row.push(match cell {
                Some(v) => format!("{v:.2}"),
                None => "-".into(),
            });
        }
        rows.push(row);
    }
    println!("{}", render_table(&headers, &rows));
}

fn main() {
    let profile = init_observability("fig3_correlations");
    let store = match Store::open_default() {
        Ok(store) => store,
        Err(e) => {
            eprintln!("fig3_correlations: cannot open run store: {e}");
            std::process::exit(2);
        }
    };
    println!("== Fig. 3: feature-performance correlation (R^2) ==\n");
    let (records, stats) = collect_records(&store);
    println!("collected {} (benchmark, device) records\n", records.len());
    print_heatmap("(a) all benchmarks", &records, false);
    print_heatmap("(b) excluding error-correction benchmarks", &records, true);
    println!("Expected shape (paper Sec. VI): with EC included, the Measurement");
    println!("feature dominates on superconducting devices and barely registers on");
    println!("IonQ; excluding EC boosts the Entanglement-Ratio and #2Q-gates");
    println!("correlations across devices.");
    println!();
    println!("store: {}", store.root().display());
    println!("{}", stats.summary());
    finish_observability(profile);
}
