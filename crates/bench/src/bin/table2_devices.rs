//! Regenerates **Table II**: characteristics of the modeled QC systems.

use supermarq_bench::render_table;
use supermarq_device::Device;

fn main() {
    println!("== Table II: characteristics of the modeled QC systems ==\n");
    let mut rows = Vec::new();
    for d in Device::all_paper_devices() {
        let c = d.calibration();
        rows.push(vec![
            d.name().to_string(),
            d.num_qubits().to_string(),
            format!("{:.5e}, {:.5e}", c.t1_us, c.t2_us),
            format!(
                "{:.3}, {:.3}, {:.2}",
                c.time_1q_us, c.time_2q_us, c.time_meas_us
            ),
            format!(
                "{:.3}, {:.2}, {:.2}",
                c.err_1q * 100.0,
                c.err_2q * 100.0,
                c.err_meas * 100.0
            ),
            d.topology().name().to_string(),
            format!("{:.4}", c.readout_to_t1_ratio()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Machine".into(),
                "Qubits".into(),
                "T1, T2 (us)".into(),
                "Times 1Q, 2Q, Meas (us)".into(),
                "Errors 1Q, 2Q, Meas (%)".into(),
                "Topology".into(),
                "Tmeas/T1".into(),
            ],
            &rows
        )
    );
    println!("The last column is the architectural contrast driving the paper's");
    println!("error-correction result: superconducting readout consumes a few");
    println!("percent of T1 per round; trapped-ion readout is negligible.");
}
