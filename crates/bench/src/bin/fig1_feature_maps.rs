//! Regenerates **Fig. 1**: the feature map (six-axis radar values) of every
//! benchmark at several sizes.

use supermarq::features::FEATURE_NAMES;
use supermarq_bench::{figure2_grid, render_table};

fn main() {
    println!("== Fig. 1: application feature maps ==\n");
    let mut headers: Vec<String> = vec!["Benchmark".into()];
    headers.extend(FEATURE_NAMES.iter().map(|s| s.to_string()));
    for (panel, instances, _) in figure2_grid() {
        println!("--- {panel} ---");
        let mut rows = Vec::new();
        for b in &instances {
            let f = b.features().as_array();
            let mut row = vec![b.name()];
            row.extend(f.iter().map(|v| format!("{v:.3}")));
            rows.push(row);
        }
        println!("{}", render_table(&headers, &rows));
    }
    println!("Expected shape (paper Fig. 1): Mermin-Bell and Vanilla QAOA max out");
    println!("Program Communication; bit/phase codes are the only applications with");
    println!("nonzero Measurement; GHZ is fully serial (Critical Depth = 1).");
}
