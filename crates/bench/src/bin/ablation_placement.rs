//! Ablation: placement strategy and optimization passes.
//!
//! Quantifies the Discussion-section claim that "even systems with superior
//! gate fidelities can be severely hampered by sub-optimal compilation":
//! the same benchmark is compiled with (a) greedy noise-aware placement +
//! peephole optimization (the default Closed-Division pipeline), (b)
//! trivial placement, and (c) optimization disabled, and the resulting SWAP
//! counts, two-qubit gate counts and scores are compared.

use supermarq::benchmarks::{GhzBenchmark, MerminBellBenchmark, QaoaVanillaBenchmark};
use supermarq::runner::{run_on_device, RunConfig};
use supermarq::Benchmark;
use supermarq_bench::render_table;
use supermarq_device::Device;
use supermarq_transpile::{PipelineId, PlacementStrategy};

fn main() {
    println!("== Ablation: placement strategy and optimization ==\n");
    let benches: Vec<Box<dyn Benchmark>> = vec![
        Box::new(GhzBenchmark::new(5)),
        Box::new(MerminBellBenchmark::new(4)),
        Box::new(QaoaVanillaBenchmark::new(5, 1)),
    ];
    // Calibration scatter (2x spread) makes placement quality matter: this
    // is the regime where the paper's cited noise-aware mapping works
    // (Murali et al.; Tannu & Qureshi, "not all qubits are created equal").
    let device = Device::ibm_guadalupe().with_error_variation(3, 2.0);
    println!("device: {} (with calibration scatter)\n", device.name());
    let variants: Vec<(&str, PlacementStrategy, PipelineId)> = vec![
        (
            "noise-aware + optimize",
            PlacementStrategy::NoiseAware,
            PipelineId::ClosedDefault,
        ),
        (
            "greedy + optimize",
            PlacementStrategy::Greedy,
            PipelineId::ClosedDefault,
        ),
        (
            "trivial + optimize",
            PlacementStrategy::Trivial,
            PipelineId::ClosedDefault,
        ),
        (
            "greedy, no optimize",
            PlacementStrategy::Greedy,
            PipelineId::NoOptimize,
        ),
    ];
    let headers: Vec<String> = [
        "Benchmark",
        "Variant",
        "Swaps",
        "2Q gates",
        "Score",
        "StdDev",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for b in &benches {
        for (label, placement, pipeline) in &variants {
            let config = RunConfig {
                shots: 2000,
                repetitions: 3,
                seed: 21,
                placement: *placement,
                pipeline: *pipeline,
            };
            match run_on_device(b.as_ref(), &device, &config) {
                Ok(r) => rows.push(vec![
                    b.name(),
                    label.to_string(),
                    r.swap_count.to_string(),
                    r.two_qubit_gates.to_string(),
                    format!("{:.3}", r.mean_score()),
                    format!("{:.3}", r.std_dev()),
                ]),
                Err(e) => rows.push(vec![
                    b.name(),
                    label.to_string(),
                    e.to_string(),
                    "".into(),
                    "".into(),
                    "".into(),
                ]),
            }
        }
    }
    println!("{}", render_table(&headers, &rows));
    println!("Expected: greedy placement needs fewer SWAPs than trivial on the");
    println!("sparse-circuit benchmarks; optimization trims native 2q gates; and");
    println!("with calibration scatter present, noise-aware placement finds");
    println!("lower-error couplers (fewer effective 2q errors at equal swaps).");
}
