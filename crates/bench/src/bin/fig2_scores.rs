//! Regenerates **Fig. 2**: benchmark scores across the modeled devices,
//! with error bars over repetitions and X's where a benchmark exceeds a
//! device's qubit count.
//!
//! Shot counts follow the paper: 2000 on IBM devices, 1024 on AQT, 35 on
//! IonQ ("selected to maintain a reasonable cost budget").
//!
//! Every cell is a content-addressed run served through the
//! `supermarq-store` sweep engine: the first invocation executes and
//! persists each cell under `.supermarq-store/` (override the location
//! with `SUPERMARQ_STORE`); reruns are 100% cache hits and perform zero
//! simulator executions — the closing stats line proves it. Pass
//! `--no-cache` to force recomputation.
//!
//! A failing cell no longer aborts the figure: the error is printed to
//! stderr with the cell named, the cell renders as `err`, and the
//! remaining grid completes.
//!
//! Observability: pass `--profile` to print a per-span stage-timing
//! summary on stderr after the tables, and `--trace-out <path>` to write
//! the JSONL span trace. Neither flag changes the tables.

use supermarq::spec::{benchmark_from_params, execute_spec};
use supermarq_bench::{
    figure2_points, finish_observability, init_observability, render_table, score_cell, shots_for,
};
use supermarq_device::Device;
use supermarq_store::{RunSpec, Store, SweepEngine};

/// One table cell: a sweep job, or the paper's black X.
enum Cell {
    /// Index into the sweep's spec list.
    Job(usize),
    /// Benchmark exceeds the device's qubit count.
    DoesNotFit,
}

/// One table row: the benchmark's display name plus a cell per device.
type BenchRow = (String, Vec<Cell>);

fn main() {
    let profile = init_observability("fig2_scores");
    let use_cache = !std::env::args().any(|a| a == "--no-cache");
    let store = match Store::open_default() {
        Ok(store) => store,
        Err(e) => {
            eprintln!("fig2_scores: cannot open run store: {e}");
            std::process::exit(2);
        }
    };
    let devices = Device::all_paper_devices();
    println!("== Fig. 2: benchmark scores across devices ==\n");
    let mut headers: Vec<String> = vec!["Benchmark".into()];
    headers.extend(devices.iter().map(|d| d.name().to_string()));

    // Expand the whole figure into one job list so a single sweep serves
    // every panel (and the hit/miss stats cover the full grid).
    let panels = figure2_points();
    let mut specs: Vec<RunSpec> = Vec::new();
    let mut layout: Vec<(&str, Vec<BenchRow>)> = Vec::new();
    for (label, points, _) in &panels {
        let mut rows = Vec::new();
        for (id, params) in points {
            let bench = benchmark_from_params(id, params)
                .unwrap_or_else(|e| panic!("in-tree grid point {id} is valid: {e}"));
            let mut cells = Vec::new();
            for device in &devices {
                if bench.num_qubits() > device.num_qubits() {
                    cells.push(Cell::DoesNotFit);
                } else {
                    specs.push(RunSpec::new(
                        id.clone(),
                        params.clone(),
                        device.name(),
                        shots_for(device),
                        3,
                        1,
                    ));
                    cells.push(Cell::Job(specs.len() - 1));
                }
            }
            rows.push((bench.name(), cells));
        }
        layout.push((label, rows));
    }

    let report = SweepEngine::new(&store)
        .with_cache(use_cache)
        .run(&specs, |spec| execute_spec(spec).map_err(|e| e.to_string()));

    for (label, rows) in &layout {
        println!("--- {label} ---");
        let mut table_rows = Vec::new();
        for (name, cells) in rows {
            let mut row = vec![name.clone()];
            for (cell, device) in cells.iter().zip(&devices) {
                row.push(match cell {
                    Cell::DoesNotFit => score_cell(None),
                    Cell::Job(i) => match &report.results[*i].outcome {
                        Ok(record) => score_cell(Some((
                            record.outcome.mean_score(),
                            record.outcome.std_dev(),
                        ))),
                        Err(message) => {
                            // Propagate per cell: name it, keep going.
                            supermarq_obs::progress(&format!(
                                "fig2_scores: {name} on {}: {message}",
                                device.name()
                            ));
                            "err".to_string()
                        }
                    },
                });
            }
            table_rows.push(row);
        }
        println!("{}", render_table(&headers, &table_rows));
    }
    println!("Expected shape (paper Sec. VI): scores fall as instances grow; IonQ");
    println!("wins communication-heavy benchmarks (Mermin-Bell, Vanilla QAOA) via");
    println!("all-to-all connectivity despite worse 2q fidelity; superconducting");
    println!("devices are competitive when program connectivity matches the lattice");
    println!("(VQE, HamSim, ZZ-SWAP QAOA); EC benchmarks score lowest on");
    println!("superconducting devices (costly RESET/readout vs T1).");
    println!();
    println!("store: {}", store.root().display());
    println!("{}", report.stats.summary());
    finish_observability(profile);
}
