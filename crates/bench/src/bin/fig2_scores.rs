//! Regenerates **Fig. 2**: benchmark scores across the modeled devices,
//! with error bars over repetitions and X's where a benchmark exceeds a
//! device's qubit count.
//!
//! Shot counts follow the paper: 2000 on IBM devices, 1024 on AQT, 35 on
//! IonQ ("selected to maintain a reasonable cost budget").

use rayon::prelude::*;
use supermarq::runner::{run_on_device, RunConfig};
use supermarq_bench::{figure2_grid, render_table, score_cell};
use supermarq_device::Device;

fn shots_for(device: &Device) -> usize {
    match device.name() {
        "IonQ" => 35,
        "AQT" => 1024,
        _ => 2000,
    }
}

fn main() {
    let devices = Device::all_paper_devices();
    println!("== Fig. 2: benchmark scores across devices ==\n");
    let mut headers: Vec<String> = vec!["Benchmark".into()];
    headers.extend(devices.iter().map(|d| d.name().to_string()));
    for (panel, instances, _) in figure2_grid() {
        println!("--- {panel} ---");
        // Fan the (benchmark × device) grid of this panel out over the
        // rayon pool; each cell's seed is fixed by the config, so the
        // table is identical at any thread count.
        let rows: Vec<Vec<String>> = instances
            .par_iter()
            .map(|b| {
                let mut row = vec![b.name()];
                let cells: Vec<String> = devices
                    .par_iter()
                    .map(|device| {
                        let config = RunConfig {
                            shots: shots_for(device),
                            repetitions: 3,
                            seed: 1,
                            ..RunConfig::default()
                        };
                        match run_on_device(b.as_ref(), device, &config) {
                            Ok(result) => score_cell(Some((result.mean_score(), result.std_dev()))),
                            Err(_) => score_cell(None),
                        }
                    })
                    .collect();
                row.extend(cells);
                row
            })
            .collect();
        println!("{}", render_table(&headers, &rows));
    }
    println!("Expected shape (paper Sec. VI): scores fall as instances grow; IonQ");
    println!("wins communication-heavy benchmarks (Mermin-Bell, Vanilla QAOA) via");
    println!("all-to-all connectivity despite worse 2q fidelity; superconducting");
    println!("devices are competitive when program connectivity matches the lattice");
    println!("(VQE, HamSim, ZZ-SWAP QAOA); EC benchmarks score lowest on");
    println!("superconducting devices (costly RESET/readout vs T1).");
}
