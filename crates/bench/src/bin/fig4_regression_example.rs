//! Regenerates **Fig. 4**: the example linear regression of benchmark score
//! against the Entanglement-Ratio feature on one device, with and without
//! the error-correction benchmarks.

use supermarq::correlation::ScoreRecord;
use supermarq::runner::{run_on_device, RunConfig};
use supermarq_bench::{figure2_grid, render_table};
use supermarq_classical::stats::linear_regression;
use supermarq_device::Device;

fn main() {
    let device = Device::ibm_guadalupe();
    println!(
        "== Fig. 4: entanglement-ratio regression example on {} ==\n",
        device.name()
    );
    let mut records: Vec<ScoreRecord> = Vec::new();
    for (_, instances, is_ec) in figure2_grid() {
        for b in &instances {
            let config = RunConfig {
                shots: 1000,
                repetitions: 2,
                seed: 11,
                ..RunConfig::default()
            };
            if let Ok(result) = run_on_device(b.as_ref(), &device, &config) {
                records.push(ScoreRecord::from_circuit(
                    device.name(),
                    b.name(),
                    &b.circuits()[0],
                    result.mean_score(),
                    is_ec,
                ));
            }
        }
    }
    // Scatter data.
    let mut rows = Vec::new();
    for r in &records {
        rows.push(vec![
            r.benchmark.clone(),
            format!("{:.3}", r.features.entanglement_ratio),
            format!("{:.3}", r.score),
            if r.is_error_correction {
                "EC".into()
            } else {
                "".into()
            },
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Benchmark".into(),
                "Ent-Ratio".into(),
                "Score".into(),
                "Class".into()
            ],
            &rows
        )
    );
    for (label, exclude_ec) in [("all benchmarks", false), ("excluding EC", true)] {
        let xs: Vec<f64> = records
            .iter()
            .filter(|r| !(exclude_ec && r.is_error_correction))
            .map(|r| r.features.entanglement_ratio)
            .collect();
        let ys: Vec<f64> = records
            .iter()
            .filter(|r| !(exclude_ec && r.is_error_correction))
            .map(|r| r.score)
            .collect();
        match linear_regression(&xs, &ys) {
            Some(fit) => println!(
                "fit ({label}): score = {:.3} * ent_ratio + {:.3},  R^2 = {:.3}",
                fit.slope, fit.intercept, fit.r_squared
            ),
            None => println!("fit ({label}): degenerate"),
        }
    }
    println!("\nExpected shape (paper Fig. 4): the EC benchmarks sit far below the");
    println!("trend line (RESET damage not captured by entanglement ratio);");
    println!("excluding them improves R^2 markedly.");
}
