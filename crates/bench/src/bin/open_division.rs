//! Extension experiment: *Open Division* (readout-mitigated) scores vs the
//! paper's Closed Division — the future-work item of paper Sec. V, realized
//! with inverse-confusion readout mitigation.

use supermarq::benchmarks::{BitCodeBenchmark, GhzBenchmark, MerminBellBenchmark, VqeBenchmark};
use supermarq::runner::{run_on_device, run_on_device_open, RunConfig};
use supermarq::Benchmark;
use supermarq_bench::render_table;
use supermarq_device::Device;

fn main() {
    println!("== Open Division: readout-mitigated scores vs Closed Division ==\n");
    let benches: Vec<Box<dyn Benchmark>> = vec![
        Box::new(GhzBenchmark::new(5)),
        Box::new(MerminBellBenchmark::new(4)),
        Box::new(BitCodeBenchmark::new(3, 2, &[true, false, true])),
        Box::new(VqeBenchmark::new(4, 1)),
    ];
    let devices = [
        Device::ibm_guadalupe(),
        Device::ibm_toronto(),
        Device::ionq(),
    ];
    let headers: Vec<String> = ["Benchmark", "Device", "Closed", "Open", "Gain"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for b in &benches {
        for device in &devices {
            let config = RunConfig {
                shots: 2000,
                repetitions: 3,
                seed: 17,
                ..RunConfig::default()
            };
            let closed = run_on_device(b.as_ref(), device, &config);
            let open = run_on_device_open(b.as_ref(), device, &config);
            match (closed, open) {
                (Ok(c), Ok(o)) => rows.push(vec![
                    b.name(),
                    device.name().to_string(),
                    format!("{:.3}", c.mean_score()),
                    format!("{:.3}", o.mean_score()),
                    format!("{:+.3}", o.mean_score() - c.mean_score()),
                ]),
                _ => rows.push(vec![
                    b.name(),
                    device.name().to_string(),
                    "X".into(),
                    "X".into(),
                    "".into(),
                ]),
            }
        }
    }
    println!("{}", render_table(&headers, &rows));
    println!("Expected: mitigation recovers the readout-error component of every");
    println!("score — largest gains on the superconducting devices (2-3% readout");
    println!("error) for measurement-heavy benchmarks (GHZ, bit code); gate and");
    println!("decoherence errors remain, so scores stay below the noiseless 1.0.");
}
