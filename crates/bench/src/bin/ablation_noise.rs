//! Ablation: noise-channel knockouts.
//!
//! Removes one channel at a time from the IBM-Guadalupe noise model and
//! re-runs representative benchmarks, isolating which physical mechanism
//! drives each score — the mechanism-level confirmation of the Fig. 3
//! correlation study (readout/reset duration is what sinks the EC codes;
//! two-qubit depolarizing is what sinks QAOA).

use supermarq::benchmarks::{BitCodeBenchmark, GhzBenchmark, QaoaSwapBenchmark};
use supermarq::Benchmark;
use supermarq_bench::render_table;
use supermarq_device::Device;
use supermarq_sim::{Executor, NoiseModel};
use supermarq_transpile::Transpiler;

/// Runs a benchmark under an explicit noise model through the device
/// pipeline.
fn score_with(bench: &dyn Benchmark, device: &Device, noise: NoiseModel) -> f64 {
    let transpiler = Transpiler::for_device(device);
    let executor = Executor::new(noise);
    let mut counts = Vec::new();
    for (i, c) in bench.circuits().iter().enumerate() {
        let t = transpiler.run(c).expect("fits");
        let (compact, mapping) = t.circuit.compacted();
        let raw = executor.run(&compact, 2000, 31 + i as u64);
        let mut relabeled = supermarq_sim::Counts::new(bench.num_qubits());
        for (bits, count) in raw.iter() {
            let mut out = 0u64;
            for (prog, &phys) in t.measured_on.iter().enumerate() {
                if let Some(p) = phys {
                    if let Some(d) = mapping[p] {
                        if bits >> d & 1 == 1 {
                            out |= 1 << prog;
                        }
                    }
                }
            }
            for _ in 0..count {
                relabeled.record(out);
            }
        }
        counts.push(relabeled);
    }
    bench.score(&counts).expect("scorable counts")
}

fn main() {
    println!("== Ablation: noise-channel knockouts on IBM-Guadalupe ==\n");
    let device = Device::ibm_guadalupe();
    let full = device.noise_model();
    let variants: Vec<(&str, NoiseModel)> = vec![
        ("full model", full.clone()),
        (
            "no readout error",
            NoiseModel {
                readout_error: 0.0,
                ..full.clone()
            },
        ),
        (
            "no reset error",
            NoiseModel {
                reset_error: 0.0,
                ..full.clone()
            },
        ),
        (
            "no relaxation (T1=T2=inf)",
            NoiseModel {
                t1: f64::INFINITY,
                t2: f64::INFINITY,
                ..full.clone()
            },
        ),
        (
            "no 2q depolarizing",
            NoiseModel {
                depolarizing_2q: 0.0,
                ..full.clone()
            },
        ),
        (
            "no crosstalk",
            NoiseModel {
                crosstalk: 0.0,
                ..full.clone()
            },
        ),
        ("ideal", NoiseModel::ideal()),
    ];
    let benches: Vec<Box<dyn Benchmark>> = vec![
        Box::new(GhzBenchmark::new(5)),
        Box::new(BitCodeBenchmark::new(3, 3, &[true, true, true])),
        Box::new(QaoaSwapBenchmark::new(5, 1)),
    ];
    let mut headers: Vec<String> = vec!["Variant".into()];
    headers.extend(benches.iter().map(|b| b.name()));
    let mut rows = Vec::new();
    for (label, noise) in &variants {
        let mut row = vec![label.to_string()];
        for b in &benches {
            row.push(format!(
                "{:.3}",
                score_with(b.as_ref(), &device, noise.clone())
            ));
        }
        rows.push(row);
    }
    println!("{}", render_table(&headers, &rows));
    println!("Expected: the bit code recovers most when relaxation or readout");
    println!("error is removed (slow measure/reset + T1 decay is its killer);");
    println!("GHZ and QAOA recover most when 2q depolarizing is removed.");
}
