//! Ablation: exact convex-hull volume vs Monte-Carlo estimation.
//!
//! Cross-validates the geometry substrate behind Table I: the exact
//! incremental-hull volume is compared against LP-membership rejection
//! sampling at increasing sample counts, on both synthetic shapes with
//! known volumes and the actual SupermarQ feature cloud.

use supermarq::FeatureVector;
use supermarq_bench::render_table;
use supermarq_geometry::{hull_volume, monte_carlo_volume};

fn cube(d: usize) -> Vec<Vec<f64>> {
    (0..1usize << d)
        .map(|m| {
            (0..d)
                .map(|i| if m >> i & 1 == 1 { 1.0 } else { 0.0 })
                .collect()
        })
        .collect()
}

fn simplex(d: usize) -> Vec<Vec<f64>> {
    let mut pts = vec![vec![0.0; d]];
    for i in 0..d {
        let mut e = vec![0.0; d];
        e[i] = 1.0;
        pts.push(e);
    }
    pts
}

fn main() {
    println!("== Ablation: exact hull volume vs Monte-Carlo estimate ==\n");
    let suite = supermarq_suites::supermarq_suite();
    let feature_cloud: Vec<Vec<f64>> = suite
        .iter()
        .map(|c| FeatureVector::of(c).to_vec())
        .collect();
    type Shape = (&'static str, Vec<Vec<f64>>, Option<f64>);
    let shapes: Vec<Shape> = vec![
        ("cube-3d", cube(3), Some(1.0)),
        ("cube-4d", cube(4), Some(1.0)),
        ("simplex-4d", simplex(4), Some(1.0 / 24.0)),
        ("simplex-6d", simplex(6), Some(1.0 / 720.0)),
        ("supermarq-features-6d", feature_cloud, None),
    ];
    let headers: Vec<String> = ["Shape", "Exact", "MC 1k", "MC 10k", "Analytic"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for (name, pts, analytic) in &shapes {
        let exact = hull_volume(pts);
        let mc1k = monte_carlo_volume(pts, 1_000, 5);
        let mc10k = monte_carlo_volume(pts, 10_000, 6);
        rows.push(vec![
            name.to_string(),
            format!("{exact:.4e}"),
            format!("{mc1k:.4e}"),
            format!("{mc10k:.4e}"),
            analytic.map_or("-".to_string(), |v| format!("{v:.4e}")),
        ]);
    }
    println!("{}", render_table(&headers, &rows));
    println!("Expected: the Monte-Carlo columns converge to the exact column as");
    println!("samples grow, and both match the analytic volumes where known.");
}
