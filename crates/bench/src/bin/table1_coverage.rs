//! Regenerates **Table I**: feature-space coverage (convex-hull volume) of
//! six benchmark suites.
//!
//! Paper values for reference: SupermarQ 9.0e-03 (52 circuits), QASMBench
//! 4.0e-03 (62), Synthetic 1.4e-03 (6), CBG2021 1.6e-08 (10476), TriQ
//! 4.1e-14 (12), PPL+2020 1.0e-15 (9). The tiny TriQ/PPL volumes are qhull
//! joggle artifacts of degenerate point sets; we report both the exact
//! volume (0 when degenerate) and a joggled volume mirroring qhull `QJ`.

use supermarq::coverage::{coverage_of_features, synthetic_suite_features};
use supermarq::FeatureVector;
use supermarq_bench::render_table;
use supermarq_circuit::Circuit;
use supermarq_geometry::hull_volume_joggled;
use supermarq_suites::{
    cbg2021_suite, ppl2020_suite, qasmbench_suite, supermarq_suite, triq_suite,
};

fn features_of(circuits: &[Circuit]) -> Vec<FeatureVector> {
    circuits.iter().map(FeatureVector::of).collect()
}

fn main() {
    println!("== Table I: coverage comparison of benchmark suites ==\n");
    let suites: Vec<(&str, Vec<FeatureVector>, &str)> = vec![
        (
            "SupermarQ (this work)",
            features_of(&supermarq_suite()),
            "9.0e-03",
        ),
        ("QASMBench", features_of(&qasmbench_suite()), "4.0e-03"),
        ("Synthetic", synthetic_suite_features(), "1.4e-03"),
        ("CBG2021", features_of(&cbg2021_suite()), "1.6e-08"),
        ("TriQ", features_of(&triq_suite()), "4.1e-14"),
        ("PPL+2020", features_of(&ppl2020_suite()), "1.0e-15"),
    ];
    let mut rows = Vec::new();
    for (name, features, paper) in &suites {
        let points: Vec<Vec<f64>> = features.iter().map(FeatureVector::to_vec).collect();
        let exact = coverage_of_features(features);
        let joggled = hull_volume_joggled(&points, 1e-3, 2022);
        rows.push(vec![
            name.to_string(),
            format!("{:.1e}", exact),
            format!("{:.1e}", joggled),
            format!("{}", features.len()),
            paper.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Suite".into(),
                "Volume (exact)".into(),
                "Volume (joggled)".into(),
                "Circuits".into(),
                "Paper volume".into()
            ],
            &rows
        )
    );
    println!("Expected shape: SupermarQ > QASMBench (paper ratio 2.25) and both");
    println!("dwarf CBG2021/TriQ/PPL+2020, which are degenerate up to joggle.");
    println!("Known deviation: the Synthetic simplex (exactly 1/6! = 1.39e-3, as");
    println!("in the paper) is not strictly beaten here because its unit-vector");
    println!("corners are unphysical (e.g. Parallelism=1 requires Liveness=1)");
    println!("under this repo's conservative feature definitions; see");
    println!("EXPERIMENTS.md for the discussion.");
}
