//! Criterion micro-benchmarks of every substrate the reproduction is built
//! on: statevector simulation, specialized gate kernels, noisy trajectory
//! execution (sequential vs. parallel), transpilation, Clifford synthesis,
//! stabilizer simulation, convex-hull geometry, and feature extraction.
//!
//! Run with `cargo bench -p supermarq-bench`; a machine-readable summary
//! is written to `BENCH_sim.json` at the repo root. CI runs
//! `cargo bench -- --test` (smoke mode), which executes every routine once
//! without timing and leaves `BENCH_sim.json` untouched.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;

use supermarq::benchmarks::{GhzBenchmark, MerminBellBenchmark, QaoaVanillaBenchmark};
use supermarq::CircuitFamily;
use supermarq::FeatureVector;
use supermarq_circuit::{Circuit, Gate};
use supermarq_clifford::{diagonalize, StabilizerSimulator};
use supermarq_device::Device;
use supermarq_geometry::{monte_carlo_volume, ConvexHull};
use supermarq_pauli::{mermin_operator, tfim_hamiltonian};
use supermarq_sim::{krylov, Executor, NoiseModel, StateVector};
use supermarq_transpile::Transpiler;

fn ghz_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c.measure_all();
    c
}

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_ghz");
    for n in [10usize, 14, 18, 20, 22, 24, 26] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let circuit = ghz_circuit(n);
            b.iter(|| black_box(Executor::final_state(&circuit).expect("unitary circuit")));
        });
    }
    group.finish();
}

/// Intra-statevector scaling: a noiseless 22-qubit GHZ `final_state`
/// under explicit pools of 1/2/4/8 threads. Shot-level fan-out has a
/// single trajectory to work with here, so any speedup comes from the
/// chunked gate kernels splitting the amplitude array itself; the
/// per-thread-count ids feed the "segments vs speedup" table in
/// `BENCH_sim.json`.
fn bench_intra_statevector(c: &mut Criterion) {
    let circuit = ghz_circuit(22);
    let mut group = c.benchmark_group("intra_statevector_ghz22");
    for threads in [1usize, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("fixed-size pool");
        group.bench_with_input(BenchmarkId::new("threads", threads), &pool, |b, pool| {
            b.iter(|| {
                pool.install(|| {
                    black_box(Executor::final_state(&circuit).expect("unitary circuit"))
                })
            });
        });
    }
    group.finish();
}

/// Specialized gate kernels vs. the dense-matrix fallback on an 18-qubit
/// state. `apply_gate` dispatches diagonal/permutation gates to in-place
/// kernels; `apply_matrix1`/`apply_matrix2` force the generic path, so the
/// `*_dense` ids are the baselines the kernels are measured against.
fn bench_kernels(c: &mut Criterion) {
    const N: usize = 18;
    let mut base = StateVector::zero_state(N);
    for q in 0..N {
        base.apply_gate(&Gate::H, &[q]);
    }
    let mut group = c.benchmark_group("kernels_18q");
    let one_q: &[(&str, Gate)] = &[
        ("x_kernel", Gate::X),
        ("z_kernel", Gate::Z),
        ("t_kernel", Gate::T),
        ("rz_kernel", Gate::Rz(0.3)),
    ];
    for (id, gate) in one_q {
        let mut psi = base.clone();
        group.bench_function(id, |b| {
            b.iter(|| {
                psi.apply_gate(gate, &[9]);
                black_box(&psi);
            });
        });
    }
    {
        let m = Gate::Z.matrix1().expect("Z has a 1q matrix");
        let mut psi = base.clone();
        group.bench_function("z_dense", |b| {
            b.iter(|| {
                psi.apply_matrix1(&m, 9);
                black_box(&psi);
            });
        });
    }
    let two_q: &[(&str, Gate)] = &[
        ("cx_kernel", Gate::Cx),
        ("cz_kernel", Gate::Cz),
        ("swap_kernel", Gate::Swap),
        ("rzz_kernel", Gate::Rzz(0.3)),
    ];
    for (id, gate) in two_q {
        let mut psi = base.clone();
        group.bench_function(id, |b| {
            b.iter(|| {
                psi.apply_gate(gate, &[3, 12]);
                black_box(&psi);
            });
        });
    }
    {
        let m = Gate::Cx.matrix2().expect("CX has a 2q matrix");
        let mut psi = base.clone();
        group.bench_function("cx_dense", |b| {
            b.iter(|| {
                psi.apply_matrix2(&m, 3, 12);
                black_box(&psi);
            });
        });
    }
    {
        let psi = base.clone();
        group.bench_function("probability_of_one", |b| {
            b.iter(|| black_box(psi.probability_of_one(9)));
        });
    }
    group.finish();
}

/// Shot throughput on a 16-qubit noisy GHZ benchmark: one worker thread
/// (the sequential baseline) vs. the ambient rayon pool. The speedup
/// between the two ids is exported to `BENCH_sim.json`.
fn bench_trajectory_throughput(c: &mut Criterion) {
    const SHOTS: usize = 100;
    let circuit = ghz_circuit(16);
    let exec = Executor::new(NoiseModel::uniform_depolarizing(0.002));
    let mut group = c.benchmark_group("trajectory_throughput");
    let sequential = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("single-thread pool");
    group.bench_function("ghz16_noisy_100shots_seq1", |b| {
        b.iter(|| sequential.install(|| black_box(exec.run(&circuit, SHOTS, 7))));
    });
    group.bench_function("ghz16_noisy_100shots_par", |b| {
        b.iter(|| black_box(exec.run(&circuit, SHOTS, 7)));
    });
    group.finish();
}

fn bench_trajectory_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("noisy_trajectories_ghz6");
    let circuit = ghz_circuit(6);
    for shots in [100usize, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(shots), &shots, |b, &shots| {
            let exec = Executor::new(NoiseModel::uniform_depolarizing(0.01));
            b.iter(|| black_box(exec.run(&circuit, shots, 7)));
        });
    }
    group.finish();
}

fn bench_transpiler(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpile");
    let vanilla = QaoaVanillaBenchmark::new(6, 1).circuits().remove(0);
    for device in [Device::ibm_montreal(), Device::ionq()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(device.name().to_string()),
            &device,
            |b, device| {
                let t = Transpiler::for_device(device);
                b.iter(|| black_box(t.run(&vanilla).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_clifford(c: &mut Criterion) {
    c.bench_function("mermin_diagonalize_n8", |b| {
        let m = mermin_operator(8);
        let strings: Vec<_> = m.iter().map(|(_, p)| p.clone()).collect();
        b.iter(|| black_box(diagonalize(&strings).unwrap()));
    });
    c.bench_function("chp_ghz_200q", |b| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        b.iter(|| {
            let mut sim = StabilizerSimulator::new(200);
            sim.h(0);
            for q in 0..199 {
                sim.cx(q, q + 1);
            }
            let mut rng = StdRng::seed_from_u64(1);
            // measure_all is mask-limited to 64 qubits; measure per qubit.
            let mut parity = false;
            for q in 0..200 {
                parity ^= sim.measure(q, &mut rng);
            }
            black_box(parity)
        });
    });
}

fn bench_geometry(c: &mut Criterion) {
    let suite = supermarq_suites::supermarq_suite();
    let points: Vec<Vec<f64>> = suite
        .iter()
        .map(|circ| FeatureVector::of(circ).to_vec())
        .collect();
    c.bench_function("hull_volume_6d_52pts", |b| {
        b.iter(|| black_box(ConvexHull::new(&points).unwrap().volume()));
    });
    c.bench_function("monte_carlo_volume_3d", |b| {
        let pts: Vec<Vec<f64>> = (0..8)
            .map(|m| {
                (0..3)
                    .map(|i| if m >> i & 1 == 1 { 1.0 } else { 0.0 })
                    .collect()
            })
            .collect();
        b.iter(|| black_box(monte_carlo_volume(&pts, 200, 3)));
    });
}

fn bench_features(c: &mut Criterion) {
    c.bench_function("features_ghz_1000q", |b| {
        let circuit = GhzBenchmark::new(1000).circuits().remove(0);
        b.iter(|| black_box(FeatureVector::of(&circuit)));
    });
    c.bench_function("features_mermin_6q", |b| {
        let circuit = MerminBellBenchmark::new(6).circuits().remove(0);
        b.iter(|| black_box(FeatureVector::of(&circuit)));
    });
}

fn bench_krylov(c: &mut Criterion) {
    c.bench_function("krylov_tfim_evolution_10q", |b| {
        let h = tfim_hamiltonian(10, 1.0, 1.0);
        let psi = StateVector::zero_state(10);
        b.iter(|| black_box(krylov::evolve(&h, &psi, 0.5, 20, 2)));
    });
}

/// Warm-hit quantiles from the serve daemon's own latency histogram,
/// captured after the round-trip bench: (samples, p50 ns, p99 ns).
static SERVE_WARM_HIT: std::sync::OnceLock<(u64, u64, u64)> = std::sync::OnceLock::new();

/// Serve-daemon warm-hit latency: a pre-warmed store behind a loopback
/// TCP daemon, measured as full client round-trips for a `run` request
/// answered entirely from the cache. The executor is poisoned so a cold
/// path would fail loudly. The server-side histogram supplies the
/// p50/p99 exported to `BENCH_sim.json`.
fn bench_serve_warm_hit(c: &mut Criterion) {
    use supermarq_serve::{Client, ServeConfig, Server};
    use supermarq_store::{RunOutcome, RunSpec, Store, SweepEngine};

    let dir = std::env::temp_dir().join(format!("supermarq-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).expect("bench store");
    let spec = RunSpec::new(
        "ghz",
        vec![("size".to_string(), "3".to_string())],
        "IonQ",
        100,
        2,
        1,
    );
    SweepEngine::new(&store).run_job(&spec, |s| {
        Ok(RunOutcome {
            scores: vec![0.5; s.repetitions as usize],
            swap_count: 0,
            two_qubit_gates: 2,
        })
    });
    let server = Server::bind(
        ServeConfig::default(),
        store,
        std::sync::Arc::new(|_: &RunSpec| Err("warm bench must never execute".into())),
    )
    .expect("loopback daemon");
    let mut client = Client::connect(server.addr()).expect("loopback client");
    c.bench_function("serve_warm_hit/run_round_trip", |b| {
        b.iter(|| black_box(client.run(&spec).expect("warm hit")));
    });
    let metrics = server.metrics();
    let _ = SERVE_WARM_HIT.set((
        metrics.warm_hit_ns.count(),
        metrics.warm_hit_ns.quantile(0.5),
        metrics.warm_hit_ns.quantile(0.99),
    ));
    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_statevector,
    bench_intra_statevector,
    bench_kernels,
    bench_trajectory_throughput,
    bench_trajectory_execution,
    bench_transpiler,
    bench_clifford,
    bench_geometry,
    bench_features,
    bench_krylov,
    bench_serve_warm_hit
);

/// Best-effort `git describe --always --dirty` for the bench metadata;
/// `null` when git is unavailable or the tree is not a repository.
fn git_describe() -> String {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output();
    match out {
        Ok(out) if out.status.success() => {
            let desc = String::from_utf8_lossy(&out.stdout).trim().to_string();
            if desc.is_empty() {
                "null".to_string()
            } else {
                format!("\"{}\"", desc.replace('"', "'"))
            }
        }
        _ => "null".to_string(),
    }
}

/// Serializes the recorded measurements to `BENCH_sim.json` at the repo
/// root (manual formatting; the workspace has no serde). Skipped in
/// `--test` smoke mode so CI never clobbers real numbers.
fn export_bench_json() {
    let measurements = criterion::measurements();
    let lookup = |id: &str| {
        measurements
            .iter()
            .find(|(name, _)| name == id)
            .map(|&(_, nanos)| nanos)
    };
    let seq = lookup("trajectory_throughput/ghz16_noisy_100shots_seq1");
    let par = lookup("trajectory_throughput/ghz16_noisy_100shots_par");
    let speedup = match (seq, par) {
        (Some(s), Some(p)) if p > 0.0 => format!("{:.3}", s / p),
        _ => "null".to_string(),
    };
    let rayon_env = match std::env::var("RAYON_NUM_THREADS") {
        Ok(v) => format!("\"{}\"", v.replace('"', "'")),
        Err(_) => "null".to_string(),
    };
    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs().to_string())
        .unwrap_or_else(|_| "null".to_string());
    let mut json = String::from("{\n");
    json.push_str("  \"source\": \"cargo bench -p supermarq-bench (benches/substrate.rs)\",\n");
    json.push_str("  \"metadata\": {\n");
    json.push_str(&format!(
        "    \"rayon_threads\": {},\n",
        rayon::current_num_threads()
    ));
    json.push_str(&format!("    \"rayon_num_threads_env\": {rayon_env},\n"));
    json.push_str(&format!("    \"git_describe\": {},\n", git_describe()));
    json.push_str(&format!("    \"timestamp_unix_secs\": {timestamp}\n"));
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"rayon_threads\": {},\n",
        rayon::current_num_threads()
    ));
    json.push_str(&format!(
        "  \"trajectory_speedup_seq1_vs_pool\": {speedup},\n"
    ));
    // Segments-vs-speedup table: how the chunked kernels scale when the
    // only parallelism available is *inside* one statevector.
    json.push_str("  \"intra_statevector_ghz22\": [\n");
    let base = lookup("intra_statevector_ghz22/threads/1");
    let rows: Vec<String> = [1usize, 2, 4, 8]
        .iter()
        .filter_map(|&threads| {
            let nanos = lookup(&format!("intra_statevector_ghz22/threads/{threads}"))?;
            let speedup = match base {
                Some(b) if nanos > 0.0 => format!("{:.3}", b / nanos),
                _ => "null".to_string(),
            };
            Some(format!(
                "    {{ \"segments\": {threads}, \"ns_per_iter\": {nanos:.1}, \"speedup_vs_1\": {speedup} }}"
            ))
        })
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ],\n");
    // Daemon warm-hit latency: full TCP round-trips from the client's
    // side (ns_per_iter below) plus the server-side histogram quantiles.
    json.push_str("  \"serve_warm_hit\": ");
    match SERVE_WARM_HIT.get() {
        Some(&(samples, p50, p99)) => json.push_str(&format!(
            "{{ \"samples\": {samples}, \"p50_ns\": {p50}, \"p99_ns\": {p99} }},\n"
        )),
        None => json.push_str("null,\n"),
    }
    json.push_str("  \"measurements_ns_per_iter\": {\n");
    let body: Vec<String> = measurements
        .iter()
        .map(|(id, nanos)| format!("    \"{}\": {:.1}", id.replace('"', "'"), nanos))
        .collect();
    json.push_str(&body.join(",\n"));
    json.push_str("\n  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    match std::fs::write(path, json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(err) => eprintln!("\nfailed to write {path}: {err}"),
    }
}

/// `BENCH_ASSERT=1` turns the run into a pass/fail perf gate. Currently
/// one invariant: the dense two-qubit path must stay within 2.5x of the
/// specialized CX kernel on the 18-qubit state (the O(4*2^n) full scan it
/// replaced sat around 4.6x). Returns `false` — and `main` exits
/// nonzero — when the ratio regresses.
fn run_assertions() -> bool {
    let measurements = criterion::measurements();
    let lookup = |id: &str| {
        measurements
            .iter()
            .find(|(name, _)| name == id)
            .map(|&(_, nanos)| nanos)
    };
    let (Some(dense), Some(kernel)) = (
        lookup("kernels_18q/cx_dense"),
        lookup("kernels_18q/cx_kernel"),
    ) else {
        eprintln!("BENCH_ASSERT: kernels_18q/cx_dense and cx_kernel were not measured");
        eprintln!("BENCH_ASSERT: run with a filter that includes kernels_18q");
        return false;
    };
    if kernel <= 0.0 {
        eprintln!("BENCH_ASSERT: cx_kernel reported a non-positive time");
        return false;
    }
    let ratio = dense / kernel;
    let ok = ratio <= 2.5;
    println!(
        "\nBENCH_ASSERT: cx_dense/cx_kernel = {ratio:.2} (limit 2.5) -> {}",
        if ok { "ok" } else { "FAIL" }
    );
    ok
}

fn main() {
    benches();
    if criterion::is_test_mode() {
        return;
    }
    let asserting = std::env::var("BENCH_ASSERT").is_ok_and(|v| v == "1");
    if asserting && !run_assertions() {
        std::process::exit(1);
    }
    // Assert runs are usually filtered, and filtered runs are partial
    // either way: never let them clobber the full BENCH_sim.json.
    if asserting || criterion::has_filter() {
        println!("skipping BENCH_sim.json export (partial or asserting run)");
        return;
    }
    export_bench_json();
}
