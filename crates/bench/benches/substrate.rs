//! Criterion micro-benchmarks of every substrate the reproduction is built
//! on: statevector simulation, noisy trajectory execution, transpilation,
//! Clifford synthesis, stabilizer simulation, convex-hull geometry, and
//! feature extraction.
//!
//! Run with `cargo bench -p supermarq-bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use supermarq::benchmarks::{GhzBenchmark, MerminBellBenchmark, QaoaVanillaBenchmark};
use supermarq::Benchmark;
use supermarq::FeatureVector;
use supermarq_circuit::Circuit;
use supermarq_clifford::{diagonalize, StabilizerSimulator};
use supermarq_device::Device;
use supermarq_geometry::{monte_carlo_volume, ConvexHull};
use supermarq_pauli::{mermin_operator, tfim_hamiltonian};
use supermarq_sim::{krylov, Executor, NoiseModel, StateVector};
use supermarq_transpile::Transpiler;

fn ghz_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c.measure_all();
    c
}

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_ghz");
    for n in [10usize, 14, 18] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let circuit = ghz_circuit(n);
            b.iter(|| black_box(Executor::final_state(&circuit)));
        });
    }
    group.finish();
}

fn bench_trajectory_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("noisy_trajectories_ghz6");
    let circuit = ghz_circuit(6);
    for shots in [100usize, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(shots), &shots, |b, &shots| {
            let exec = Executor::new(NoiseModel::uniform_depolarizing(0.01));
            b.iter(|| black_box(exec.run(&circuit, shots, 7)));
        });
    }
    group.finish();
}

fn bench_transpiler(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpile");
    let vanilla = QaoaVanillaBenchmark::new(6, 1).circuits().remove(0);
    for device in [Device::ibm_montreal(), Device::ionq()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(device.name().to_string()),
            &device,
            |b, device| {
                let t = Transpiler::for_device(device);
                b.iter(|| black_box(t.run(&vanilla).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_clifford(c: &mut Criterion) {
    c.bench_function("mermin_diagonalize_n8", |b| {
        let m = mermin_operator(8);
        let strings: Vec<_> = m.iter().map(|(_, p)| p.clone()).collect();
        b.iter(|| black_box(diagonalize(&strings).unwrap()));
    });
    c.bench_function("chp_ghz_200q", |b| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        b.iter(|| {
            let mut sim = StabilizerSimulator::new(200);
            sim.h(0);
            for q in 0..199 {
                sim.cx(q, q + 1);
            }
            let mut rng = StdRng::seed_from_u64(1);
            // measure_all is mask-limited to 64 qubits; measure per qubit.
            let mut parity = false;
            for q in 0..200 {
                parity ^= sim.measure(q, &mut rng);
            }
            black_box(parity)
        });
    });
}

fn bench_geometry(c: &mut Criterion) {
    let suite = supermarq_suites::supermarq_suite();
    let points: Vec<Vec<f64>> = suite
        .iter()
        .map(|circ| FeatureVector::of(circ).to_vec())
        .collect();
    c.bench_function("hull_volume_6d_52pts", |b| {
        b.iter(|| black_box(ConvexHull::new(&points).unwrap().volume()));
    });
    c.bench_function("monte_carlo_volume_3d", |b| {
        let pts: Vec<Vec<f64>> = (0..8)
            .map(|m| {
                (0..3)
                    .map(|i| if m >> i & 1 == 1 { 1.0 } else { 0.0 })
                    .collect()
            })
            .collect();
        b.iter(|| black_box(monte_carlo_volume(&pts, 200, 3)));
    });
}

fn bench_features(c: &mut Criterion) {
    c.bench_function("features_ghz_1000q", |b| {
        let circuit = GhzBenchmark::new(1000).circuits().remove(0);
        b.iter(|| black_box(FeatureVector::of(&circuit)));
    });
    c.bench_function("features_mermin_6q", |b| {
        let circuit = MerminBellBenchmark::new(6).circuits().remove(0);
        b.iter(|| black_box(FeatureVector::of(&circuit)));
    });
}

fn bench_krylov(c: &mut Criterion) {
    c.bench_function("krylov_tfim_evolution_10q", |b| {
        let h = tfim_hamiltonian(10, 1.0, 1.0);
        let psi = StateVector::zero_state(10);
        b.iter(|| black_box(krylov::evolve(&h, &psi, 0.5, 20, 2)));
    });
}

criterion_group!(
    benches,
    bench_statevector,
    bench_trajectory_execution,
    bench_transpiler,
    bench_clifford,
    bench_geometry,
    bench_features,
    bench_krylov
);
criterion_main!(benches);
