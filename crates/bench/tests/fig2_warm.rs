//! Warm-cache regression for the Fig. 2 sweep: after the spec-schema
//! migration (placement + pipeline strings replacing the legacy
//! optimize/verify flags), a store populated by one full Fig. 2 pass must
//! still serve the *entire* grid from cache — 185 hits, zero executions.
//!
//! The executor stand-ins make the guarantee airtight: the cold pass uses
//! a deterministic fake (no simulator), and the warm pass uses an executor
//! that panics if called at all.

use std::sync::atomic::{AtomicUsize, Ordering};

use supermarq::spec::benchmark_from_params;
use supermarq_bench::{figure2_points, shots_for};
use supermarq_device::Device;
use supermarq_store::{RunOutcome, RunSpec, Store, SweepEngine};

/// The exact job list `fig2_scores` submits: every Fig. 2 grid point on
/// every Table II device it fits on, with the paper's shot budgets.
fn fig2_specs() -> Vec<RunSpec> {
    let devices = Device::all_paper_devices();
    let mut specs = Vec::new();
    for (_, points, _) in figure2_points() {
        for (id, params) in points {
            let bench = benchmark_from_params(&id, &params).unwrap();
            for device in &devices {
                if bench.num_qubits() <= device.num_qubits() {
                    specs.push(RunSpec::new(
                        id.clone(),
                        params.clone(),
                        device.name(),
                        shots_for(device),
                        3,
                        1,
                    ));
                }
            }
        }
    }
    specs
}

#[test]
fn fig2_rerun_is_185_hits_and_zero_simulations() {
    let dir = std::env::temp_dir().join(format!("supermarq-fig2-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).unwrap();
    let specs = fig2_specs();
    assert_eq!(specs.len(), 185, "Fig. 2 grid is 185 fitting cells");

    // Cold pass: a deterministic executor stand-in populates the store
    // without touching the simulator.
    let executions = AtomicUsize::new(0);
    let engine = SweepEngine::new(&store);
    let report = engine.run(&specs, |spec| {
        executions.fetch_add(1, Ordering::Relaxed);
        Ok(RunOutcome {
            scores: (0..spec.repetitions)
                .map(|r| (spec.shots + spec.seed + r) as f64 / 10_000.0)
                .collect(),
            swap_count: spec.shots % 7,
            two_qubit_gates: spec.shots % 11,
        })
    });
    assert_eq!(report.stats.misses, 185);
    assert_eq!(executions.load(Ordering::Relaxed), 185);

    // Warm pass: every cell must come from the store — the executor
    // panics if the cache misses even once.
    let report = engine.run(&specs, |spec| -> Result<RunOutcome, String> {
        panic!("warm pass executed {}", spec.content_hash())
    });
    assert_eq!(report.stats.hits, 185, "warm Fig. 2 pass must be all-hits");
    assert_eq!(report.stats.misses, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
