//! Byte-identity guard for the benchmark-registry refactor: the store
//! cache keys of every Fig. 2 grid cell (and the standard-suite specs
//! behind Fig. 3) are pinned to the exact SHA-256 values produced before
//! the refactor. If any of these change, every cache on every machine
//! silently invalidates and fig2/fig3 outputs shift — bump
//! `SCHEMA_VERSION` instead of editing the constants.

use supermarq::registry::BenchmarkRegistry;
use supermarq_bench::{figure2_points, shots_for};
use supermarq_device::Device;
use supermarq_store::RunSpec;

/// Combined SHA-256 over the canonical strings of every Fig. 2 cell
/// spec, captured on the pre-refactor tree (hard-coded factory match).
const FIG2_COMBINED: &str = "b85ec95886a9c3213b9dac7436d684724908b89e31ee86b06d27a274ad70b270";

/// Number of Fig. 2 cells (8 benchmarks x sizes x 8 devices as the
/// harness laid them out pre-refactor).
const FIG2_CELLS: usize = 200;

/// Content hashes of the first eight cells (the GHZ row), pre-refactor.
const FIRST_GHZ_HASHES: [&str; 8] = [
    "6e60ec3cf117aaee0bbe1919aedd3c024501508dd0f7e1ea02d22f2907010a0a",
    "4edf03a6aa3583d32e7e2bceb5b1bf27cfa40f07d6897862ad3e4fc3faff6629",
    "a2fb35318a8d9e7e6b622bbd58a708b44848fcd368f15e50a6f3a4df4cbd0dd6",
    "012d5feee2d838c649dd03726ca5e250747bfa5acd3f5c776fa232a1261f4812",
    "67a4a9823122006bf6a35edba89bb89bfc4976f61a7cbd2cdaa5c5ac4f415cae",
    "76e9c2872fd5fce5a10d458e47c1423d4f7b901b0dc602a6b7ce305e312e1396",
    "217de2554dc86aee96e7bf0ed2476e359da1da71dc43994e7a2cdf3257a8b0e2",
    "7cc450441f0b2157190f0b25174accad8f1aa5a50470c2c9ad5a37a2a5242bbc",
];

/// Every Fig. 2 cell spec, exactly as `fig2_scores` builds them.
fn fig2_specs() -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for (_, points, _) in figure2_points() {
        for (id, params) in points {
            for device in Device::all_paper_devices() {
                specs.push(RunSpec::new(
                    id.clone(),
                    params.clone(),
                    device.name(),
                    shots_for(&device),
                    3,
                    7,
                ));
            }
        }
    }
    specs
}

/// The tentpole acceptance gate: after routing `benchmark_from_params`
/// through the registry, every pre-existing cache key is byte-identical.
#[test]
fn fig2_cache_keys_are_byte_identical_to_pre_registry_baseline() {
    let specs = fig2_specs();
    assert_eq!(specs.len(), FIG2_CELLS, "Fig. 2 grid shape changed");
    let mut all = String::new();
    for s in &specs {
        all.push_str(&s.canonical_string());
    }
    assert_eq!(
        supermarq_store::hash::sha256_hex(all.as_bytes()),
        FIG2_COMBINED,
        "canonical spec encoding drifted — every store cache key changes"
    );
    for (s, expected) in specs.iter().zip(FIRST_GHZ_HASHES) {
        assert_eq!(s.benchmark, "ghz");
        assert_eq!(s.content_hash(), expected, "{}", s.canonical_string());
    }
}

/// Every Fig. 2 cell still resolves through the registry — the specs are
/// not just byte-stable but executable.
#[test]
fn fig2_specs_still_build_through_the_registry() {
    let registry = BenchmarkRegistry::builtin();
    for s in fig2_specs() {
        registry
            .build(&s.benchmark, &s.params)
            .unwrap_or_else(|e| panic!("{}: {e}", s.benchmark));
    }
}

#[test]
#[ignore = "baseline dump helper"]
fn dump_baseline() {
    let specs = fig2_specs();
    let mut all = String::new();
    for s in &specs {
        all.push_str(&s.canonical_string());
    }
    println!("cells={}", specs.len());
    println!(
        "combined={}",
        supermarq_store::hash::sha256_hex(all.as_bytes())
    );
    for s in specs.iter().take(8) {
        println!("{} {}", s.benchmark, s.content_hash());
    }
}
