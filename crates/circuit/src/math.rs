//! A minimal complex-number type used across the workspace.
//!
//! The workspace is restricted to a small set of offline dependencies, so we
//! implement the tiny slice of complex arithmetic that a statevector
//! simulator and gate-matrix algebra require, rather than pulling in an
//! external crate.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// # Example
///
/// ```
/// use supermarq_circuit::C64;
///
/// let i = C64::I;
/// assert_eq!(i * i, C64::new(-1.0, 0.0));
/// assert!((C64::new(3.0, 4.0).norm() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates the unit-modulus number `e^{i theta}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        C64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Returns `true` if both parts are within `tol` of `other`.
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: C64) -> C64 {
        let d = rhs.norm_sqr();
        C64 {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_constants() {
        assert_eq!(C64::ZERO + C64::ONE, C64::ONE);
        assert_eq!(C64::new(1.0, 2.0).re, 1.0);
        assert_eq!(C64::real(3.0), C64::new(3.0, 0.0));
        assert_eq!(C64::from(2.5), C64::new(2.5, 0.0));
    }

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(2.0, -3.0);
        let w = C64::new(-1.0, 0.5);
        assert_eq!(z + w, C64::new(1.0, -2.5));
        assert_eq!(z - w, C64::new(3.0, -3.5));
        assert!((z * w / w).approx_eq(z, 1e-12));
        assert_eq!(-z, C64::new(-2.0, 3.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(C64::I * C64::I, C64::new(-1.0, 0.0));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let z = C64::cis(theta);
            assert!((z.norm() - 1.0).abs() < 1e-12);
            assert!(
                (z.arg() - theta).rem_euclid(2.0 * std::f64::consts::PI) < 1e-9
                    || (theta - z.arg()).rem_euclid(2.0 * std::f64::consts::PI) < 1e-9
            );
        }
    }

    #[test]
    fn conj_and_norm() {
        let z = C64::new(3.0, 4.0);
        assert_eq!(z.conj(), C64::new(3.0, -4.0));
        assert!((z.norm() - 5.0).abs() < 1e-12);
        assert!(((z * z.conj()).re - 25.0).abs() < 1e-12);
    }

    #[test]
    fn assign_ops_and_sum() {
        let mut z = C64::ONE;
        z += C64::I;
        z -= C64::ONE;
        z *= C64::new(0.0, -1.0);
        assert!(z.approx_eq(C64::ONE, 1e-12));
        let total: C64 = (0..4).map(|_| C64::new(0.25, 0.0)).sum();
        assert!(total.approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2i");
    }
}
