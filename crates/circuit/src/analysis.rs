//! Structural circuit analyses: moment (layer) scheduling, liveness,
//! and the dependency-DAG critical path.
//!
//! These are the quantities the SupermarQ feature vectors (paper Sec. III-B)
//! are computed from: circuit depth `d`, the liveness matrix `A`, the number
//! of two-qubit interactions on the critical path `n_{e_d}`, and the number
//! of layers containing mid-circuit measurement/reset operations `l_mcm`.

use crate::circuit::Circuit;
use crate::gate::GateKind;

/// An as-soon-as-possible (ASAP) partition of a circuit into layers
/// ("moments" in Cirq terminology).
///
/// Every instruction is placed in the earliest layer in which all of its
/// operand qubits are free. Barriers synchronize their operand qubits but do
/// not occupy a layer and are not recorded.
///
/// # Example
///
/// ```
/// use supermarq_circuit::{Circuit, CircuitLayers};
///
/// let mut c = Circuit::new(3);
/// c.h(0).h(1).cx(0, 1).h(2);
/// let layers = CircuitLayers::of(&c);
/// assert_eq!(layers.depth(), 2); // {h0, h1, h2} then {cx}
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitLayers {
    /// `layers[i]` holds indices into `circuit.instructions()` scheduled at
    /// layer `i`.
    layers: Vec<Vec<usize>>,
    num_qubits: usize,
}

impl CircuitLayers {
    /// Computes the ASAP layering of `circuit`.
    pub fn of(circuit: &Circuit) -> Self {
        let n = circuit.num_qubits();
        // frontier[q] = first layer index at which qubit q is free.
        let mut frontier = vec![0usize; n];
        let mut layers: Vec<Vec<usize>> = Vec::new();
        for (idx, instr) in circuit.iter().enumerate() {
            if instr.gate.kind() == GateKind::Barrier {
                let sync = instr.qubits.iter().map(|&q| frontier[q]).max().unwrap_or(0);
                for &q in &instr.qubits {
                    frontier[q] = sync;
                }
                continue;
            }
            let layer = instr.qubits.iter().map(|&q| frontier[q]).max().unwrap_or(0);
            if layer == layers.len() {
                layers.push(Vec::new());
            }
            layers[layer].push(idx);
            for &q in &instr.qubits {
                frontier[q] = layer + 1;
            }
        }
        CircuitLayers {
            layers,
            num_qubits: n,
        }
    }

    /// The circuit depth `d`: the number of non-empty layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Number of qubits of the underlying circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Instruction indices scheduled at each layer, in layer order.
    pub fn layers(&self) -> &[Vec<usize>] {
        &self.layers
    }

    /// Number of layers containing a *mid-circuit* measurement or reset —
    /// the `l_mcm` of Eq. 6.
    ///
    /// A measurement or reset is mid-circuit when its qubit is operated on
    /// again later in the program; a terminal readout is not. The GHZ
    /// benchmark, which only measures at the very end, has `l_mcm = 0`,
    /// while the error-correction proxy-applications, which measure and
    /// reset ancillas between rounds, have `l_mcm > 0`.
    pub fn mid_circuit_measurement_layers(&self, circuit: &Circuit) -> usize {
        let instrs = circuit.instructions();
        // last_op[q] = index of the last non-barrier instruction touching q.
        let mut last_op = vec![usize::MAX; circuit.num_qubits()];
        for (i, instr) in instrs.iter().enumerate() {
            if instr.gate.kind() == GateKind::Barrier {
                continue;
            }
            for &q in &instr.qubits {
                last_op[q] = i;
            }
        }
        self.layers
            .iter()
            .filter(|layer| {
                layer.iter().any(|&i| {
                    matches!(
                        instrs[i].gate.kind(),
                        GateKind::Measurement | GateKind::Reset
                    ) && instrs[i].qubits.iter().any(|&q| last_op[q] > i)
                })
            })
            .count()
    }
}

impl Circuit {
    /// The circuit depth: number of layers in the ASAP schedule.
    ///
    /// Convenience for `CircuitLayers::of(self).depth()`.
    ///
    /// # Example
    ///
    /// ```
    /// use supermarq_circuit::Circuit;
    ///
    /// let mut c = Circuit::new(2);
    /// c.h(0).h(1).cx(0, 1);
    /// assert_eq!(c.depth(), 2);
    /// ```
    pub fn depth(&self) -> usize {
        CircuitLayers::of(self).depth()
    }
}

/// The qubit-by-layer liveness matrix `A` of Eq. 5: `A[q][t] = 1` when qubit
/// `q` participates in an operation during layer `t`.
#[derive(Debug, Clone, PartialEq)]
pub struct LivenessMatrix {
    live: Vec<Vec<bool>>, // [qubit][layer]
}

impl LivenessMatrix {
    /// Builds the liveness matrix from a circuit's ASAP layering.
    pub fn of(circuit: &Circuit) -> Self {
        let layers = CircuitLayers::of(circuit);
        Self::from_layers(circuit, &layers)
    }

    /// Builds the liveness matrix from a precomputed layering.
    pub fn from_layers(circuit: &Circuit, layers: &CircuitLayers) -> Self {
        let n = circuit.num_qubits();
        let d = layers.depth();
        let mut live = vec![vec![false; d]; n];
        let instrs = circuit.instructions();
        for (t, layer) in layers.layers().iter().enumerate() {
            for &i in layer {
                for &q in &instrs[i].qubits {
                    live[q][t] = true;
                }
            }
        }
        LivenessMatrix { live }
    }

    /// Number of qubits (rows).
    pub fn num_qubits(&self) -> usize {
        self.live.len()
    }

    /// Circuit depth (columns).
    pub fn depth(&self) -> usize {
        self.live.first().map_or(0, Vec::len)
    }

    /// Whether qubit `q` is active in layer `t`.
    ///
    /// # Panics
    ///
    /// Panics if `q` or `t` is out of range.
    pub fn is_live(&self, q: usize, t: usize) -> bool {
        self.live[q][t]
    }

    /// Sum over all entries of the matrix (`sum_ij A_ij` in Eq. 5).
    pub fn total_live(&self) -> usize {
        self.live
            .iter()
            .map(|row| row.iter().filter(|&&b| b).count())
            .sum()
    }

    /// The liveness fraction `L = sum_ij A_ij / (n d)`, or 0 for an empty
    /// circuit.
    pub fn fraction(&self) -> f64 {
        let n = self.num_qubits();
        let d = self.depth();
        if n == 0 || d == 0 {
            return 0.0;
        }
        self.total_live() as f64 / (n as f64 * d as f64)
    }
}

/// Critical-path statistics of the circuit dependency DAG.
///
/// The DAG has one node per non-barrier instruction with an edge from each
/// instruction to the next instruction touching any of the same qubits. The
/// critical path is the longest node chain; among all longest chains we
/// report the one maximizing the number of two-qubit gates, which makes the
/// statistic deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalPathInfo {
    /// Length of the longest dependency chain (equals the ASAP depth).
    pub length: usize,
    /// Number of two-qubit gates on the critical path (`n_{e_d}` of Eq. 2).
    pub two_qubit_on_path: usize,
    /// Total number of two-qubit gates in the circuit (`n_e` of Eq. 2).
    pub two_qubit_total: usize,
}

impl CriticalPathInfo {
    /// Computes critical-path statistics for `circuit`.
    pub fn of(circuit: &Circuit) -> Self {
        let n = circuit.num_qubits();
        // For each qubit, the (chain length, 2q count) of the last
        // instruction that touched it.
        let mut frontier_len = vec![0usize; n];
        let mut frontier_two = vec![0usize; n];
        let mut best_len = 0usize;
        let mut best_two = 0usize;
        let mut total_two = 0usize;
        for instr in circuit.iter() {
            if instr.gate.kind() == GateKind::Barrier {
                // Barrier synchronizes chain lengths without adding a node.
                let len = instr
                    .qubits
                    .iter()
                    .map(|&q| frontier_len[q])
                    .max()
                    .unwrap_or(0);
                let two = instr
                    .qubits
                    .iter()
                    .filter(|&&q| frontier_len[q] == len)
                    .map(|&q| frontier_two[q])
                    .max()
                    .unwrap_or(0);
                for &q in &instr.qubits {
                    frontier_len[q] = len;
                    frontier_two[q] = two;
                }
                continue;
            }
            let is_two = instr.is_two_qubit();
            if is_two {
                total_two += 1;
            }
            let pred_len = instr
                .qubits
                .iter()
                .map(|&q| frontier_len[q])
                .max()
                .unwrap_or(0);
            let pred_two = instr
                .qubits
                .iter()
                .filter(|&&q| frontier_len[q] == pred_len)
                .map(|&q| frontier_two[q])
                .max()
                .unwrap_or(0);
            let len = pred_len + 1;
            let two = pred_two + usize::from(is_two);
            for &q in &instr.qubits {
                frontier_len[q] = len;
                frontier_two[q] = two;
            }
            if len > best_len || (len == best_len && two > best_two) {
                best_len = len;
                best_two = two;
            }
        }
        CriticalPathInfo {
            length: best_len,
            two_qubit_on_path: best_two,
            two_qubit_total: total_two,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layering_packs_parallel_gates() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2).cx(0, 1).h(2);
        let layers = CircuitLayers::of(&c);
        assert_eq!(layers.depth(), 2);
        assert_eq!(layers.layers()[0].len(), 3);
        assert_eq!(layers.layers()[1].len(), 2);
    }

    #[test]
    fn ghz_ladder_depth_is_sequential() {
        let n = 5;
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        let layers = CircuitLayers::of(&c);
        assert_eq!(layers.depth(), n); // h + (n-1) chained CNOTs
    }

    #[test]
    fn barrier_synchronizes_without_taking_a_layer() {
        let mut c = Circuit::new(2);
        c.h(0).barrier_all().h(1);
        // Without the barrier h(1) would land in layer 0; the barrier pushes
        // it to layer 1.
        let layers = CircuitLayers::of(&c);
        assert_eq!(layers.depth(), 2);
        let mut c2 = Circuit::new(2);
        c2.h(0).h(1);
        assert_eq!(CircuitLayers::of(&c2).depth(), 1);
    }

    #[test]
    fn terminal_measurements_are_not_mid_circuit() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let layers = CircuitLayers::of(&c);
        assert_eq!(layers.mid_circuit_measurement_layers(&c), 0);
    }

    #[test]
    fn mid_circuit_measure_and_reset_counts() {
        let mut c = Circuit::new(2);
        c.h(0).measure(1).reset(1).cx(0, 1).measure_all();
        let layers = CircuitLayers::of(&c);
        // measure(1) layer and reset(1) layer both precede the cx.
        assert_eq!(layers.mid_circuit_measurement_layers(&c), 2);
    }

    #[test]
    fn liveness_of_fully_dense_circuit_is_one() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1);
        let live = LivenessMatrix::of(&c);
        assert_eq!(live.depth(), 2);
        assert!((live.fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn liveness_counts_idle_qubits() {
        let mut c = Circuit::new(2);
        c.h(0).h(0); // qubit 1 always idle
        let live = LivenessMatrix::of(&c);
        assert_eq!(live.total_live(), 2);
        assert!((live.fraction() - 0.5).abs() < 1e-12);
        assert!(live.is_live(0, 0));
        assert!(!live.is_live(1, 0));
    }

    #[test]
    fn empty_circuit_liveness_zero() {
        let c = Circuit::new(3);
        let live = LivenessMatrix::of(&c);
        assert_eq!(live.fraction(), 0.0);
        assert_eq!(live.depth(), 0);
    }

    #[test]
    fn critical_path_of_serial_circuit() {
        // h - cx - cx ladder is fully serialized: every 2q gate on the path.
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let cp = CriticalPathInfo::of(&c);
        assert_eq!(cp.length, 3);
        assert_eq!(cp.two_qubit_on_path, 2);
        assert_eq!(cp.two_qubit_total, 2);
    }

    #[test]
    fn critical_path_of_parallel_two_qubit_gates() {
        // Two disjoint CNOTs in parallel: path length 1, only one on the path.
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3);
        let cp = CriticalPathInfo::of(&c);
        assert_eq!(cp.length, 1);
        assert_eq!(cp.two_qubit_on_path, 1);
        assert_eq!(cp.two_qubit_total, 2);
    }

    #[test]
    fn critical_path_prefers_two_qubit_rich_chain() {
        // Two chains of equal length; one has more 2q gates.
        let mut c = Circuit::new(4);
        // Chain A on q0: three 1q gates (length 3, 0 two-qubit).
        c.h(0).s(0).t(0);
        // Chain B on q1..q3: cx, cx, h (length 3, 2 two-qubit).
        c.cx(1, 2).cx(2, 3).h(3);
        let cp = CriticalPathInfo::of(&c);
        assert_eq!(cp.length, 3);
        assert_eq!(cp.two_qubit_on_path, 2);
    }

    #[test]
    fn critical_path_length_matches_depth() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(2, 3).cx(1, 2).measure_all();
        let cp = CriticalPathInfo::of(&c);
        let layers = CircuitLayers::of(&c);
        assert_eq!(cp.length, layers.depth());
    }
}
