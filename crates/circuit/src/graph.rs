//! The qubit interaction graph of a circuit.
//!
//! The Program Communication feature (paper Eq. 1) is the normalized average
//! degree of this graph: vertices are qubits, with an edge between every
//! pair of qubits that interact through a multi-qubit operation.

use crate::circuit::Circuit;
use std::collections::BTreeSet;

/// Undirected interaction graph over the qubits of a circuit.
///
/// # Example
///
/// ```
/// use supermarq_circuit::{Circuit, InteractionGraph};
///
/// let mut c = Circuit::new(3);
/// c.cx(0, 1).cx(1, 2).cx(1, 2); // repeated edge counted once
/// let g = InteractionGraph::of(&c);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InteractionGraph {
    num_qubits: usize,
    /// Sorted, deduplicated edge set with `a < b`.
    edges: BTreeSet<(usize, usize)>,
}

impl InteractionGraph {
    /// Builds the interaction graph of `circuit`.
    pub fn of(circuit: &Circuit) -> Self {
        let mut edges = BTreeSet::new();
        for instr in circuit.iter() {
            if instr.is_two_qubit() {
                let (a, b) = (instr.qubits[0], instr.qubits[1]);
                edges.insert((a.min(b), a.max(b)));
            }
        }
        InteractionGraph {
            num_qubits: circuit.num_qubits(),
            edges,
        }
    }

    /// Constructs a graph directly from an edge list (used in tests and by
    /// topology code).
    pub fn from_edges(num_qubits: usize, edge_list: &[(usize, usize)]) -> Self {
        let mut edges = BTreeSet::new();
        for &(a, b) in edge_list {
            assert!(
                a < num_qubits && b < num_qubits && a != b,
                "invalid edge ({a},{b})"
            );
            edges.insert((a.min(b), a.max(b)));
        }
        InteractionGraph { num_qubits, edges }
    }

    /// Number of vertices.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of distinct interaction edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over the edges as `(low, high)` pairs in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// `true` if qubits `a` and `b` share an edge.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.edges.contains(&(a.min(b), a.max(b)))
    }

    /// Degree of qubit `q`.
    pub fn degree(&self, q: usize) -> usize {
        self.edges
            .iter()
            .filter(|&&(a, b)| a == q || b == q)
            .count()
    }

    /// Sum of all vertex degrees (twice the edge count).
    pub fn degree_sum(&self) -> usize {
        2 * self.edges.len()
    }

    /// The Program Communication value of Eq. 1:
    /// `sum_i d(q_i) / (N (N - 1))`.
    ///
    /// Returns 0 for circuits with fewer than two qubits.
    pub fn normalized_average_degree(&self) -> f64 {
        let n = self.num_qubits;
        if n < 2 {
            return 0.0;
        }
        self.degree_sum() as f64 / (n as f64 * (n as f64 - 1.0))
    }

    /// Number of connected components (isolated qubits each count as one).
    pub fn connected_components(&self) -> usize {
        let n = self.num_qubits;
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for &(a, b) in &self.edges {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        }
        (0..n).filter(|&x| find(&mut parent, x) == x).count()
    }

    /// All-pairs shortest-path distance between `a` and `b` via BFS, or
    /// `None` if disconnected.
    pub fn distance(&self, a: usize, b: usize) -> Option<usize> {
        if a == b {
            return Some(0);
        }
        let adj = self.adjacency();
        let mut dist = vec![usize::MAX; self.num_qubits];
        let mut queue = std::collections::VecDeque::new();
        dist[a] = 0;
        queue.push_back(a);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    if v == b {
                        return Some(dist[v]);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// Adjacency lists, sorted.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.num_qubits];
        for &(a, b) in &self.edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_circuit_is_a_path_graph() {
        let n = 6;
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        let g = InteractionGraph::of(&c);
        assert_eq!(g.edge_count(), n - 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        // Path graph: sum deg = 2(n-1); normalized = 2(n-1)/(n(n-1)) = 2/n.
        assert!((g.normalized_average_degree() - 2.0 / n as f64).abs() < 1e-12);
        assert_eq!(g.connected_components(), 1);
    }

    #[test]
    fn complete_graph_has_communication_one() {
        let n = 5;
        let mut c = Circuit::new(n);
        for a in 0..n {
            for b in a + 1..n {
                c.cz(a, b);
            }
        }
        let g = InteractionGraph::of(&c);
        assert!((g.normalized_average_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_interactions_count_once() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0).cz(0, 1);
        let g = InteractionGraph::of(&c);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn one_qubit_gates_create_no_edges() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2).measure_all();
        let g = InteractionGraph::of(&c);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.normalized_average_degree(), 0.0);
        assert_eq!(g.connected_components(), 3);
    }

    #[test]
    fn distances_on_a_path() {
        let g = InteractionGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.distance(0, 3), Some(3));
        assert_eq!(g.distance(1, 1), Some(0));
        let disconnected = InteractionGraph::from_edges(4, &[(0, 1)]);
        assert_eq!(disconnected.distance(0, 3), None);
    }

    #[test]
    #[should_panic(expected = "invalid edge")]
    fn from_edges_rejects_self_loop() {
        InteractionGraph::from_edges(3, &[(1, 1)]);
    }

    #[test]
    fn single_qubit_circuit_communication_zero() {
        let mut c = Circuit::new(1);
        c.h(0);
        let g = InteractionGraph::of(&c);
        assert_eq!(g.normalized_average_degree(), 0.0);
    }
}
