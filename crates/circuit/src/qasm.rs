//! OpenQASM 2.0 export and import.
//!
//! SupermarQ's benchmarks are "specified at the level of OpenQASM" (paper
//! Sec. IV contribution list), so every circuit in this workspace can be
//! serialized to OpenQASM 2.0 text and parsed back. The parser supports the
//! subset of OpenQASM 2.0 that the emitter produces (single `qreg`/`creg`,
//! `qelib1.inc` gates, `measure`, `reset`, `barrier`), which is sufficient
//! for round-tripping every benchmark in the suite.

use crate::circuit::Circuit;
use crate::gate::Gate;

impl Circuit {
    /// Serializes the circuit to OpenQASM 2.0.
    ///
    /// # Example
    ///
    /// ```
    /// use supermarq_circuit::Circuit;
    ///
    /// let mut c = Circuit::new(2);
    /// c.h(0).cx(0, 1).measure_all();
    /// let qasm = c.to_qasm();
    /// assert!(qasm.starts_with("OPENQASM 2.0;"));
    /// let back = Circuit::from_qasm(&qasm).unwrap();
    /// assert_eq!(c, back);
    /// ```
    pub fn to_qasm(&self) -> String {
        let mut out = String::new();
        out.push_str("OPENQASM 2.0;\n");
        out.push_str("include \"qelib1.inc\";\n");
        out.push_str(&format!("qreg q[{}];\n", self.num_qubits()));
        out.push_str(&format!("creg c[{}];\n", self.num_qubits()));
        for instr in self.iter() {
            match instr.gate {
                Gate::Measure => {
                    let q = instr.qubits[0];
                    out.push_str(&format!("measure q[{q}] -> c[{q}];\n"));
                }
                Gate::Reset => {
                    out.push_str(&format!("reset q[{}];\n", instr.qubits[0]));
                }
                Gate::Barrier => {
                    let ops: Vec<String> = instr.qubits.iter().map(|q| format!("q[{q}]")).collect();
                    out.push_str(&format!("barrier {};\n", ops.join(",")));
                }
                gate => {
                    let params = gate.params();
                    let name = gate.qasm_name();
                    let ops: Vec<String> = instr.qubits.iter().map(|q| format!("q[{q}]")).collect();
                    if params.is_empty() {
                        out.push_str(&format!("{} {};\n", name, ops.join(",")));
                    } else {
                        let ps: Vec<String> = params.iter().map(|p| format!("{p:.15e}")).collect();
                        out.push_str(&format!("{}({}) {};\n", name, ps.join(","), ops.join(",")));
                    }
                }
            }
        }
        out
    }

    /// Parses a circuit from OpenQASM 2.0 text.
    ///
    /// # Errors
    ///
    /// Returns [`ParseQasmError`] on malformed input or on statements
    /// outside the supported subset (see module docs).
    pub fn from_qasm(text: &str) -> Result<Circuit, ParseQasmError> {
        parse_qasm(text)
    }
}

/// Error type for OpenQASM parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQasmError {
    /// 1-based statement number (semicolon-delimited) the error occurred at.
    pub statement: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "qasm parse error at statement {}: {}",
            self.statement, self.message
        )
    }
}

impl std::error::Error for ParseQasmError {}

fn err(statement: usize, message: impl Into<String>) -> ParseQasmError {
    ParseQasmError {
        statement,
        message: message.into(),
    }
}

/// Strips `//` comments from a line.
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Evaluates a restricted arithmetic parameter expression: floats, `pi`,
/// unary minus, `*`, `/`, `+`, `-` and parentheses.
fn eval_expr(s: &str, statement: usize) -> Result<f64, ParseQasmError> {
    let tokens = tokenize_expr(s, statement)?;
    let mut pos = 0;
    let v = parse_add(&tokens, &mut pos, statement)?;
    if pos != tokens.len() {
        return Err(err(
            statement,
            format!("trailing tokens in expression '{s}'"),
        ));
    }
    Ok(v)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Op(char),
}

fn tokenize_expr(s: &str, statement: usize) -> Result<Vec<Tok>, ParseQasmError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = s.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_ascii_digit() || c == '.' {
            let start = i;
            while i < chars.len()
                && (chars[i].is_ascii_digit()
                    || chars[i] == '.'
                    || chars[i] == 'e'
                    || chars[i] == 'E'
                    || ((chars[i] == '+' || chars[i] == '-')
                        && i > start
                        && (chars[i - 1] == 'e' || chars[i - 1] == 'E')))
            {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let v = text
                .parse::<f64>()
                .map_err(|_| err(statement, format!("bad number '{text}'")))?;
            tokens.push(Tok::Num(v));
        } else if c.is_alphabetic() {
            let start = i;
            while i < chars.len() && chars[i].is_alphanumeric() {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            if word == "pi" {
                tokens.push(Tok::Num(std::f64::consts::PI));
            } else {
                return Err(err(statement, format!("unknown identifier '{word}'")));
            }
        } else if "+-*/()".contains(c) {
            tokens.push(Tok::Op(c));
            i += 1;
        } else {
            return Err(err(statement, format!("unexpected character '{c}'")));
        }
    }
    Ok(tokens)
}

fn parse_add(tokens: &[Tok], pos: &mut usize, st: usize) -> Result<f64, ParseQasmError> {
    let mut v = parse_mul(tokens, pos, st)?;
    while let Some(Tok::Op(op @ ('+' | '-'))) = tokens.get(*pos) {
        let op = *op;
        *pos += 1;
        let rhs = parse_mul(tokens, pos, st)?;
        v = if op == '+' { v + rhs } else { v - rhs };
    }
    Ok(v)
}

fn parse_mul(tokens: &[Tok], pos: &mut usize, st: usize) -> Result<f64, ParseQasmError> {
    let mut v = parse_unary(tokens, pos, st)?;
    while let Some(Tok::Op(op @ ('*' | '/'))) = tokens.get(*pos) {
        let op = *op;
        *pos += 1;
        let rhs = parse_unary(tokens, pos, st)?;
        v = if op == '*' { v * rhs } else { v / rhs };
    }
    Ok(v)
}

fn parse_unary(tokens: &[Tok], pos: &mut usize, st: usize) -> Result<f64, ParseQasmError> {
    match tokens.get(*pos) {
        Some(Tok::Op('-')) => {
            *pos += 1;
            Ok(-parse_unary(tokens, pos, st)?)
        }
        Some(Tok::Op('+')) => {
            *pos += 1;
            parse_unary(tokens, pos, st)
        }
        Some(Tok::Op('(')) => {
            *pos += 1;
            let v = parse_add(tokens, pos, st)?;
            match tokens.get(*pos) {
                Some(Tok::Op(')')) => {
                    *pos += 1;
                    Ok(v)
                }
                _ => Err(err(st, "expected ')'")),
            }
        }
        Some(Tok::Num(v)) => {
            let v = *v;
            *pos += 1;
            Ok(v)
        }
        _ => Err(err(st, "expected expression")),
    }
}

/// Parses `q[3]` into `3`, checking the register name.
fn parse_operand(text: &str, reg: &str, statement: usize) -> Result<usize, ParseQasmError> {
    let text = text.trim();
    let open = text
        .find('[')
        .ok_or_else(|| err(statement, format!("expected indexed operand, got '{text}'")))?;
    let close = text
        .find(']')
        .ok_or_else(|| err(statement, format!("missing ']' in '{text}'")))?;
    let name = &text[..open];
    if name != reg {
        return Err(err(
            statement,
            format!("unknown register '{name}' (expected '{reg}')"),
        ));
    }
    text[open + 1..close]
        .trim()
        .parse::<usize>()
        .map_err(|_| err(statement, format!("bad index in '{text}'")))
}

fn parse_qasm(text: &str) -> Result<Circuit, ParseQasmError> {
    // Join lines, strip comments, split on ';'.
    let joined: String = text
        .lines()
        .map(strip_comment)
        .collect::<Vec<_>>()
        .join("\n");
    let statements: Vec<String> = joined
        .split(';')
        .map(|s| s.split_whitespace().collect::<Vec<_>>().join(" "))
        .filter(|s| !s.is_empty())
        .collect();

    let mut circuit: Option<Circuit> = None;
    let mut qreg_name = String::from("q");
    let mut creg_name = String::from("c");
    let mut header_seen = false;

    for (idx, stmt) in statements.iter().enumerate() {
        let st = idx + 1;
        if stmt.starts_with("OPENQASM") {
            header_seen = true;
            continue;
        }
        if stmt.starts_with("include") {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("qreg ") {
            let open = rest.find('[').ok_or_else(|| err(st, "malformed qreg"))?;
            let close = rest.find(']').ok_or_else(|| err(st, "malformed qreg"))?;
            qreg_name = rest[..open].trim().to_string();
            let n: usize = rest[open + 1..close]
                .trim()
                .parse()
                .map_err(|_| err(st, "bad qreg size"))?;
            if circuit.is_some() {
                return Err(err(st, "multiple qreg declarations are not supported"));
            }
            circuit = Some(Circuit::new(n));
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("creg ") {
            let open = rest.find('[').ok_or_else(|| err(st, "malformed creg"))?;
            creg_name = rest[..open].trim().to_string();
            continue;
        }

        let circ = circuit
            .as_mut()
            .ok_or_else(|| err(st, "gate statement before qreg declaration"))?;

        if let Some(rest) = stmt.strip_prefix("measure ") {
            let parts: Vec<&str> = rest.split("->").collect();
            if parts.len() != 2 {
                return Err(err(st, "malformed measure statement"));
            }
            let q = parse_operand(parts[0], &qreg_name, st)?;
            let _c = parse_operand(parts[1], &creg_name, st)?;
            circ.push(Gate::Measure, &[q])
                .map_err(|e| err(st, e.to_string()))?;
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("reset ") {
            let q = parse_operand(rest, &qreg_name, st)?;
            circ.push(Gate::Reset, &[q])
                .map_err(|e| err(st, e.to_string()))?;
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("barrier ") {
            let qubits: Result<Vec<usize>, _> = rest
                .split(',')
                .map(|op| parse_operand(op, &qreg_name, st))
                .collect();
            circ.push(Gate::Barrier, &qubits?)
                .map_err(|e| err(st, e.to_string()))?;
            continue;
        }

        // General gate statement: name[(params)] operands. The parameter
        // list may itself contain spaces, so split at the first space that
        // occurs outside parentheses.
        let mut split_at = None;
        let mut paren_depth = 0usize;
        for (i, ch) in stmt.char_indices() {
            match ch {
                '(' => paren_depth += 1,
                ')' => paren_depth = paren_depth.saturating_sub(1),
                ' ' if paren_depth == 0 => {
                    split_at = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let (head, operands_text) = match split_at {
            Some(pos) => (&stmt[..pos], &stmt[pos + 1..]),
            None => return Err(err(st, format!("malformed statement '{stmt}'"))),
        };
        let (name, params) = match head.find('(') {
            Some(open) => {
                let close = head
                    .rfind(')')
                    .ok_or_else(|| err(st, "missing ')' in gate params"))?;
                let params: Result<Vec<f64>, _> = head[open + 1..close]
                    .split(',')
                    .map(|p| eval_expr(p, st))
                    .collect();
                (&head[..open], params?)
            }
            None => (head, Vec::new()),
        };
        let qubits: Result<Vec<usize>, _> = operands_text
            .split(',')
            .map(|op| parse_operand(op, &qreg_name, st))
            .collect();
        let qubits = qubits?;
        let gate = gate_from_name(name, &params).ok_or_else(|| {
            err(
                st,
                format!("unsupported gate '{name}' with {} params", params.len()),
            )
        })?;
        circ.push(gate, &qubits)
            .map_err(|e| err(st, e.to_string()))?;
    }

    if !header_seen {
        return Err(err(0, "missing OPENQASM header"));
    }
    circuit.ok_or_else(|| err(0, "missing qreg declaration"))
}

/// Maps an OpenQASM gate mnemonic plus parameters to a [`Gate`].
fn gate_from_name(name: &str, params: &[f64]) -> Option<Gate> {
    let gate = match (name, params.len()) {
        ("id", 0) => Gate::I,
        ("h", 0) => Gate::H,
        ("x", 0) => Gate::X,
        ("y", 0) => Gate::Y,
        ("z", 0) => Gate::Z,
        ("s", 0) => Gate::S,
        ("sdg", 0) => Gate::Sdg,
        ("t", 0) => Gate::T,
        ("tdg", 0) => Gate::Tdg,
        ("sx", 0) => Gate::Sx,
        ("sxdg", 0) => Gate::Sxdg,
        ("rx", 1) => Gate::Rx(params[0]),
        ("ry", 1) => Gate::Ry(params[0]),
        ("rz", 1) => Gate::Rz(params[0]),
        ("p", 1) | ("u1", 1) => Gate::P(params[0]),
        ("u3", 3) | ("u", 3) => Gate::U(params[0], params[1], params[2]),
        ("u2", 2) => Gate::U(std::f64::consts::FRAC_PI_2, params[0], params[1]),
        ("cx", 0) | ("CX", 0) => Gate::Cx,
        ("cz", 0) => Gate::Cz,
        ("cp", 1) | ("cu1", 1) => Gate::Cp(params[0]),
        ("swap", 0) => Gate::Swap,
        ("rxx", 1) => Gate::Rxx(params[0]),
        ("ryy", 1) => Gate::Ryy(params[0]),
        ("rzz", 1) => Gate::Rzz(params[0]),
        _ => return None,
    };
    Some(gate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_gate_kinds() {
        let mut c = Circuit::new(3);
        c.h(0)
            .x(1)
            .y(2)
            .z(0)
            .s(1)
            .sdg(2)
            .t(0)
            .tdg(1)
            .sx(2)
            .rx(0.25, 0)
            .ry(-1.5, 1)
            .rz(3.0, 2)
            .p(0.7, 0)
            .u(0.1, 0.2, 0.3, 1)
            .cx(0, 1)
            .cz(1, 2)
            .cp(0.9, 0, 2)
            .swap(0, 1)
            .rxx(0.4, 1, 2)
            .ryy(0.5, 0, 2)
            .rzz(0.6, 0, 1)
            .reset(2)
            .barrier(&[0, 1])
            .measure_all();
        let qasm = c.to_qasm();
        let back = Circuit::from_qasm(&qasm).expect("round trip parse");
        assert_eq!(back.num_qubits(), 3);
        assert_eq!(back.instructions().len(), c.instructions().len());
        for (a, b) in c.iter().zip(back.iter()) {
            assert_eq!(a.qubits, b.qubits);
            match (a.gate.matrix1(), b.gate.matrix1()) {
                (Some(ma), Some(mb)) => {
                    for r in 0..2 {
                        for col in 0..2 {
                            assert!(ma[r][col].approx_eq(mb[r][col], 1e-9));
                        }
                    }
                }
                _ => assert_eq!(a.gate.qasm_name(), b.gate.qasm_name()),
            }
        }
    }

    #[test]
    fn parses_pi_expressions() {
        let qasm = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[1];
            creg c[1];
            rz(pi/2) q[0];
            rx(-pi) q[0];
            ry(2*pi/3) q[0];
            p(pi/4 + pi/4) q[0];
        "#;
        let c = Circuit::from_qasm(qasm).unwrap();
        let params: Vec<f64> = c.iter().map(|i| i.gate.params()[0]).collect();
        use std::f64::consts::PI;
        assert!((params[0] - PI / 2.0).abs() < 1e-12);
        assert!((params[1] + PI).abs() < 1e-12);
        assert!((params[2] - 2.0 * PI / 3.0).abs() < 1e-12);
        assert!((params[3] - PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn parses_comments_and_whitespace() {
        let qasm = "OPENQASM 2.0; // header\nqreg q[2]; creg c[2];\n  h   q[0] ; // hadamard\ncx q[0],q[1];";
        let c = Circuit::from_qasm(qasm).unwrap();
        assert_eq!(c.gate_count(), 2);
    }

    #[test]
    fn rejects_unknown_gate() {
        let qasm = "OPENQASM 2.0; qreg q[1]; creg c[1]; ccx q[0],q[0],q[0];";
        let e = Circuit::from_qasm(qasm).unwrap_err();
        assert!(e.message.contains("unsupported gate") || e.message.contains("duplicate"));
    }

    #[test]
    fn rejects_missing_header() {
        let qasm = "qreg q[1]; h q[0];";
        assert!(Circuit::from_qasm(qasm).is_err());
    }

    #[test]
    fn rejects_gate_before_qreg() {
        let qasm = "OPENQASM 2.0; h q[0]; qreg q[1];";
        let e = Circuit::from_qasm(qasm).unwrap_err();
        assert!(e.message.contains("before qreg"));
    }

    #[test]
    fn rejects_out_of_range_operand() {
        let qasm = "OPENQASM 2.0; qreg q[1]; h q[3];";
        let e = Circuit::from_qasm(qasm).unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn u2_maps_to_u3_with_half_pi_theta() {
        let qasm = "OPENQASM 2.0; qreg q[1]; u2(0,pi) q[0];";
        let c = Circuit::from_qasm(qasm).unwrap();
        // u2(0, pi) == H up to global phase.
        let m = c.instructions()[0].gate.matrix1().unwrap();
        let h = Gate::H.matrix1().unwrap();
        for r in 0..2 {
            for col in 0..2 {
                assert!(m[r][col].approx_eq(h[r][col], 1e-12));
            }
        }
    }

    #[test]
    fn expression_evaluator_handles_precedence() {
        assert!((eval_expr("1+2*3", 1).unwrap() - 7.0).abs() < 1e-12);
        assert!((eval_expr("(1+2)*3", 1).unwrap() - 9.0).abs() < 1e-12);
        assert!((eval_expr("-pi/2", 1).unwrap() + std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((eval_expr("2e-3", 1).unwrap() - 0.002).abs() < 1e-15);
        assert!(eval_expr("1+", 1).is_err());
        assert!(eval_expr("foo", 1).is_err());
    }
}
