//! A keyed cache of circuit analyses shared between compilation passes.
//!
//! The transpiler's pass manager, the feature extractor, and the
//! observability spans all want the same handful of structural facts about
//! a circuit — depth, gate counts, the interaction graph, the ASAP layer
//! schedule. Recomputing them at every call site is wasteful (depth alone
//! walks the whole instruction list), so a [`PropertySet`] memoizes each
//! analysis keyed by its type and hands out shared `Rc` references.
//!
//! The invalidation contract is deliberately coarse: a [`PropertySet`] is
//! valid for exactly one circuit value. Whoever owns the circuit calls
//! [`PropertySet::invalidate`] whenever the circuit is mutated (in the pass
//! manager, that is the pass runner, driven by each pass's reported
//! `PassOutcome`). There is no per-analysis dependency tracking — a single
//! mutation clears everything, and analyses are lazily recomputed on next
//! use. This keeps staleness bugs structurally impossible as long as the
//! owner honors the contract; the transpile crate carries a property test
//! asserting cached values always equal fresh recomputation.
//!
//! Analyses are not limited to this crate: any crate can define one by
//! implementing [`CircuitAnalysis`] for its own type. The verify crate's
//! abstract-interpretation domains (measurement lightcones for the
//! dead-gate/clobbered-qubit checks, Clifford recognition for the
//! stabilizer tier) plug in this way, so a pipeline run computes each of
//! them at most once per circuit value and every verify checkpoint reads
//! the shared cache.
//!
//! # Example
//!
//! ```
//! use supermarq_circuit::{Circuit, Depth, GateCount, PropertySet};
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1);
//! let props = PropertySet::new();
//! assert_eq!(*props.get::<Depth>(&c), 2);
//! assert_eq!(*props.get::<GateCount>(&c), 2);
//! // Cached: a second lookup does not re-walk the circuit.
//! assert!(props.is_cached::<Depth>());
//! c.h(1);
//! props.invalidate(); // circuit changed; drop every cached analysis
//! assert_eq!(*props.get::<Depth>(&c), 3);
//! ```

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::analysis::{CircuitLayers, CriticalPathInfo};
use crate::circuit::Circuit;
use crate::graph::InteractionGraph;

/// A memoizable structural analysis of a [`Circuit`].
///
/// Implementors are zero-sized marker types; the analysis result lives in
/// [`Self::Output`]. `compute` receives the owning [`PropertySet`] so that
/// derived analyses can reuse already-cached prerequisites (e.g. [`Depth`]
/// reads [`AsapLayers`] instead of re-scheduling the circuit).
pub trait CircuitAnalysis: 'static {
    /// The computed analysis value stored in the cache.
    type Output: 'static;

    /// Computes the analysis for `circuit`, consulting `properties` for any
    /// prerequisite analyses.
    fn compute(circuit: &Circuit, properties: &PropertySet) -> Self::Output;
}

/// A per-circuit memo table of [`CircuitAnalysis`] results.
///
/// Cheap to create; interior-mutable so read-only consumers (`&self`
/// accessors on a pass context) can still populate the cache lazily.
#[derive(Default)]
pub struct PropertySet {
    cache: RefCell<HashMap<TypeId, Rc<dyn Any>>>,
}

impl PropertySet {
    /// Creates an empty property set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached result of analysis `A` for `circuit`, computing
    /// and caching it on first use.
    ///
    /// The caller is responsible for always passing the *same* circuit value
    /// between invalidations — the cache is keyed by analysis type only.
    pub fn get<A: CircuitAnalysis>(&self, circuit: &Circuit) -> Rc<A::Output> {
        let key = TypeId::of::<A>();
        // Drop the borrow before computing: `A::compute` may recursively
        // request prerequisite analyses from this same set.
        let cached = self.cache.borrow().get(&key).cloned();
        let entry = match cached {
            Some(entry) => entry,
            None => {
                let value: Rc<dyn Any> = Rc::new(A::compute(circuit, self));
                self.cache
                    .borrow_mut()
                    .entry(key)
                    .or_insert_with(|| value)
                    .clone()
            }
        };
        entry
            .downcast::<A::Output>()
            .expect("PropertySet entry type matches its TypeId key")
    }

    /// Drops every cached analysis. Call whenever the underlying circuit is
    /// mutated (or replaced).
    pub fn invalidate(&self) {
        self.cache.borrow_mut().clear();
    }

    /// Whether analysis `A` is currently cached (diagnostic / test hook).
    pub fn is_cached<A: CircuitAnalysis>(&self) -> bool {
        self.cache.borrow().contains_key(&TypeId::of::<A>())
    }

    /// Number of cached analyses.
    pub fn len(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Whether no analyses are cached.
    pub fn is_empty(&self) -> bool {
        self.cache.borrow().is_empty()
    }
}

impl std::fmt::Debug for PropertySet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PropertySet")
            .field("cached_analyses", &self.len())
            .finish()
    }
}

/// The ASAP layer schedule ([`CircuitLayers`]) of the circuit.
pub struct AsapLayers;

impl CircuitAnalysis for AsapLayers {
    type Output = CircuitLayers;

    fn compute(circuit: &Circuit, _properties: &PropertySet) -> CircuitLayers {
        CircuitLayers::of(circuit)
    }
}

/// Circuit depth: the number of non-empty ASAP layers. Derived from
/// [`AsapLayers`], so requesting both schedules the circuit once.
pub struct Depth;

impl CircuitAnalysis for Depth {
    type Output = usize;

    fn compute(circuit: &Circuit, properties: &PropertySet) -> usize {
        properties.get::<AsapLayers>(circuit).depth()
    }
}

/// Total gate count excluding barriers (`Circuit::gate_count`).
pub struct GateCount;

impl CircuitAnalysis for GateCount {
    type Output = usize;

    fn compute(circuit: &Circuit, _properties: &PropertySet) -> usize {
        circuit.gate_count()
    }
}

/// Number of two-qubit gates (`Circuit::two_qubit_gate_count`).
pub struct TwoQubitGateCount;

impl CircuitAnalysis for TwoQubitGateCount {
    type Output = usize;

    fn compute(circuit: &Circuit, _properties: &PropertySet) -> usize {
        circuit.two_qubit_gate_count()
    }
}

/// The qubit [`InteractionGraph`] (one edge per interacting qubit pair).
pub struct Interactions;

impl CircuitAnalysis for Interactions {
    type Output = InteractionGraph;

    fn compute(circuit: &Circuit, _properties: &PropertySet) -> InteractionGraph {
        InteractionGraph::of(circuit)
    }
}

/// Dependency-DAG critical-path statistics ([`CriticalPathInfo`]).
pub struct CriticalPath;

impl CircuitAnalysis for CriticalPath {
    type Output = CriticalPathInfo;

    fn compute(circuit: &Circuit, _properties: &PropertySet) -> CriticalPathInfo {
        CriticalPathInfo::of(circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).measure_all();
        c
    }

    #[test]
    fn values_match_direct_computation() {
        let c = sample();
        let props = PropertySet::new();
        assert_eq!(*props.get::<Depth>(&c), c.depth());
        assert_eq!(*props.get::<GateCount>(&c), c.gate_count());
        assert_eq!(
            *props.get::<TwoQubitGateCount>(&c),
            c.two_qubit_gate_count()
        );
        assert_eq!(*props.get::<Interactions>(&c), InteractionGraph::of(&c));
        assert_eq!(*props.get::<CriticalPath>(&c), CriticalPathInfo::of(&c));
        assert_eq!(*props.get::<AsapLayers>(&c), CircuitLayers::of(&c));
    }

    #[test]
    fn results_are_cached_and_shared() {
        let c = sample();
        let props = PropertySet::new();
        let a = props.get::<AsapLayers>(&c);
        let b = props.get::<AsapLayers>(&c);
        assert!(Rc::ptr_eq(&a, &b), "second lookup must hit the cache");
    }

    #[test]
    fn depth_reuses_cached_layers() {
        let c = sample();
        let props = PropertySet::new();
        let _ = props.get::<Depth>(&c);
        // Depth is derived from AsapLayers, so both are now cached.
        assert!(props.is_cached::<AsapLayers>());
        assert!(props.is_cached::<Depth>());
        assert_eq!(props.len(), 2);
    }

    #[test]
    fn invalidate_clears_everything() {
        let mut c = sample();
        let props = PropertySet::new();
        assert_eq!(*props.get::<GateCount>(&c), 6);
        c.h(2);
        props.invalidate();
        assert!(props.is_empty());
        assert_eq!(*props.get::<GateCount>(&c), 7);
    }

    #[test]
    fn stale_values_persist_until_invalidated() {
        // Documents the contract: the set does NOT watch the circuit.
        let mut c = sample();
        let props = PropertySet::new();
        assert_eq!(*props.get::<GateCount>(&c), 6);
        c.h(2);
        assert_eq!(*props.get::<GateCount>(&c), 6, "cache is keyed, not live");
        props.invalidate();
        assert_eq!(*props.get::<GateCount>(&c), 7);
    }
}
