//! The [`Circuit`] container and its builder API.

use crate::gate::{Gate, GateKind};
use crate::CircuitError;

/// A single operation applied to an ordered list of qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// The operation.
    pub gate: Gate,
    /// Operand qubits, in gate order (e.g. `[control, target]` for `Cx`).
    pub qubits: Vec<usize>,
}

impl Instruction {
    /// Creates a new instruction.
    pub fn new(gate: Gate, qubits: Vec<usize>) -> Self {
        Instruction { gate, qubits }
    }

    /// `true` if this instruction is a two-qubit unitary.
    pub fn is_two_qubit(&self) -> bool {
        self.gate.is_two_qubit()
    }
}

/// A quantum circuit over `num_qubits` qubits: an ordered list of
/// [`Instruction`]s.
///
/// Builder methods (`h`, `cx`, `rz`, ...) validate operands and return
/// `&mut Self` so calls can be chained; the checked [`Circuit::push`] is the
/// non-panicking primitive underneath them.
///
/// # Example
///
/// ```
/// use supermarq_circuit::Circuit;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// assert_eq!(bell.depth(), 2);
/// assert_eq!(bell.gate_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            instructions: Vec::new(),
        }
    }

    /// Number of qubits in the circuit register.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The instruction list, in program order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Iterates over the instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// Total number of instructions excluding barriers.
    pub fn gate_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate.kind() != GateKind::Barrier)
            .count()
    }

    /// Number of two-qubit unitary gates (`n_e` in the paper's notation).
    pub fn two_qubit_gate_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.is_two_qubit())
            .count()
    }

    /// Number of measurement instructions.
    pub fn measurement_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate.kind() == GateKind::Measurement)
            .count()
    }

    /// Number of reset instructions.
    pub fn reset_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate.kind() == GateKind::Reset)
            .count()
    }

    /// `true` if the circuit contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Appends an instruction after validating its operands.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] if any operand is out of
    /// range, [`CircuitError::DuplicateQubit`] if a multi-qubit gate
    /// repeats an operand, and [`CircuitError::ArityMismatch`] if the
    /// operand count does not match the gate's arity (barriers are exempt:
    /// their arity is variable).
    pub fn push(&mut self, gate: Gate, qubits: &[usize]) -> Result<&mut Self, CircuitError> {
        if gate.kind() != GateKind::Barrier && qubits.len() != gate.arity() {
            return Err(CircuitError::ArityMismatch {
                gate: gate.qasm_name(),
                expected: gate.arity(),
                got: qubits.len(),
            });
        }
        for &q in qubits {
            if q >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
        }
        for (i, &q) in qubits.iter().enumerate() {
            if qubits[..i].contains(&q) {
                return Err(CircuitError::DuplicateQubit { qubit: q });
            }
        }
        self.instructions
            .push(Instruction::new(gate, qubits.to_vec()));
        Ok(self)
    }

    /// Appends an instruction without any operand validation.
    ///
    /// This is the deliberate escape hatch for constructing malformed
    /// circuits — e.g. seeding mutations when testing the
    /// `supermarq-verify` static analyses. Production code should use
    /// [`Circuit::push`] (fallible) or [`Circuit::append`] (panicking)
    /// so invalid operands cannot enter a circuit silently.
    pub fn push_unchecked(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        self.instructions
            .push(Instruction::new(gate, qubits.to_vec()));
        self
    }

    /// Appends an instruction, panicking on invalid operands.
    ///
    /// This is the convenience wrapper the builder methods (`h`, `cx`, ...)
    /// sit on; it performs exactly the validation of [`Circuit::push`].
    ///
    /// # Panics
    ///
    /// Panics with `"invalid instruction operands"` if operands are out of
    /// range, duplicated, or mismatch the gate's arity; see
    /// [`Circuit::push`] for the fallible alternative that reports which
    /// rule was violated.
    pub fn append(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        self.push(gate, qubits)
            .expect("invalid instruction operands")
    }

    /// Appends every instruction of `other` to this circuit.
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits than this circuit has.
    pub fn extend_from(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.num_qubits <= self.num_qubits,
            "cannot extend {}-qubit circuit with {}-qubit circuit",
            self.num_qubits,
            other.num_qubits
        );
        self.instructions.extend(other.instructions.iter().cloned());
        self
    }

    /// Returns the adjoint (inverse) of this circuit.
    ///
    /// # Errors
    ///
    /// Returns `None` if the circuit contains a non-invertible operation
    /// (measure or reset). Barriers are preserved.
    pub fn adjoint(&self) -> Option<Circuit> {
        let mut out = Circuit::new(self.num_qubits);
        for instr in self.instructions.iter().rev() {
            if instr.gate.kind() == GateKind::Barrier {
                out.instructions.push(instr.clone());
                continue;
            }
            let inv = instr.gate.inverse()?;
            out.instructions
                .push(Instruction::new(inv, instr.qubits.clone()));
        }
        Some(out)
    }

    // --- chained builder methods -------------------------------------------------

    /// Applies a Hadamard gate.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.append(Gate::H, &[q])
    }

    /// Applies a Pauli-X gate.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.append(Gate::X, &[q])
    }

    /// Applies a Pauli-Y gate.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Y, &[q])
    }

    /// Applies a Pauli-Z gate.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Z, &[q])
    }

    /// Applies an S gate.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.append(Gate::S, &[q])
    }

    /// Applies an S-dagger gate.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Sdg, &[q])
    }

    /// Applies a T gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.append(Gate::T, &[q])
    }

    /// Applies a T-dagger gate.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Tdg, &[q])
    }

    /// Applies a sqrt(X) gate.
    pub fn sx(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Sx, &[q])
    }

    /// Applies an X-rotation.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.append(Gate::Rx(theta), &[q])
    }

    /// Applies a Y-rotation.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.append(Gate::Ry(theta), &[q])
    }

    /// Applies a Z-rotation.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.append(Gate::Rz(theta), &[q])
    }

    /// Applies a phase gate `p(lambda)`.
    pub fn p(&mut self, lambda: f64, q: usize) -> &mut Self {
        self.append(Gate::P(lambda), &[q])
    }

    /// Applies a general single-qubit unitary `u3(theta, phi, lambda)`.
    pub fn u(&mut self, theta: f64, phi: f64, lambda: f64, q: usize) -> &mut Self {
        self.append(Gate::U(theta, phi, lambda), &[q])
    }

    /// Applies a CNOT with the given control and target.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.append(Gate::Cx, &[control, target])
    }

    /// Applies a controlled-Z.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.append(Gate::Cz, &[a, b])
    }

    /// Applies a controlled-phase gate.
    pub fn cp(&mut self, lambda: f64, a: usize, b: usize) -> &mut Self {
        self.append(Gate::Cp(lambda), &[a, b])
    }

    /// Applies a SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.append(Gate::Swap, &[a, b])
    }

    /// Applies an XX-rotation.
    pub fn rxx(&mut self, theta: f64, a: usize, b: usize) -> &mut Self {
        self.append(Gate::Rxx(theta), &[a, b])
    }

    /// Applies a YY-rotation.
    pub fn ryy(&mut self, theta: f64, a: usize, b: usize) -> &mut Self {
        self.append(Gate::Ryy(theta), &[a, b])
    }

    /// Applies a ZZ-rotation.
    pub fn rzz(&mut self, theta: f64, a: usize, b: usize) -> &mut Self {
        self.append(Gate::Rzz(theta), &[a, b])
    }

    /// Measures one qubit into its like-indexed classical bit.
    pub fn measure(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Measure, &[q])
    }

    /// Measures every qubit.
    pub fn measure_all(&mut self) -> &mut Self {
        for q in 0..self.num_qubits {
            self.append(Gate::Measure, &[q]);
        }
        self
    }

    /// Resets one qubit to `|0>`.
    pub fn reset(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Reset, &[q])
    }

    /// Inserts a barrier across all qubits.
    pub fn barrier_all(&mut self) -> &mut Self {
        let qubits: Vec<usize> = (0..self.num_qubits).collect();
        self.instructions
            .push(Instruction::new(Gate::Barrier, qubits));
        self
    }

    /// Inserts a barrier across the given qubits.
    ///
    /// # Panics
    ///
    /// Panics if any qubit is out of range or duplicated.
    pub fn barrier(&mut self, qubits: &[usize]) -> &mut Self {
        self.push(Gate::Barrier, qubits)
            .expect("invalid barrier operands")
    }

    /// Returns an equivalent circuit over only the qubits this circuit
    /// actually operates on, together with the old-to-new index mapping
    /// (`None` for untouched qubits).
    ///
    /// Barrier operand lists are filtered to touched qubits (and dropped
    /// when empty); barriers alone do not mark a qubit as used. This is
    /// what lets a few-qubit benchmark transpiled onto a 27-qubit device be
    /// simulated over just the qubits it occupies.
    pub fn compacted(&self) -> (Circuit, Vec<Option<usize>>) {
        let mut used = vec![false; self.num_qubits];
        for instr in &self.instructions {
            if instr.gate.kind() != GateKind::Barrier {
                for &q in &instr.qubits {
                    used[q] = true;
                }
            }
        }
        let mut mapping: Vec<Option<usize>> = vec![None; self.num_qubits];
        let mut next = 0usize;
        for (q, m) in mapping.iter_mut().enumerate() {
            if used[q] {
                *m = Some(next);
                next += 1;
            }
        }
        let mut out = Circuit::new(next);
        for instr in &self.instructions {
            let qubits: Vec<usize> = instr.qubits.iter().filter_map(|&q| mapping[q]).collect();
            if instr.gate.kind() == GateKind::Barrier {
                if !qubits.is_empty() {
                    out.instructions
                        .push(Instruction::new(Gate::Barrier, qubits));
                }
            } else {
                out.instructions.push(Instruction::new(instr.gate, qubits));
            }
        }
        (out, mapping)
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

impl Extend<Instruction> for Circuit {
    fn extend<T: IntoIterator<Item = Instruction>>(&mut self, iter: T) {
        for instr in iter {
            self.push(instr.gate, &instr.qubits)
                .expect("invalid instruction operands");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitError;

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(4);
        assert_eq!(c.num_qubits(), 4);
        assert!(c.is_empty());
        assert_eq!(c.gate_count(), 0);
    }

    #[test]
    fn builder_chains_and_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).rz(0.5, 2).measure_all();
        assert_eq!(c.gate_count(), 7);
        assert_eq!(c.two_qubit_gate_count(), 2);
        assert_eq!(c.measurement_count(), 3);
        assert_eq!(c.reset_count(), 0);
    }

    #[test]
    fn push_rejects_out_of_range() {
        let mut c = Circuit::new(2);
        let err = c.push(Gate::H, &[2]).unwrap_err();
        assert_eq!(
            err,
            CircuitError::QubitOutOfRange {
                qubit: 2,
                num_qubits: 2
            }
        );
    }

    #[test]
    fn push_rejects_duplicates() {
        let mut c = Circuit::new(2);
        let err = c.push(Gate::Cx, &[1, 1]).unwrap_err();
        assert_eq!(err, CircuitError::DuplicateQubit { qubit: 1 });
    }

    #[test]
    fn push_rejects_arity_mismatch() {
        let mut c = Circuit::new(3);
        let err = c.push(Gate::Cx, &[0]).unwrap_err();
        assert_eq!(
            err,
            CircuitError::ArityMismatch {
                gate: "cx",
                expected: 2,
                got: 1
            }
        );
        let err = c.push(Gate::H, &[0, 1]).unwrap_err();
        assert_eq!(
            err,
            CircuitError::ArityMismatch {
                gate: "h",
                expected: 1,
                got: 2
            }
        );
        // Barriers take any number of operands.
        assert!(c.push(Gate::Barrier, &[0, 1, 2]).is_ok());
        assert!(c.push(Gate::Barrier, &[]).is_ok());
    }

    #[test]
    fn push_unchecked_bypasses_validation() {
        let mut c = Circuit::new(1);
        c.push_unchecked(Gate::Cx, &[0, 7]);
        assert_eq!(c.gate_count(), 1);
        assert_eq!(c.instructions()[0].qubits, vec![0, 7]);
    }

    #[test]
    #[should_panic(expected = "invalid instruction operands")]
    fn append_panics_on_bad_operand() {
        let mut c = Circuit::new(1);
        c.append(Gate::Cx, &[0, 1]);
    }

    #[test]
    fn adjoint_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.h(0).s(0).cx(0, 1).t(1);
        let adj = c.adjoint().unwrap();
        let gates: Vec<Gate> = adj.iter().map(|i| i.gate).collect();
        assert_eq!(gates, vec![Gate::Tdg, Gate::Cx, Gate::Sdg, Gate::H]);
    }

    #[test]
    fn adjoint_fails_with_measurement() {
        let mut c = Circuit::new(1);
        c.h(0).measure(0);
        assert!(c.adjoint().is_none());
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = Circuit::new(3);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        a.extend_from(&b);
        assert_eq!(a.gate_count(), 2);
        assert_eq!(a.instructions()[1].gate, Gate::Cx);
    }

    #[test]
    #[should_panic(expected = "cannot extend")]
    fn extend_from_rejects_larger_register() {
        let mut a = Circuit::new(1);
        let b = Circuit::new(2);
        a.extend_from(&b);
    }

    #[test]
    fn barriers_excluded_from_gate_count() {
        let mut c = Circuit::new(2);
        c.h(0).barrier_all().h(1);
        assert_eq!(c.gate_count(), 2);
        assert_eq!(c.instructions().len(), 3);
    }

    #[test]
    fn into_iterator_and_extend() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let instrs: Vec<Instruction> = (&c).into_iter().cloned().collect();
        let mut d = Circuit::new(2);
        d.extend(instrs);
        assert_eq!(c, d);
    }
}
