//! Plain-text circuit diagrams.
//!
//! Renders a circuit as one wire per qubit with gates placed at their ASAP
//! layer — the quick visual check every circuit library needs:
//!
//! ```text
//! q0: ─[h]─●───────[M]─
//! q1: ─────X──●────[M]─
//! q2: ────────X────[M]─
//! ```

use crate::analysis::CircuitLayers;
use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};

/// Renders `circuit` as an ASCII diagram, one line per qubit.
///
/// Controlled gates draw `●` on the control wire; CX targets draw `X`, CZ
/// draws `●` on both wires; other two-qubit gates draw their mnemonic on
/// both wires. Measurement is `[M]`, reset `[R]`, barriers a `|` column.
///
/// # Example
///
/// ```
/// use supermarq_circuit::Circuit;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1).measure_all();
/// let d = c.to_diagram();
/// assert!(d.contains("[h]"));
/// assert!(d.contains("[M]"));
/// ```
pub fn to_diagram(circuit: &Circuit) -> String {
    let n = circuit.num_qubits();
    if n == 0 {
        return String::new();
    }
    let layers = CircuitLayers::of(circuit);
    let instrs = circuit.instructions();
    // Column text per qubit per layer.
    let mut columns: Vec<Vec<String>> = Vec::new();
    for layer in layers.layers() {
        let mut col = vec![String::new(); n];
        for &i in layer {
            let instr = &instrs[i];
            match instr.gate.kind() {
                GateKind::OneQubitUnitary => {
                    col[instr.qubits[0]] = format!("[{}]", short_name(&instr.gate));
                }
                GateKind::TwoQubitUnitary => {
                    let (a, b) = (instr.qubits[0], instr.qubits[1]);
                    match instr.gate {
                        Gate::Cx => {
                            col[a] = "●".to_string();
                            col[b] = "X".to_string();
                        }
                        Gate::Cz => {
                            col[a] = "●".to_string();
                            col[b] = "●".to_string();
                        }
                        Gate::Swap => {
                            col[a] = "x".to_string();
                            col[b] = "x".to_string();
                        }
                        ref g => {
                            let name = short_name(g);
                            col[a] = format!("[{name}a]");
                            col[b] = format!("[{name}b]");
                        }
                    }
                }
                GateKind::Measurement => col[instr.qubits[0]] = "[M]".to_string(),
                GateKind::Reset => col[instr.qubits[0]] = "[R]".to_string(),
                GateKind::Barrier => {}
            }
        }
        columns.push(col);
    }
    // Pad columns to uniform width and join with wire segments.
    let widths: Vec<usize> = columns
        .iter()
        .map(|col| col.iter().map(String::len).max().unwrap_or(0).max(1))
        .collect();
    let label_width = format!("q{}", n - 1).len();
    let mut out = String::new();
    for q in 0..n {
        let mut line = format!("{:<label_width$}: ─", format!("q{q}"));
        for (col, &w) in columns.iter().zip(&widths) {
            let cell = &col[q];
            let pad = w - cell.chars().count().min(w);
            if cell.is_empty() {
                line.push_str(&"─".repeat(w));
            } else {
                line.push_str(cell);
                line.push_str(&"─".repeat(pad));
            }
            line.push('─');
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// A compact mnemonic for diagram cells.
fn short_name(gate: &Gate) -> String {
    match gate {
        Gate::Rx(t) => format!("rx({t:.2})"),
        Gate::Ry(t) => format!("ry({t:.2})"),
        Gate::Rz(t) => format!("rz({t:.2})"),
        Gate::P(t) => format!("p({t:.2})"),
        Gate::U(a, b, c) => format!("u({a:.1},{b:.1},{c:.1})"),
        Gate::Cp(t) => format!("cp({t:.2})"),
        Gate::Rxx(t) => format!("rxx({t:.2})"),
        Gate::Ryy(t) => format!("ryy({t:.2})"),
        Gate::Rzz(t) => format!("rzz({t:.2})"),
        g => g.qasm_name().to_string(),
    }
}

impl Circuit {
    /// Renders the circuit as an ASCII diagram; see [`to_diagram`].
    pub fn to_diagram(&self) -> String {
        to_diagram(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghz_diagram_shape() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).measure_all();
        let d = c.to_diagram();
        let lines: Vec<&str> = d.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("q0:"));
        assert!(lines[0].contains("[h]"));
        assert!(lines[0].contains("●"));
        assert!(lines[1].contains("X"));
        assert!(lines[2].contains("[M]"));
    }

    #[test]
    fn rotations_show_angles() {
        let mut c = Circuit::new(1);
        c.rz(0.5, 0);
        assert!(c.to_diagram().contains("rz(0.50)"));
    }

    #[test]
    fn swap_and_cz_symbols() {
        let mut c = Circuit::new(2);
        c.swap(0, 1).cz(0, 1);
        let d = c.to_diagram();
        assert!(d.contains('x'));
        assert!(d.lines().all(|l| l.contains('●') || !l.contains("[")));
    }

    #[test]
    fn reset_cell() {
        let mut c = Circuit::new(1);
        c.x(0).reset(0);
        assert!(c.to_diagram().contains("[R]"));
    }

    #[test]
    fn empty_and_zero_qubit_circuits() {
        assert!(Circuit::new(0).to_diagram().is_empty());
        let d = Circuit::new(2).to_diagram();
        assert_eq!(d.lines().count(), 2);
    }

    #[test]
    fn wide_register_labels_align() {
        let mut c = Circuit::new(11);
        c.h(0).h(10);
        let d = c.to_diagram();
        let lines: Vec<&str> = d.lines().collect();
        // All lines begin the wire at the same column.
        let starts: std::collections::BTreeSet<usize> =
            lines.iter().map(|l| l.find('─').unwrap()).collect();
        assert_eq!(starts.len(), 1, "{d}");
    }
}
