//! Quantum circuit intermediate representation for the SupermarQ reproduction.
//!
//! This crate is the foundation of the workspace: it defines the gate set,
//! the [`Circuit`] container, structural analyses (moment scheduling, DAG
//! critical path, interaction graph) and OpenQASM 2.0 import/export.
//!
//! The SupermarQ paper specifies its benchmarks "at the level of OpenQASM"
//! (Sec. III, Principle 3), so the IR here deliberately mirrors the OpenQASM
//! 2.0 operation set: a universal collection of named 1- and 2-qubit gates
//! plus `measure`, `reset` and `barrier`.
//!
//! # Example
//!
//! ```
//! use supermarq_circuit::Circuit;
//!
//! // The 3-qubit GHZ preparation circuit from Fig. 1a of the paper.
//! let mut c = Circuit::new(3);
//! c.h(0).cx(0, 1).cx(1, 2).measure_all();
//! assert_eq!(c.num_qubits(), 3);
//! assert_eq!(c.two_qubit_gate_count(), 2);
//! let qasm = c.to_qasm();
//! assert!(qasm.contains("cx q[0],q[1];"));
//! ```

pub mod analysis;
pub mod circuit;
pub mod diagram;
pub mod gate;
pub mod graph;
pub mod math;
pub mod properties;
pub mod qasm;

pub use analysis::{CircuitLayers, CriticalPathInfo, LivenessMatrix};
pub use circuit::{Circuit, Instruction};
pub use gate::{Gate, GateKind};
pub use graph::InteractionGraph;
pub use math::C64;
pub use properties::{
    AsapLayers, CircuitAnalysis, CriticalPath, Depth, GateCount, Interactions, PropertySet,
    TwoQubitGateCount,
};
pub use qasm::ParseQasmError;

/// Errors produced while constructing or mutating a [`Circuit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A gate referenced a qubit index `>= num_qubits`.
    QubitOutOfRange { qubit: usize, num_qubits: usize },
    /// A multi-qubit gate was applied to a repeated qubit.
    DuplicateQubit { qubit: usize },
    /// A gate received the wrong number of operands (e.g. `cx` on one
    /// qubit). `gate` is the OpenQASM mnemonic; barriers are exempt since
    /// their arity is variable.
    ArityMismatch {
        gate: &'static str,
        expected: usize,
        got: usize,
    },
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for {num_qubits}-qubit circuit"
                )
            }
            CircuitError::DuplicateQubit { qubit } => {
                write!(f, "duplicate qubit {qubit} in multi-qubit gate")
            }
            CircuitError::ArityMismatch {
                gate,
                expected,
                got,
            } => {
                write!(f, "gate '{gate}' expects {expected} operand(s), got {got}")
            }
        }
    }
}

impl std::error::Error for CircuitError {}
