//! The gate set of the circuit IR.
//!
//! The set mirrors OpenQASM 2.0's `qelib1.inc` plus the two-qubit rotations
//! (`rxx`, `ryy`, `rzz`) that the SupermarQ benchmarks use natively (e.g. the
//! ZZ-SWAP network of the QAOA benchmark and the Mølmer–Sørensen gate of
//! trapped-ion hardware), plus the non-unitary `measure` and `reset`
//! operations that the error-correction proxy-applications require.

use crate::math::C64;

/// A quantum operation, parameterized where applicable by rotation angles in
/// radians.
///
/// Unitary gates expose their matrix via [`Gate::matrix1`] /
/// [`Gate::matrix2`]; the non-unitary operations (`Measure`, `Reset`) and the
/// scheduling pseudo-operation (`Barrier`) do not have matrices.
///
/// # Example
///
/// ```
/// use supermarq_circuit::Gate;
///
/// assert_eq!(Gate::H.arity(), 1);
/// assert_eq!(Gate::Cx.arity(), 2);
/// assert!(Gate::Cx.is_two_qubit());
/// assert!(!Gate::Measure.is_unitary());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Identity (explicit idle).
    I,
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate `S = diag(1, i)`.
    S,
    /// Inverse phase gate.
    Sdg,
    /// `T = diag(1, e^{i pi/4})`.
    T,
    /// Inverse T gate.
    Tdg,
    /// Square root of X (`sx`), a native IBM gate.
    Sx,
    /// Inverse square root of X.
    Sxdg,
    /// Rotation about X by the given angle.
    Rx(f64),
    /// Rotation about Y by the given angle.
    Ry(f64),
    /// Rotation about Z by the given angle.
    Rz(f64),
    /// Phase rotation `diag(1, e^{i lambda})` (`u1`/`p` in OpenQASM).
    P(f64),
    /// General single-qubit unitary `U(theta, phi, lambda)` (OpenQASM `u3`).
    U(f64, f64, f64),
    /// Controlled-X.
    Cx,
    /// Controlled-Z.
    Cz,
    /// Controlled phase `diag(1,1,1,e^{i lambda})`.
    Cp(f64),
    /// SWAP.
    Swap,
    /// Two-qubit XX rotation `exp(-i theta/2 X⊗X)` (Mølmer–Sørensen family).
    Rxx(f64),
    /// Two-qubit YY rotation `exp(-i theta/2 Y⊗Y)`.
    Ryy(f64),
    /// Two-qubit ZZ rotation `exp(-i theta/2 Z⊗Z)`.
    Rzz(f64),
    /// Computational-basis measurement (destructive readout into a classical
    /// bit with the same index as the qubit).
    Measure,
    /// Reset to `|0>`.
    Reset,
    /// Scheduling barrier over its operand qubits.
    Barrier,
}

/// The broad structural class of a [`Gate`], used by analyses that only care
/// about arity and unitarity rather than the specific operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// A unitary acting on a single qubit.
    OneQubitUnitary,
    /// A unitary acting on two qubits.
    TwoQubitUnitary,
    /// A measurement.
    Measurement,
    /// A reset.
    Reset,
    /// A barrier pseudo-gate.
    Barrier,
}

impl Gate {
    /// Number of qubit operands the gate acts on.
    ///
    /// `Barrier` reports arity 0 here because it accepts a variable number of
    /// operands; the [`crate::Instruction`] carries the actual operand list.
    pub fn arity(&self) -> usize {
        match self.kind() {
            GateKind::OneQubitUnitary | GateKind::Measurement | GateKind::Reset => 1,
            GateKind::TwoQubitUnitary => 2,
            GateKind::Barrier => 0,
        }
    }

    /// Structural classification of the gate.
    pub fn kind(&self) -> GateKind {
        use Gate::*;
        match self {
            I | H | X | Y | Z | S | Sdg | T | Tdg | Sx | Sxdg | Rx(_) | Ry(_) | Rz(_) | P(_)
            | U(..) => GateKind::OneQubitUnitary,
            Cx | Cz | Cp(_) | Swap | Rxx(_) | Ryy(_) | Rzz(_) => GateKind::TwoQubitUnitary,
            Measure => GateKind::Measurement,
            Reset => GateKind::Reset,
            Barrier => GateKind::Barrier,
        }
    }

    /// `true` for unitary gates (excludes measure/reset/barrier).
    pub fn is_unitary(&self) -> bool {
        matches!(
            self.kind(),
            GateKind::OneQubitUnitary | GateKind::TwoQubitUnitary
        )
    }

    /// `true` for two-qubit unitary gates.
    pub fn is_two_qubit(&self) -> bool {
        self.kind() == GateKind::TwoQubitUnitary
    }

    /// The OpenQASM 2.0 mnemonic of this gate.
    pub fn qasm_name(&self) -> &'static str {
        use Gate::*;
        match self {
            I => "id",
            H => "h",
            X => "x",
            Y => "y",
            Z => "z",
            S => "s",
            Sdg => "sdg",
            T => "t",
            Tdg => "tdg",
            Sx => "sx",
            Sxdg => "sxdg",
            Rx(_) => "rx",
            Ry(_) => "ry",
            Rz(_) => "rz",
            P(_) => "p",
            U(..) => "u3",
            Cx => "cx",
            Cz => "cz",
            Cp(_) => "cp",
            Swap => "swap",
            Rxx(_) => "rxx",
            Ryy(_) => "ryy",
            Rzz(_) => "rzz",
            Measure => "measure",
            Reset => "reset",
            Barrier => "barrier",
        }
    }

    /// The rotation parameters of this gate, in OpenQASM order.
    pub fn params(&self) -> Vec<f64> {
        use Gate::*;
        match *self {
            Rx(t) | Ry(t) | Rz(t) | P(t) | Cp(t) | Rxx(t) | Ryy(t) | Rzz(t) => vec![t],
            U(a, b, c) => vec![a, b, c],
            _ => Vec::new(),
        }
    }

    /// The inverse gate, for unitary gates.
    ///
    /// Returns `None` for `Measure`, `Reset` and `Barrier`.
    pub fn inverse(&self) -> Option<Gate> {
        use Gate::*;
        Some(match *self {
            I => I,
            H => H,
            X => X,
            Y => Y,
            Z => Z,
            S => Sdg,
            Sdg => S,
            T => Tdg,
            Tdg => T,
            Sx => Sxdg,
            Sxdg => Sx,
            Rx(t) => Rx(-t),
            Ry(t) => Ry(-t),
            Rz(t) => Rz(-t),
            P(t) => P(-t),
            U(a, b, c) => U(-a, -c, -b),
            Cx => Cx,
            Cz => Cz,
            Cp(t) => Cp(-t),
            Swap => Swap,
            Rxx(t) => Rxx(-t),
            Ryy(t) => Ryy(-t),
            Rzz(t) => Rzz(-t),
            Measure | Reset | Barrier => return None,
        })
    }

    /// The 2x2 unitary matrix of a single-qubit gate, row-major.
    ///
    /// Returns `None` for gates that are not single-qubit unitaries.
    pub fn matrix1(&self) -> Option<[[C64; 2]; 2]> {
        use Gate::*;
        let z = C64::ZERO;
        let o = C64::ONE;
        let i = C64::I;
        let s = std::f64::consts::FRAC_1_SQRT_2;
        Some(match *self {
            I => [[o, z], [z, o]],
            H => [[C64::real(s), C64::real(s)], [C64::real(s), C64::real(-s)]],
            X => [[z, o], [o, z]],
            Y => [[z, -i], [i, z]],
            Z => [[o, z], [z, -o]],
            S => [[o, z], [z, i]],
            Sdg => [[o, z], [z, -i]],
            T => [[o, z], [z, C64::cis(std::f64::consts::FRAC_PI_4)]],
            Tdg => [[o, z], [z, C64::cis(-std::f64::consts::FRAC_PI_4)]],
            Sx => [
                [C64::new(0.5, 0.5), C64::new(0.5, -0.5)],
                [C64::new(0.5, -0.5), C64::new(0.5, 0.5)],
            ],
            Sxdg => [
                [C64::new(0.5, -0.5), C64::new(0.5, 0.5)],
                [C64::new(0.5, 0.5), C64::new(0.5, -0.5)],
            ],
            Rx(t) => {
                let (c, sn) = ((t / 2.0).cos(), (t / 2.0).sin());
                [
                    [C64::real(c), C64::new(0.0, -sn)],
                    [C64::new(0.0, -sn), C64::real(c)],
                ]
            }
            Ry(t) => {
                let (c, sn) = ((t / 2.0).cos(), (t / 2.0).sin());
                [
                    [C64::real(c), C64::real(-sn)],
                    [C64::real(sn), C64::real(c)],
                ]
            }
            Rz(t) => [[C64::cis(-t / 2.0), z], [z, C64::cis(t / 2.0)]],
            P(t) => [[o, z], [z, C64::cis(t)]],
            U(theta, phi, lam) => {
                let (c, sn) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                [
                    [C64::real(c), -C64::cis(lam) * sn],
                    [C64::cis(phi) * sn, C64::cis(phi + lam) * c],
                ]
            }
            _ => return None,
        })
    }

    /// The 4x4 unitary matrix of a two-qubit gate, row-major, with the first
    /// operand as the most-significant qubit of the index (i.e. basis order
    /// `|q0 q1> = |00>, |01>, |10>, |11>`).
    ///
    /// Returns `None` for gates that are not two-qubit unitaries.
    pub fn matrix2(&self) -> Option<[[C64; 4]; 4]> {
        use Gate::*;
        let z = C64::ZERO;
        let o = C64::ONE;
        Some(match *self {
            Cx => [[o, z, z, z], [z, o, z, z], [z, z, z, o], [z, z, o, z]],
            Cz => [[o, z, z, z], [z, o, z, z], [z, z, o, z], [z, z, z, -o]],
            Cp(t) => [
                [o, z, z, z],
                [z, o, z, z],
                [z, z, o, z],
                [z, z, z, C64::cis(t)],
            ],
            Swap => [[o, z, z, z], [z, z, o, z], [z, o, z, z], [z, z, z, o]],
            Rxx(t) => {
                let (c, sn) = ((t / 2.0).cos(), (t / 2.0).sin());
                let (c, ms) = (C64::real(c), C64::new(0.0, -sn));
                [[c, z, z, ms], [z, c, ms, z], [z, ms, c, z], [ms, z, z, c]]
            }
            Ryy(t) => {
                let (c, sn) = ((t / 2.0).cos(), (t / 2.0).sin());
                let (c, ps, ms) = (C64::real(c), C64::new(0.0, sn), C64::new(0.0, -sn));
                [[c, z, z, ps], [z, c, ms, z], [z, ms, c, z], [ps, z, z, c]]
            }
            Rzz(t) => {
                let e = C64::cis(-t / 2.0);
                let f = C64::cis(t / 2.0);
                [[e, z, z, z], [z, f, z, z], [z, z, f, z], [z, z, z, e]]
            }
            _ => return None,
        })
    }
}

impl std::fmt::Display for Gate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.qasm_name())
        } else {
            let p: Vec<String> = params.iter().map(|x| format!("{x:.10}")).collect();
            write!(f, "{}({})", self.qasm_name(), p.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_unitary2(m: &[[C64; 2]; 2]) -> bool {
        // M * M^dagger == I
        let mut prod = [[C64::ZERO; 2]; 2];
        for r in 0..2 {
            for c in 0..2 {
                for (mrk, mck) in m[r].iter().zip(&m[c]) {
                    prod[r][c] += *mrk * mck.conj();
                }
            }
        }
        prod[0][0].approx_eq(C64::ONE, 1e-10)
            && prod[1][1].approx_eq(C64::ONE, 1e-10)
            && prod[0][1].approx_eq(C64::ZERO, 1e-10)
            && prod[1][0].approx_eq(C64::ZERO, 1e-10)
    }

    fn is_unitary4(m: &[[C64; 4]; 4]) -> bool {
        let mut ok = true;
        for r in 0..4 {
            for c in 0..4 {
                let mut e = C64::ZERO;
                for (mrk, mck) in m[r].iter().zip(&m[c]) {
                    e += *mrk * mck.conj();
                }
                let expect = if r == c { C64::ONE } else { C64::ZERO };
                ok &= e.approx_eq(expect, 1e-10);
            }
        }
        ok
    }

    #[test]
    fn all_one_qubit_matrices_are_unitary() {
        let gates = [
            Gate::I,
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Sx,
            Gate::Sxdg,
            Gate::Rx(0.7),
            Gate::Ry(-1.3),
            Gate::Rz(2.1),
            Gate::P(0.4),
            Gate::U(1.0, 2.0, 3.0),
        ];
        for g in gates {
            let m = g.matrix1().unwrap_or_else(|| panic!("{g:?} has no matrix"));
            assert!(is_unitary2(&m), "{g:?} matrix not unitary");
        }
    }

    #[test]
    fn all_two_qubit_matrices_are_unitary() {
        let gates = [
            Gate::Cx,
            Gate::Cz,
            Gate::Cp(0.9),
            Gate::Swap,
            Gate::Rxx(0.7),
            Gate::Ryy(1.1),
            Gate::Rzz(-0.5),
        ];
        for g in gates {
            let m = g.matrix2().unwrap();
            assert!(is_unitary4(&m), "{g:?} matrix not unitary");
        }
    }

    #[test]
    fn inverse_of_inverse_is_identity_variant() {
        let gates = [Gate::S, Gate::T, Gate::Sx, Gate::Rx(0.3), Gate::Cp(1.2)];
        for g in gates {
            assert_eq!(g.inverse().unwrap().inverse().unwrap(), g);
        }
        assert_eq!(Gate::Measure.inverse(), None);
        assert_eq!(Gate::Reset.inverse(), None);
    }

    #[test]
    fn gate_times_inverse_is_identity_matrix() {
        let gates = [
            Gate::H,
            Gate::S,
            Gate::T,
            Gate::Sx,
            Gate::Rx(0.8),
            Gate::Ry(0.8),
            Gate::Rz(0.8),
            Gate::U(0.5, 1.5, 2.5),
        ];
        for g in gates {
            let m = g.matrix1().unwrap();
            let inv = g.inverse().unwrap().matrix1().unwrap();
            let mut prod = [[C64::ZERO; 2]; 2];
            for r in 0..2 {
                for c in 0..2 {
                    for k in 0..2 {
                        prod[r][c] += m[r][k] * inv[k][c];
                    }
                }
            }
            // Allow a global phase: normalize by prod[0][0].
            let phase = prod[0][0];
            assert!(phase.norm() > 0.99, "{g:?}");
            assert!(prod[0][1].approx_eq(C64::ZERO, 1e-10));
            assert!(prod[1][0].approx_eq(C64::ZERO, 1e-10));
            assert!((prod[1][1] / phase).approx_eq(C64::ONE, 1e-10));
        }
    }

    #[test]
    fn u3_specializations_match_standard_gates() {
        use std::f64::consts::PI;
        // H = U(pi/2, 0, pi) up to global phase.
        let h = Gate::U(PI / 2.0, 0.0, PI).matrix1().unwrap();
        let href = Gate::H.matrix1().unwrap();
        for r in 0..2 {
            for c in 0..2 {
                assert!(
                    h[r][c].approx_eq(href[r][c], 1e-12),
                    "H mismatch at {r},{c}"
                );
            }
        }
        // X = U(pi, 0, pi).
        let x = Gate::U(PI, 0.0, PI).matrix1().unwrap();
        let xref = Gate::X.matrix1().unwrap();
        for r in 0..2 {
            for c in 0..2 {
                assert!(x[r][c].approx_eq(xref[r][c], 1e-12));
            }
        }
    }

    #[test]
    fn rzz_diagonal_structure() {
        let m = Gate::Rzz(1.0).matrix2().unwrap();
        // Diagonal entries for |00>,|11> equal e^{-i/2}; |01>,|10> equal e^{+i/2}.
        assert!(m[0][0].approx_eq(C64::cis(-0.5), 1e-12));
        assert!(m[3][3].approx_eq(C64::cis(-0.5), 1e-12));
        assert!(m[1][1].approx_eq(C64::cis(0.5), 1e-12));
        assert!(m[2][2].approx_eq(C64::cis(0.5), 1e-12));
    }

    #[test]
    fn kinds_and_arities() {
        assert_eq!(Gate::H.kind(), GateKind::OneQubitUnitary);
        assert_eq!(Gate::Cx.kind(), GateKind::TwoQubitUnitary);
        assert_eq!(Gate::Measure.kind(), GateKind::Measurement);
        assert_eq!(Gate::Reset.kind(), GateKind::Reset);
        assert_eq!(Gate::Barrier.kind(), GateKind::Barrier);
        assert_eq!(Gate::Measure.arity(), 1);
        assert_eq!(Gate::Swap.arity(), 2);
    }

    #[test]
    fn display_includes_params() {
        assert_eq!(Gate::H.to_string(), "h");
        assert!(Gate::Rz(0.5).to_string().starts_with("rz(0.5"));
    }
}
