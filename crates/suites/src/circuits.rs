//! A library of standard quantum circuits used by the comparison suites.

use std::f64::consts::PI;

use supermarq_circuit::Circuit;

// The arithmetic/oracle workloads (QFT, Bernstein-Vazirani, the Cuccaro
// ripple-carry adder, multi-controlled Z, Grover) are now first-class
// scored benchmarks; their generators live in the supermarq benchmark
// corpus and are re-exported here unchanged for the comparison suites.
pub use supermarq::benchmarks::corpus::{
    bernstein_vazirani, grover, multi_controlled_z, qft, ripple_adder,
};

/// Quantum teleportation of one qubit (3 qubits, with mid-circuit
/// measurement + classically-controlled corrections modeled as controlled
/// gates, the deferred-measurement form).
pub fn teleportation() -> Circuit {
    let mut c = Circuit::new(3);
    c.ry(0.9, 0); // state to teleport
    c.h(1).cx(1, 2); // Bell pair
    c.cx(0, 1).h(0);
    // Deferred corrections.
    c.cx(1, 2);
    c.cz(0, 2);
    c.measure_all();
    c
}

/// A random hardware-efficient layered circuit (QAOA-like brickwork) used
/// by CBG2021-style synthetic entries.
pub fn brickwork(n: usize, layers: usize, seed: u64) -> Circuit {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    assert!(n >= 2, "need at least two qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for layer in 0..layers {
        for q in 0..n {
            c.ry(rng.gen_range(-PI..PI), q);
            c.rz(rng.gen_range(-PI..PI), q);
        }
        let start = layer % 2;
        let mut i = start;
        while i + 1 < n {
            c.cz(i, i + 1);
            i += 2;
        }
    }
    c.measure_all();
    c
}

/// W-state preparation on `n` qubits (TriQ-style small application).
pub fn w_state(n: usize) -> Circuit {
    assert!(n >= 2, "need at least two qubits");
    let mut c = Circuit::new(n);
    // Cascade of controlled rotations distributing a single excitation.
    c.x(0);
    for k in 1..n {
        // Move amplitude sqrt((n-k)/(n-k+1)) of the remaining excitation
        // onto qubit k.
        let theta = 2.0 * (((n - k) as f64 / (n - k + 1) as f64).sqrt()).asin();
        // Controlled-Ry(theta) from k-1 to k, realized with ry/cx.
        c.ry(theta / 2.0, k);
        c.cx(k - 1, k);
        c.ry(-theta / 2.0, k);
        c.cx(k - 1, k);
        c.cx(k, k - 1);
    }
    c.measure_all();
    c
}

/// Quantum phase estimation of the eigenphase of `P(2 pi phase)` on the
/// `|1>` eigenstate, with `bits` counting qubits. The eigenstate qubit is
/// the last register position.
///
/// # Panics
///
/// Panics if `bits` is 0 or above 16.
pub fn phase_estimation(bits: usize, phase: f64) -> Circuit {
    assert!((1..=16).contains(&bits), "1..=16 counting qubits");
    let n = bits + 1;
    let target = bits;
    let mut c = Circuit::new(n);
    c.x(target); // eigenstate |1> of the phase gate
    for q in 0..bits {
        c.h(q);
    }
    // Controlled powers: counting qubit q applies P(2 pi phase * 2^q).
    for q in 0..bits {
        let angle = 2.0 * PI * phase * (1u64 << q) as f64;
        c.cp(angle, q, target);
    }
    // Inverse QFT on the counting register.
    for q in (0..bits).rev() {
        for later in (q + 1..bits).rev() {
            let k = (later - q) as i32;
            c.cp(-PI * 0.5f64.powi(k), later, q);
        }
        c.h(q);
    }
    for q in 0..bits {
        c.measure(q);
    }
    c
}

/// Deutsch–Jozsa on `n` data qubits with a balanced oracle defined by the
/// mask (`f(x) = parity(x & mask)`), or the constant-zero oracle when
/// `mask == 0`.
pub fn deutsch_jozsa(n: usize, mask: u64) -> Circuit {
    assert!((1..=60).contains(&n), "1..=60 data qubits");
    let mut c = Circuit::new(n + 1);
    c.x(n).h(n);
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n {
        if mask >> q & 1 == 1 {
            c.cx(q, n);
        }
    }
    for q in 0..n {
        c.h(q);
        c.measure(q);
    }
    c
}

/// Variational chemistry-style ansatz (PPL+2020 VQE-like entry).
pub fn uccsd_like(n: usize, seed: u64) -> Circuit {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    assert!(n >= 2, "need at least two qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.rx(rng.gen_range(-1.0..1.0), q);
    }
    // Pauli-evolution blocks: CX ladders with a middle RZ.
    for _ in 0..2 {
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        c.rz(rng.gen_range(-1.0..1.0), n - 1);
        for q in (0..n - 1).rev() {
            c.cx(q, q + 1);
        }
    }
    c.measure_all();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use supermarq_sim::Executor;

    #[test]
    fn qft_structure_and_unitarity() {
        let c = qft(4);
        assert_eq!(c.num_qubits(), 4);
        // n H's + n(n-1)/2 controlled-phases + n/2 swaps.
        assert_eq!(c.gate_count(), 4 + 6 + 2);
        // QFT of |0000> is the uniform superposition.
        let psi = Executor::final_state(&c).expect("unitary circuit");
        for p in psi.probabilities() {
            assert!((p - 1.0 / 16.0).abs() < 1e-12);
        }
    }

    #[test]
    fn qft_maps_basis_state_to_fourier_phases() {
        // QFT|1> on 2 qubits: amplitudes (1, i, -1, -i)/2 for input |01>...
        // verify via probability flatness + inverse round trip.
        let c = qft(3);
        let adj = c.adjoint().unwrap();
        let mut full = Circuit::new(3);
        full.x(0);
        full.extend_from(&c);
        full.extend_from(&adj);
        let psi = Executor::final_state(&full).expect("unitary circuit");
        assert!((psi.probability(0b001) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bernstein_vazirani_recovers_secret() {
        for secret in [0b101u64, 0b110, 0b011, 0b000] {
            let c = bernstein_vazirani(3, secret);
            let counts = Executor::noiseless().run(&c, 200, 1);
            // Data qubits (bits 0..3) must read the secret deterministically.
            for (bits, _) in counts.iter() {
                assert_eq!(bits & 0b111, secret, "secret={secret:03b} bits={bits:04b}");
            }
        }
    }

    #[test]
    fn multi_controlled_z_flips_only_all_ones() {
        for n in [2usize, 3, 4, 5] {
            let mut plus = Circuit::new(n);
            for q in 0..n {
                plus.h(q);
            }
            let before = Executor::final_state(&plus).expect("unitary circuit");
            let qubits: Vec<usize> = (0..n).collect();
            multi_controlled_z(&mut plus, &qubits);
            let after = Executor::final_state(&plus).expect("unitary circuit");
            let dim = 1usize << n;
            for i in 0..dim {
                let a = before.amplitudes()[i];
                let b = after.amplitudes()[i];
                if i == dim - 1 {
                    assert!((a + b).norm() < 1e-9, "n={n} i={i}: expected sign flip");
                } else {
                    assert!((a - b).norm() < 1e-9, "n={n} i={i}: expected unchanged");
                }
            }
        }
    }

    #[test]
    fn grover_amplifies_marked_element() {
        let n = 3;
        let marked = 0b101;
        let c = grover(n, marked);
        let counts = Executor::noiseless().run(&c, 4000, 5);
        let p_marked = counts.probability(marked);
        // One Grover iteration on 8 elements: ~78% success.
        assert!(p_marked > 0.5, "p={p_marked}");
    }

    #[test]
    fn teleportation_transfers_state() {
        // Compare qubit-2 marginal against direct preparation.
        let c = teleportation();
        let counts = Executor::noiseless().run(&c, 20000, 9).marginal(&[2]);
        let p1 = counts.probability(1);
        let expected = (0.45f64).sin().powi(2); // Ry(0.9) on |0>
        assert!((p1 - expected).abs() < 0.02, "p1={p1} expected={expected}");
    }

    #[test]
    fn w_state_has_single_excitation() {
        let n = 4;
        let c = w_state(n);
        let counts = Executor::noiseless().run(&c, 8000, 13);
        for (bits, count) in counts.iter() {
            assert_eq!(bits.count_ones(), 1, "bits={bits:04b} x{count}");
        }
        // Roughly uniform over the n one-hot outcomes.
        for q in 0..n {
            let p = counts.probability(1 << q);
            assert!((p - 1.0 / n as f64).abs() < 0.05, "q={q} p={p}");
        }
    }

    #[test]
    fn phase_estimation_recovers_dyadic_phase() {
        // phase = 3/8 is exactly representable with 3 counting bits: the
        // counting register must read 3 (big-endian weight 2^q per qubit q
        // in our convention: estimate = sum bits_q 2^q / 2^bits... verify
        // the dominant outcome decodes back to 3/8).
        let bits = 3;
        let c = phase_estimation(bits, 3.0 / 8.0);
        let counts = Executor::noiseless().run(&c, 2000, 3);
        let (top, _) = counts.most_common().unwrap();
        // Decode: counting qubit q carries weight 2^q; estimate = top / 2^bits
        // after bit-reversal of the inverse-QFT output ordering.
        let estimate = (top & 0b111) as f64 / 8.0;
        let alt = {
            // bit-reversed reading
            let mut v = 0u64;
            for q in 0..bits {
                if top >> q & 1 == 1 {
                    v |= 1 << (bits - 1 - q);
                }
            }
            v as f64 / 8.0
        };
        assert!(
            (estimate - 0.375).abs() < 1e-9 || (alt - 0.375).abs() < 1e-9,
            "top={top:03b} estimate={estimate} alt={alt}"
        );
        // The dominant outcome should be (near-)deterministic.
        assert!(counts.probability(top) > 0.9);
    }

    #[test]
    fn deutsch_jozsa_separates_constant_from_balanced() {
        // Constant oracle: all-zero data register, always.
        let c = deutsch_jozsa(4, 0);
        let counts = Executor::noiseless().run(&c, 500, 5);
        assert_eq!(counts.count(0), 500);
        // Balanced oracle: all-zero outcome never appears.
        let b = deutsch_jozsa(4, 0b1011);
        let counts = Executor::noiseless().run(&b, 500, 5);
        assert_eq!(counts.count(0), 0);
    }

    #[test]
    fn ripple_adder_is_well_formed() {
        let c = ripple_adder(2);
        assert_eq!(c.num_qubits(), 5);
        assert!(c.two_qubit_gate_count() > 10);
        assert_eq!(c.measurement_count(), 5);
    }

    #[test]
    fn brickwork_and_uccsd_are_deterministic_per_seed() {
        assert_eq!(brickwork(4, 3, 7), brickwork(4, 3, 7));
        assert_ne!(brickwork(4, 3, 7), brickwork(4, 3, 8));
        assert_eq!(uccsd_like(4, 1), uccsd_like(4, 1));
    }
}
