//! Comparison benchmark suites for the Table I coverage study.
//!
//! The paper compares SupermarQ's feature-space coverage against five other
//! suites: QASMBench, the synthetic single-feature suite, CBG2021, TriQ and
//! PPL+2020. Those suites' circuit corpora are regenerated here from
//! structural descriptions (QFT, Bernstein–Vazirani, adders, Grover,
//! teleportation, ...) at the sizes each suite used — Table I only needs
//! their *feature vectors*, so structurally equivalent circuits preserve
//! the comparison.

pub mod catalog;
pub mod circuits;

pub use catalog::{cbg2021_suite, ppl2020_suite, qasmbench_suite, supermarq_suite, triq_suite};
