//! The suite corpora compared in Table I.

use supermarq::benchmarks::{
    BitCodeBenchmark, GhzBenchmark, HamiltonianSimBenchmark, MerminBellBenchmark,
    PhaseCodeBenchmark, QaoaSwapBenchmark, QaoaVanillaBenchmark, VqeBenchmark,
};
use supermarq::{Benchmark, CircuitFamily};
use supermarq_circuit::Circuit;

use crate::circuits::{
    bernstein_vazirani, brickwork, deutsch_jozsa, grover, phase_estimation, qft, ripple_adder,
    teleportation, uccsd_like, w_state,
};

/// The SupermarQ corpus used for the Table I coverage computation:
/// instances of the eight applications "ranging in size from three to a
/// thousand qubits" (Sec. IV-G). The returned list is 52 circuits like the
/// paper's. Large instances are cheap because only *features* are ever
/// computed on them, never statevectors.
// 6.28 below is a round total-evolution-time pick, not an approximation of
// tau; swapping in the constant would silently change the corpus.
#[allow(clippy::approx_constant)]
pub fn supermarq_suite() -> Vec<Circuit> {
    let mut all: Vec<Circuit> = Vec::new();
    // GHZ: 3 -> 1000 qubits.
    for n in [3, 5, 10, 27, 100, 200, 400, 1000] {
        all.push(GhzBenchmark::new(n).circuits().remove(0));
    }
    // Mermin-Bell: term count is 2^{n-1}, keep to small n like the paper's
    // hardware runs.
    for n in [3, 4, 5, 6, 7, 9, 11] {
        all.push(MerminBellBenchmark::new(n).circuits().remove(0));
    }
    // Bit / phase codes across data-qubit counts and rounds.
    for (d, r) in [
        (2, 1),
        (2, 5),
        (3, 1),
        (3, 3),
        (5, 2),
        (11, 2),
        (51, 3),
        (251, 1),
    ] {
        all.push(
            BitCodeBenchmark::new(d, r, &vec![true; d])
                .circuits()
                .remove(0),
        );
        all.push(
            PhaseCodeBenchmark::new(d, r, &vec![true; d])
                .circuits()
                .remove(0),
        );
    }
    // QAOA (both ansatzes). The vanilla circuit is O(n^2) gates; cap size.
    for n in [4, 7, 11, 17, 50] {
        all.push(QaoaVanillaBenchmark::new(n, 1).circuits().remove(0));
        all.push(QaoaSwapBenchmark::new(n, 1).circuits().remove(0));
    }
    // VQE (optimization is classical and cheap at these sizes).
    for n in [4, 6, 8, 10] {
        all.push(VqeBenchmark::new(n, 1).circuits().remove(0));
    }
    // Hamiltonian simulation: wide and deep instances.
    for (n, steps) in [
        (4, 4),
        (7, 6),
        (10, 5),
        (27, 5),
        (100, 3),
        (500, 2),
        (1000, 1),
    ] {
        all.push(
            HamiltonianSimBenchmark::with_parameters(n, steps, 1.0, 1.0, 3.0, 6.28).circuits()[0]
                .clone(),
        );
    }
    all
}

/// The standard SupermarQ suite as trait objects (for harnesses that need
/// scoring, not just circuits).
pub fn supermarq_benchmarks_small() -> Vec<Box<dyn Benchmark>> {
    supermarq::benchmarks::standard_suite()
}

/// A QASMBench-like corpus: low-level algorithm circuits "from two to a
/// thousand qubits" across arithmetic, search, communication and
/// simulation categories.
pub fn qasmbench_suite() -> Vec<Circuit> {
    let mut all = Vec::new();
    for n in [3, 5, 10, 18, 50, 433, 1000] {
        all.push(qft(n));
    }
    for n in [3, 7, 15, 31, 60] {
        all.push(bernstein_vazirani(n, (1u64 << n) - 1));
    }
    for n in [2, 4, 8, 16, 64] {
        all.push(ripple_adder(n));
    }
    for n in [3, 5, 9] {
        all.push(grover(n, 1));
    }
    all.push(teleportation());
    for n in [3, 6, 12, 28, 127] {
        all.push(w_state(n));
    }
    for (n, layers, seed) in [(4, 2, 1), (8, 4, 2), (16, 8, 3), (30, 10, 4)] {
        all.push(brickwork(n, layers, seed));
    }
    for (n, seed) in [(4, 5), (8, 6), (12, 7)] {
        all.push(uccsd_like(n, seed));
    }
    // QASMBench also carries dynamic circuits (error-correction kernels,
    // teleportation with real mid-circuit measurement, qubit-reuse
    // kernels); without them its hull would be stuck in the Measurement=0
    // hyperplane.
    all.push(
        BitCodeBenchmark::new(3, 1, &[false, false, false])
            .circuits()
            .remove(0),
    );
    all.push(mid_circuit_teleportation());
    for bits in [3usize, 5, 8] {
        all.push(phase_estimation(bits, 0.3));
    }
    for n in [4usize, 10, 24] {
        all.push(deutsch_jozsa(n, (1u64 << n) - 1));
    }
    all
}

/// Teleportation in its dynamic-circuit form: Bell measurement mid-circuit
/// with the measured qubits reset for reuse (as in QASMBench's dynamic
/// kernels).
fn mid_circuit_teleportation() -> Circuit {
    let mut c = Circuit::new(3);
    c.ry(0.9, 0);
    c.h(1).cx(1, 2);
    c.cx(0, 1).h(0);
    c.measure(0).measure(1);
    c.reset(0).reset(1);
    c.cx(1, 2);
    c.cz(0, 2);
    c.measure(2);
    c
}

/// A CBG2021-like corpus: scalable gate-based benchmarks dominated by a
/// few structured families (the original uses ~10k generated circuits from
/// six families; ten family representatives reproduce its narrow feature
/// footprint).
pub fn cbg2021_suite() -> Vec<Circuit> {
    let mut all = Vec::new();
    for n in [4, 8, 12] {
        all.push(MerminBellBenchmark::new(4.min(n)).circuits().remove(0));
        all.push(qft(n));
    }
    for (n, layers) in [(6, 3), (10, 5)] {
        all.push(brickwork(n, layers, 11));
    }
    all.push(bernstein_vazirani(8, 0b1011_0110));
    all.push(grover(4, 3));
    all
}

/// The TriQ corpus: twelve small applications with at most eight qubits
/// (Murali et al., ISCA 2019).
pub fn triq_suite() -> Vec<Circuit> {
    vec![
        bernstein_vazirani(3, 0b101),
        bernstein_vazirani(6, 0b110101),
        qft(4),
        qft(6),
        grover(3, 0b010),
        w_state(4),
        teleportation(),
        ripple_adder(2),
        {
            let mut c = GhzBenchmark::new(4).circuits().remove(0);
            c.barrier_all();
            c
        },
        uccsd_like(4, 3),
        brickwork(4, 2, 13),
        w_state(6),
    ]
}

/// The PPL+2020 corpus: nine 3-to-5-qubit applications (Patel et al.,
/// SC 2020).
pub fn ppl2020_suite() -> Vec<Circuit> {
    vec![
        GhzBenchmark::new(3).circuits().remove(0),
        GhzBenchmark::new(5).circuits().remove(0),
        bernstein_vazirani(4, 0b1010),
        qft(3),
        qft(5),
        grover(3, 0b111),
        teleportation(),
        w_state(3),
        uccsd_like(4, 9),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use supermarq::coverage::coverage_of_features;
    use supermarq::FeatureVector;

    fn coverage(circuits: &[Circuit]) -> f64 {
        let features: Vec<FeatureVector> = circuits.iter().map(FeatureVector::of).collect();
        coverage_of_features(&features)
    }

    #[test]
    fn supermarq_corpus_has_52_circuits_spanning_3_to_1000_qubits() {
        let suite = supermarq_suite();
        assert_eq!(suite.len(), 52);
        let min = suite.iter().map(Circuit::num_qubits).min().unwrap();
        let max = suite.iter().map(Circuit::num_qubits).max().unwrap();
        assert!(min <= 5, "min={min}");
        assert!(max >= 1000, "max={max}");
    }

    #[test]
    fn suite_sizes_match_paper_table1() {
        assert_eq!(triq_suite().len(), 12);
        assert_eq!(ppl2020_suite().len(), 9);
        assert!(qasmbench_suite().len() > 20);
        assert_eq!(cbg2021_suite().len(), 10);
    }

    #[test]
    fn small_suites_stay_small_scale() {
        assert!(triq_suite().iter().all(|c| c.num_qubits() <= 8));
        assert!(ppl2020_suite().iter().all(|c| c.num_qubits() <= 6));
    }

    #[test]
    fn coverage_ordering_matches_table1() {
        // The paper's Table I ordering among realistic suites: SupermarQ >
        // QASMBench >> CBG2021 / TriQ / PPL+2020 (the latter three are
        // degenerate: zero exact volume). The paper's SupermarQ:QASMBench
        // ratio is 9.0/4.0 = 2.25; ours lands close. The synthetic
        // unit-vector suite is the one place our more conservative feature
        // definitions deviate: its corners (e.g. Parallelism = 1 with
        // Liveness = 0) are unphysical, so real suites cannot enclose them;
        // we assert same order of magnitude instead of strict dominance
        // (see EXPERIMENTS.md).
        let v_supermarq = coverage(&supermarq_suite());
        let v_qasm = coverage(&qasmbench_suite());
        let synthetic = coverage_of_features(&supermarq::coverage::synthetic_suite_features());
        let v_cbg = coverage(&cbg2021_suite());
        let v_triq = coverage(&triq_suite());
        let v_ppl = coverage(&ppl2020_suite());
        assert!(
            v_supermarq > v_qasm,
            "supermarq={v_supermarq} qasm={v_qasm}"
        );
        let ratio = v_supermarq / v_qasm;
        assert!((1.5..=3.5).contains(&ratio), "ratio={ratio} (paper: 2.25)");
        assert!(
            v_supermarq > 0.5 * synthetic,
            "supermarq={v_supermarq} synthetic={synthetic}"
        );
        assert_eq!(v_cbg, 0.0, "cbg={v_cbg}");
        assert_eq!(v_triq, 0.0, "triq={v_triq}");
        assert_eq!(v_ppl, 0.0, "ppl={v_ppl}");
        // Joggled volumes (qhull QJ analogue) for the degenerate suites sit
        // orders of magnitude below everything else, like the paper's
        // 1e-8..1e-15 rows.
        use supermarq_geometry::hull_volume_joggled;
        for (name, suite) in [
            ("cbg", cbg2021_suite()),
            ("triq", triq_suite()),
            ("ppl", ppl2020_suite()),
        ] {
            let pts: Vec<Vec<f64>> = suite
                .iter()
                .map(|c| FeatureVector::of(c).to_vec())
                .collect();
            let v = hull_volume_joggled(&pts, 1e-3, 7);
            assert!(v < 1e-6, "{name}={v}");
        }
    }
}
