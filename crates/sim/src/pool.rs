//! Thread-local recycling of amplitude buffers.
//!
//! Statevector workloads allocate in one unusual shape: a small number of
//! large (megabytes to a gigabyte), identically-sized buffers with short
//! lifetimes — one per [`crate::StateVector`] plus one transient output
//! buffer per fused permutation pass. Round-tripping those through the
//! system allocator is not just a `malloc` cost: freeing a
//! multi-megabyte block at the top of the heap makes glibc return the
//! pages to the kernel (heap trimming), so the *next* statevector pays a
//! soft page fault plus a kernel page-zeroing for every 4 KiB page it
//! touches. Measured on the repeated-`final_state` loop the bench suite
//! runs, that tax was ~2.5 ms per 18-qubit iteration — twice the cost of
//! the actual simulation.
//!
//! The pool keeps the last few retired buffers per thread and hands them
//! back on the next request, so steady-state simulation performs no large
//! allocations at all. Buffers below [`MIN_RECYCLE_LEN`] bypass the pool:
//! small blocks are served from allocator free lists without trimming,
//! and pooling them would only add bookkeeping.
//!
//! The pool is thread-local, so no locks are taken and trajectory workers
//! each warm their own pool. Recycled memory is handed out with length 0
//! and unspecified contents; callers (re)initialize every element they
//! use.

use std::cell::RefCell;
use supermarq_circuit::C64;

/// Buffers retained per thread. The deepest steady-state cycle (live
/// state + permutation output + a just-dropped result) keeps three
/// buffers in flight.
const MAX_POOLED: usize = 3;

/// Smallest buffer (in elements) worth pooling: 2^12 amplitudes = 64 KiB,
/// below glibc's default mmap/trim thresholds.
const MIN_RECYCLE_LEN: usize = 1 << 12;

thread_local! {
    static POOL: RefCell<Vec<Vec<C64>>> = const { RefCell::new(Vec::new()) };
}

/// Returns an empty buffer with capacity at least `len`, reusing a
/// retired one when possible (best fit: the smallest adequate buffer, so
/// a gigabyte retiree is not wasted on a kilobyte request).
pub(crate) fn take(len: usize) -> Vec<C64> {
    if len >= MIN_RECYCLE_LEN {
        let hit = POOL.with(|p| {
            let mut p = p.borrow_mut();
            let best = p
                .iter()
                .enumerate()
                .filter(|(_, v)| v.capacity() >= len)
                .min_by_key(|(_, v)| v.capacity())
                .map(|(i, _)| i);
            best.map(|i| p.swap_remove(i))
        });
        if let Some(mut v) = hit {
            v.clear();
            return v;
        }
    }
    Vec::with_capacity(len)
}

/// Retires a buffer into the thread's pool. Small buffers are dropped
/// outright; when the pool is full, the new buffer replaces the smallest
/// retained one if it is larger (so the pool adapts upward through a
/// growing qubit sweep instead of pinning to early small sizes).
pub(crate) fn recycle(v: Vec<C64>) {
    if v.capacity() < MIN_RECYCLE_LEN {
        return;
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < MAX_POOLED {
            p.push(v);
        } else if let Some(smallest) = p.iter_mut().min_by_key(|b| b.capacity()) {
            if smallest.capacity() < v.capacity() {
                *smallest = v;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unique size so parallel tests sharing a thread pool can't collide.
    const BIG: usize = (1 << 15) + 160;

    #[test]
    fn recycled_allocation_is_reused() {
        let mut v = take(BIG);
        v.resize(BIG, C64::ZERO);
        let ptr = v.as_ptr();
        recycle(v);
        let again = take(BIG);
        assert_eq!(again.as_ptr(), ptr, "expected the recycled allocation");
        assert!(again.is_empty());
        assert!(again.capacity() >= BIG);
    }

    #[test]
    fn small_buffers_bypass_the_pool() {
        let small = MIN_RECYCLE_LEN / 2;
        let mut v = take(small);
        v.resize(small, C64::ZERO);
        let ptr = v.as_ptr();
        recycle(v);
        // A pooled hit would hand the same allocation back; a bypass gives
        // a fresh (or at least not-pool-tracked) one. We can only assert
        // the observable contract: capacity is still honored.
        let again = take(small);
        assert!(again.capacity() >= small);
        let _ = ptr; // pointer reuse is allowed here (allocator's choice)
    }

    #[test]
    fn take_never_returns_undersized_buffers() {
        // Retire a buffer, then ask for something bigger than it.
        let mut v = take(MIN_RECYCLE_LEN);
        v.resize(MIN_RECYCLE_LEN, C64::ZERO);
        recycle(v);
        let bigger = take(4 * MIN_RECYCLE_LEN + 7);
        assert!(bigger.capacity() >= 4 * MIN_RECYCLE_LEN + 7);
    }

    #[test]
    fn full_pool_prefers_larger_buffers() {
        // Fill the pool with small-ish buffers, then retire a larger one:
        // it must displace a smaller buffer rather than be dropped.
        for _ in 0..MAX_POOLED {
            let mut v = Vec::with_capacity(MIN_RECYCLE_LEN);
            v.resize(MIN_RECYCLE_LEN, C64::ZERO);
            recycle(v);
        }
        let big: Vec<C64> = Vec::with_capacity(8 * MIN_RECYCLE_LEN);
        let ptr = big.as_ptr();
        recycle(big);
        let back = take(8 * MIN_RECYCLE_LEN);
        assert_eq!(back.as_ptr(), ptr, "larger retiree should stay pooled");
    }
}
