//! Statevector simulation with trajectory-based noise for the SupermarQ
//! reproduction.
//!
//! The paper's artifact replaces real quantum hardware with noisy circuit
//! simulation; this crate is that substrate. It provides:
//!
//! * [`StateVector`] — an exact `2^n` statevector with gate application,
//!   projective measurement, reset, sampling and Pauli expectations. Gate
//!   kernels are SIMD-lane inner loops chunked across the thread pool for
//!   large states (amplitudes stay bit-identical at any thread count);
//! * [`NoiseModel`] — stochastic (quantum-trajectory) error channels:
//!   depolarizing noise after each gate, thermal relaxation (amplitude
//!   damping + dephasing) on idle qubits derived from `T1`/`T2` and gate
//!   durations, readout error, reset error, and a crosstalk penalty for
//!   simultaneous two-qubit gates;
//! * [`Executor`] — runs a circuit for a number of shots and returns
//!   [`Counts`], re-simulating per shot when noise or mid-circuit
//!   measurement makes trajectories differ. Shots run in parallel on a
//!   rayon pool with a deterministic per-shot RNG stream derived from
//!   `(seed, shot_index)`, so results are bit-identical regardless of
//!   thread count (`RAYON_NUM_THREADS` tunes the pool);
//! * [`krylov`] — Lanczos/Krylov `exp(-iHt)|psi>` reference evolution used
//!   to score the Hamiltonian-simulation benchmark against exact dynamics.
//!
//! # Example
//!
//! ```
//! use supermarq_circuit::Circuit;
//! use supermarq_sim::{Executor, NoiseModel};
//!
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1).measure_all();
//! let counts = Executor::noiseless().run(&bell, 1000, 7);
//! // Only |00> and |11> appear for a noiseless Bell state.
//! assert!(counts.iter().all(|(k, _)| k == 0b00 || k == 0b11));
//! let _noisy = Executor::new(NoiseModel::uniform_depolarizing(0.01)).run(&bell, 100, 7);
//! ```

mod chunk;
pub mod counts;
pub mod density;
pub mod executor;
mod fusion;
pub mod krylov;
pub mod noise;
mod pool;
mod simd;
pub mod state;

pub use counts::Counts;
pub use density::DensityMatrix;
pub use executor::{ExecError, Executor};
pub use noise::NoiseModel;
pub use state::{CumulativeSampler, StateVector, MAX_QUBITS, MIN_NORM_SQR};
