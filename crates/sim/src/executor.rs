//! Shot-based circuit execution.
//!
//! Shots are embarrassingly parallel: each one draws from its own RNG
//! stream derived deterministically from `(seed, shot_index)` with a
//! SplitMix-style mix, so per-shot results do not depend on which worker
//! thread runs them or in what order. Shots are split into one
//! contiguous batch per worker thread; per-batch partial histograms are
//! merged with [`Counts::merge`] (commutative integer addition into an
//! ordered map), making the final [`Counts`] bit-identical for a fixed
//! seed regardless of thread count or batch partition —
//! `RAYON_NUM_THREADS=1` and a full pool agree exactly. Each batch is
//! wrapped in a `sim.batch` tracing span parented (cross-thread) to the
//! enclosing `sim.run`; tracing never affects the partition or the
//! per-shot RNG streams, so results are byte-identical with tracing on
//! or off.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::fmt;
use supermarq_obs::{counter, Span};

use crate::counts::Counts;
use crate::fusion::{fuse_1q_runs, fuse_permutation_runs, FusedOp};
use crate::noise::NoiseModel;
use crate::state::{CumulativeSampler, StateVector};
use supermarq_circuit::{Circuit, CircuitLayers, Gate, GateKind};

/// Typed failure of the executor's unitary-only evaluation paths.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The circuit contains an instruction (currently: `Reset`) that the
    /// unitary-only paths cannot evaluate; trajectory simulation can.
    UnsupportedInstruction {
        /// Index of the offending instruction in the circuit.
        index: usize,
        /// The offending gate.
        gate: Gate,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnsupportedInstruction { index, gate } => write!(
                f,
                "instruction {index} ({gate:?}) is not supported on the unitary-only \
                 evaluation path; use trajectory simulation"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// Executes circuits for a number of shots under a [`NoiseModel`].
///
/// When the model is ideal and the circuit contains no mid-circuit
/// measurement or reset, the final state is computed once and sampled
/// `shots` times through a precomputed cumulative-probability table;
/// otherwise each shot is an independent quantum trajectory.
///
/// # Example
///
/// ```
/// use supermarq_circuit::Circuit;
/// use supermarq_sim::Executor;
///
/// let mut c = Circuit::new(1);
/// c.h(0).measure(0);
/// let counts = Executor::noiseless().run(&c, 2000, 42);
/// assert_eq!(counts.total(), 2000);
/// let p0 = counts.probability(0);
/// assert!((p0 - 0.5).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Executor {
    noise: NoiseModel,
}

/// Derives the independent RNG stream for one shot: a SplitMix64-style
/// finalizer over `(seed, shot_index)` feeding the generator's own seed
/// expansion, so neighboring shot indices land in uncorrelated streams.
fn shot_rng(seed: u64, shot: u64) -> StdRng {
    let mut z = seed ^ shot.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

impl Executor {
    /// An executor with the given noise model.
    pub fn new(noise: NoiseModel) -> Self {
        Executor { noise }
    }

    /// A noiseless executor.
    pub fn noiseless() -> Self {
        Executor {
            noise: NoiseModel::ideal(),
        }
    }

    /// The executor's noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Runs `circuit` for `shots` shots with a deterministic RNG seed and
    /// returns the histogram of classical-register values.
    ///
    /// Shots fan out over the rayon pool; each draws from its own
    /// deterministic RNG stream (see the module docs), so the result is
    /// bit-identical for a fixed seed regardless of thread count.
    ///
    /// # Panics
    ///
    /// Panics if the circuit exceeds the simulator's qubit limit.
    pub fn run(&self, circuit: &Circuit, shots: usize, seed: u64) -> Counts {
        let n = circuit.num_qubits();
        let needs_trajectories = !self.noise.is_ideal() || has_nonfinal_collapse(circuit);
        let run_span = Span::open("sim.run")
            .with("shots", shots)
            .with("qubits", n)
            .with("trajectories", needs_trajectories);
        counter!("sim.shots").add(shots as u64);
        // Batch spans close on pool worker threads, which have no
        // thread-current span; parent them to sim.run explicitly and
        // hand over the active trace, if any.
        let parent = run_span.id();
        let trace = supermarq_obs::current_trace();
        let batches = batch_ranges(shots);
        if !needs_trajectories {
            // Single pass: apply unitaries once (with 1q runs fused), then
            // sample measured qubits from the final state by binary search
            // over a precomputed cumulative-probability table.
            match Self::fast_path_state(circuit) {
                Ok((state, measured_mask)) => {
                    let sampler = CumulativeSampler::new(&state);
                    let partials: Vec<Counts> = batches
                        .into_par_iter()
                        .map(|batch| {
                            let _span = Span::open_with_link("sim.batch", parent, trace)
                                .with("shots", batch.len());
                            let mut acc = Counts::new(n);
                            for shot in batch {
                                let mut rng = shot_rng(seed, shot as u64);
                                acc.record(sampler.sample(&mut rng) & measured_mask);
                            }
                            acc
                        })
                        .collect();
                    return merge_counts(n, partials);
                }
                Err(_) => {
                    // Unreachable today (`has_nonfinal_collapse` routes every
                    // reset-bearing circuit to trajectories), but degrade
                    // gracefully instead of aborting a sweep if the fast-path
                    // eligibility check and the evaluator ever disagree.
                    counter!("sim.fast_path_fallbacks").incr();
                }
            }
        }
        counter!("sim.trajectories").add(shots as u64);
        let layers = CircuitLayers::of(circuit);
        let partials: Vec<Counts> = batches
            .into_par_iter()
            .map(|batch| {
                let _span = Span::open_with_link("sim.batch", parent, trace)
                    .with("shots", batch.len())
                    .with("trajectories", true);
                let mut acc = Counts::new(n);
                for shot in batch {
                    let mut rng = shot_rng(seed, shot as u64);
                    acc.record(self.run_trajectory(circuit, &layers, &mut rng));
                }
                acc
            })
            .collect();
        merge_counts(n, partials)
    }

    /// Applies the unitary part of `circuit` (with adjacent one-qubit
    /// gates fused into single matrix applications) for the noiseless fast
    /// path, returning the final state and the mask of measured qubits.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnsupportedInstruction`] if the circuit
    /// contains a reset: `run` routes reset-bearing circuits through
    /// trajectory simulation via `has_nonfinal_collapse`, and falls back
    /// to it should this error ever surface anyway.
    fn fast_path_state(circuit: &Circuit) -> Result<(StateVector, u64), ExecError> {
        let (ops, fused_1q) = fuse_1q_runs(circuit);
        let (ops, fused_perm) = fuse_permutation_runs(ops, circuit.num_qubits());
        let fused_away = fused_1q + fused_perm;
        let _span = Span::open("sim.unitary_eval")
            .with("qubits", circuit.num_qubits())
            .with("ops", ops.len())
            .with("gates_fused", fused_away);
        counter!("sim.fusion.gates_saved").add(fused_away as u64);
        let mut state = StateVector::zero_state(circuit.num_qubits());
        let mut measured_mask = 0u64;
        for op in &ops {
            match op {
                FusedOp::Fused1q { qubit, matrix } => state.apply_matrix1(matrix, *qubit),
                FusedOp::Permutation { cols, offset } => state.permute_amps(cols, *offset),
                FusedOp::Instr { index, instr } => match instr.gate.kind() {
                    GateKind::OneQubitUnitary | GateKind::TwoQubitUnitary => {
                        state.apply_instruction(instr);
                    }
                    GateKind::Measurement => measured_mask |= 1 << instr.qubits[0],
                    GateKind::Reset => {
                        return Err(ExecError::UnsupportedInstruction {
                            index: *index,
                            gate: instr.gate,
                        })
                    }
                    GateKind::Barrier => {}
                },
            }
        }
        Ok((state, measured_mask))
    }

    /// Runs a single noisy trajectory over a precomputed layering and
    /// returns the classical register.
    fn run_trajectory(&self, circuit: &Circuit, layers: &CircuitLayers, rng: &mut StdRng) -> u64 {
        let n = circuit.num_qubits();
        let mut state = StateVector::zero_state(n);
        let mut classical = 0u64;
        let instrs = circuit.instructions();
        let track_relaxation = self.noise.t1.is_finite() || self.noise.t2.is_finite();
        for layer in layers.layers() {
            // Count simultaneous 2q gates for the crosstalk penalty and find
            // the layer duration.
            let mut two_q_gates = 0usize;
            let mut layer_duration = 0.0f64;
            for &i in layer {
                let instr = &instrs[i];
                if instr.is_two_qubit() {
                    two_q_gates += 1;
                }
                layer_duration = layer_duration.max(self.noise.duration_of(&instr.gate));
            }
            let mut busy_time = vec![0.0f64; n];
            for &i in layer {
                let instr = &instrs[i];
                let duration = self.noise.duration_of(&instr.gate);
                for &q in &instr.qubits {
                    busy_time[q] = busy_time[q].max(duration);
                }
                match instr.gate.kind() {
                    GateKind::OneQubitUnitary => {
                        state.apply_instruction(instr);
                        self.noise
                            .apply_depolarizing_1q(&mut state, instr.qubits[0], rng);
                    }
                    GateKind::TwoQubitUnitary => {
                        state.apply_instruction(instr);
                        self.noise.apply_depolarizing_2q(
                            &mut state,
                            [instr.qubits[0], instr.qubits[1]],
                            two_q_gates,
                            rng,
                        );
                    }
                    GateKind::Measurement => {
                        let q = instr.qubits[0];
                        let bit = state.measure_qubit(q, rng);
                        let recorded = self.noise.flip_readout(q, bit, rng);
                        if recorded {
                            classical |= 1 << q;
                        } else {
                            classical &= !(1 << q);
                        }
                    }
                    GateKind::Reset => {
                        let q = instr.qubits[0];
                        state.reset_qubit(q, rng);
                        self.noise.apply_reset_error(&mut state, q, rng);
                    }
                    GateKind::Barrier => {
                        unreachable!("CircuitLayers never schedules barrier pseudo-gates")
                    }
                }
            }
            // Idle decoherence: every qubit decays for the part of the layer
            // it spent waiting.
            if track_relaxation && layer_duration > 0.0 {
                for (q, &busy) in busy_time.iter().enumerate() {
                    let idle = layer_duration - busy;
                    if idle > 0.0 {
                        self.noise.apply_relaxation(&mut state, q, idle, rng);
                    }
                }
            }
        }
        classical
    }

    /// Computes the exact final state of the unitary part of `circuit`
    /// (ignoring measurements), for noiseless reference values. Runs of
    /// adjacent one-qubit gates are fused into single matrix applications
    /// first.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnsupportedInstruction`] if the circuit
    /// contains a reset — a reset-bearing circuit has no single final
    /// state; evaluate it with trajectory simulation ([`Executor::run`])
    /// instead.
    pub fn final_state(circuit: &Circuit) -> Result<StateVector, ExecError> {
        Ok(Self::fast_path_state(circuit)?.0)
    }
}

/// Splits `0..shots` into one contiguous range per worker thread
/// (`shots.div_ceil(threads)` shots each, matching the rayon stand-in's
/// own chunking). The partition only groups work: per-shot RNG streams
/// depend solely on the shot index, and [`Counts::merge`] is commutative
/// addition, so any partition yields bit-identical results.
fn batch_ranges(shots: usize) -> Vec<std::ops::Range<usize>> {
    if shots == 0 {
        return Vec::new();
    }
    let chunk = shots.div_ceil(rayon::current_num_threads()).max(1);
    (0..shots.div_ceil(chunk))
        .map(|i| (i * chunk)..((i + 1) * chunk).min(shots))
        .collect()
}

/// Merges per-batch partial histograms in batch order.
fn merge_counts(num_qubits: usize, partials: Vec<Counts>) -> Counts {
    let mut total = Counts::new(num_qubits);
    for partial in &partials {
        total.merge(partial);
    }
    total
}

/// `true` if a measurement or reset is followed by later non-measurement
/// activity on any qubit (which forces per-shot trajectory simulation).
fn has_nonfinal_collapse(circuit: &Circuit) -> bool {
    let mut seen_collapse = false;
    for instr in circuit.iter() {
        match instr.gate.kind() {
            GateKind::Reset => return true,
            GateKind::Measurement => seen_collapse = true,
            GateKind::Barrier => {}
            _ => {
                if seen_collapse {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_bell_state_counts() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let counts = Executor::noiseless().run(&c, 4000, 11);
        assert_eq!(counts.total(), 4000);
        assert_eq!(counts.count(0b01) + counts.count(0b10), 0);
        let p00 = counts.probability(0b00);
        assert!((p00 - 0.5).abs() < 0.05, "p00={p00}");
    }

    #[test]
    fn unmeasured_qubits_report_zero() {
        let mut c = Circuit::new(2);
        c.x(0).x(1).measure(0); // only qubit 0 measured
        let counts = Executor::noiseless().run(&c, 10, 1);
        assert_eq!(counts.count(0b01), 10);
    }

    #[test]
    fn mid_circuit_measurement_forces_trajectories() {
        // Measure |+> then CNOT conditioned on the *quantum* state: the
        // post-measurement state is classical, so qubit 1 copies qubit 0.
        let mut c = Circuit::new(2);
        c.h(0).measure(0).cx(0, 1).measure(1);
        let counts = Executor::noiseless().run(&c, 2000, 5);
        for (bits, _) in counts.iter() {
            let b0 = bits & 1;
            let b1 = (bits >> 1) & 1;
            assert_eq!(b0, b1, "bits={bits:02b}");
        }
    }

    #[test]
    fn reset_clears_qubit() {
        let mut c = Circuit::new(1);
        c.x(0).reset(0).measure(0);
        let counts = Executor::noiseless().run(&c, 100, 9);
        assert_eq!(counts.count(0), 100);
    }

    #[test]
    fn depolarizing_noise_degrades_ghz_fidelity() {
        let n = 4;
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        c.measure_all();
        let ideal = Executor::noiseless().run(&c, 2000, 3);
        let noisy = Executor::new(NoiseModel::uniform_depolarizing(0.05)).run(&c, 2000, 3);
        let good = |counts: &Counts| {
            (counts.count(0) + counts.count((1 << n) - 1)) as f64 / counts.total() as f64
        };
        assert!(good(&ideal) > 0.99);
        assert!(good(&noisy) < 0.95);
        assert!(good(&noisy) > 0.3);
    }

    #[test]
    fn readout_error_flips_deterministic_outcome() {
        let mut c = Circuit::new(1);
        c.x(0).measure(0);
        let noise = NoiseModel {
            readout_error: 0.2,
            ..NoiseModel::ideal()
        };
        let counts = Executor::new(noise).run(&c, 5000, 13);
        let flip_rate = counts.probability(0);
        assert!((flip_rate - 0.2).abs() < 0.03, "flip_rate={flip_rate}");
    }

    #[test]
    fn relaxation_during_long_measurement_damages_idle_qubit() {
        let make_noise = || {
            let mut nm = NoiseModel::ideal();
            nm.t1 = 5.0;
            nm.durations.measurement = 5.0;
            nm.durations.one_qubit = 0.0;
            nm
        };
        // Parallel measurement: barrier puts both measures in one layer, so
        // qubit 1 never idles next to a long readout and survives in |1>.
        let mut parallel = Circuit::new(2);
        parallel.x(1).barrier_all().measure(0).measure(1);
        let counts_parallel = Executor::new(make_noise()).run(&parallel, 4000, 17);
        // Serialized: qubit 1 idles for the 5 us of qubit 0's readout, which
        // equals T1, so it decays with probability 1 - exp(-1) ~ 0.63.
        let mut serial = Circuit::new(2);
        serial.x(1).measure(0).barrier_all().measure(1);
        let counts_serial = Executor::new(make_noise()).run(&serial, 4000, 17);
        let survival_parallel = counts_parallel.marginal(&[1]).probability(1);
        let survival_serial = counts_serial.marginal(&[1]).probability(1);
        assert!(
            survival_parallel > 0.95,
            "parallel survival {survival_parallel}"
        );
        assert!(
            (survival_serial - (-1.0f64).exp()).abs() < 0.05,
            "serial survival {survival_serial}"
        );
    }

    #[test]
    fn final_state_ignores_measurements() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let psi = Executor::final_state(&c).expect("unitary circuit");
        assert!((psi.probability(0b00) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn final_state_rejects_reset_with_typed_error() {
        let mut c = Circuit::new(1);
        c.x(0).reset(0);
        let err = Executor::final_state(&c).expect_err("reset is unsupported");
        assert_eq!(
            err,
            ExecError::UnsupportedInstruction {
                index: 1,
                gate: Gate::Reset,
            }
        );
        // The Display form names the instruction for sweep-level reporting.
        assert!(format!("{err}").contains("instruction 1"), "{err}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).measure_all();
        let noise = NoiseModel::uniform_depolarizing(0.02);
        let a = Executor::new(noise.clone()).run(&c, 500, 99);
        let b = Executor::new(noise).run(&c, 500, 99);
        assert_eq!(a, b);
    }

    /// A noisy circuit with mid-circuit measurement and reset: the fully
    /// general trajectory path.
    fn mid_circuit_noisy() -> (Circuit, NoiseModel) {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).measure(1).reset(1).cx(1, 2).measure_all();
        let mut noise = NoiseModel::uniform_depolarizing(0.02);
        noise.readout_error = 0.01;
        noise.t1 = 200.0;
        (c, noise)
    }

    fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(f)
    }

    #[test]
    fn counts_bit_identical_across_thread_counts_trajectory_path() {
        let (c, noise) = mid_circuit_noisy();
        let exec = Executor::new(noise);
        let single = with_threads(1, || exec.run(&c, 700, 41));
        for threads in [2, 4, 8] {
            let multi = with_threads(threads, || exec.run(&c, 700, 41));
            assert_eq!(single, multi, "threads={threads}");
        }
        // And against the ambient (default-pool) configuration.
        assert_eq!(single, exec.run(&c, 700, 41));
    }

    #[test]
    fn counts_bit_identical_across_thread_counts_fast_path() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3).measure_all();
        let exec = Executor::noiseless();
        let single = with_threads(1, || exec.run(&c, 1000, 17));
        for threads in [2, 4, 8] {
            let multi = with_threads(threads, || exec.run(&c, 1000, 17));
            assert_eq!(single, multi, "threads={threads}");
        }
        assert_eq!(single, exec.run(&c, 1000, 17));
    }

    #[test]
    fn shot_streams_are_independent_of_shot_count() {
        // Stream derivation is per-shot, so a prefix of shots yields a
        // sub-histogram of the longer run.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let exec = Executor::new(NoiseModel::uniform_depolarizing(0.05));
        let long = exec.run(&c, 400, 7);
        let short = exec.run(&c, 100, 7);
        assert_eq!(long.total(), 400);
        assert_eq!(short.total(), 100);
        for (bits, count) in short.iter() {
            assert!(count <= long.count(bits), "bits={bits:02b}");
        }
    }

    #[test]
    fn fast_path_names_the_offending_reset_instruction() {
        let mut c = Circuit::new(1);
        c.x(0).reset(0).measure(0);
        // `run` never routes reset-bearing circuits here; call the helper
        // directly to pin the typed error and its instruction index.
        let err = Executor::fast_path_state(&c).expect_err("reset is unsupported");
        assert_eq!(
            err,
            ExecError::UnsupportedInstruction {
                index: 1,
                gate: Gate::Reset,
            }
        );
    }

    #[test]
    fn fusion_preserves_fast_path_counts() {
        // A circuit with long fusable 1q runs: the fused evaluation must
        // agree with applying every gate individually.
        let mut c = Circuit::new(3);
        c.h(0)
            .t(0)
            .s(0)
            .h(1)
            .x(1)
            .cx(0, 1)
            .h(2)
            .t(2)
            .h(0)
            .measure_all();
        let (fused_state, _) = Executor::fast_path_state(&c).expect("unitary circuit");
        let mut unfused = StateVector::zero_state(3);
        for instr in c.iter() {
            if instr.gate.is_unitary() {
                unfused.apply_instruction(instr);
            }
        }
        assert!(
            fused_state.fidelity(&unfused) > 1.0 - 1e-12,
            "fused and unfused states diverge"
        );
    }

    #[test]
    fn circuit_layers_never_schedule_barriers() {
        // The trajectory loop's Barrier arm is unreachable because the
        // layering drops barriers; pin that contract here.
        let mut c = Circuit::new(2);
        c.h(0).barrier_all().x(1).barrier_all().measure_all();
        let layers = CircuitLayers::of(&c);
        let instrs = c.instructions();
        for layer in layers.layers() {
            for &i in layer {
                assert_ne!(instrs[i].gate.kind(), GateKind::Barrier);
            }
        }
        // And the executor handles barrier-bearing noisy circuits fine.
        let counts = Executor::new(NoiseModel::uniform_depolarizing(0.01)).run(&c, 50, 3);
        assert_eq!(counts.total(), 50);
    }
}
