//! Exact density-matrix simulation with Kraus channels.
//!
//! The trajectory executor ([`crate::Executor`]) samples noise
//! stochastically; this module evolves the full density matrix
//! `rho -> sum_k K_k rho K_k^dagger` exactly, with no sampling error. It
//! serves two purposes:
//!
//! * **validation** — trajectory averages must converge to the exact
//!   channel (tested here and in the integration suite);
//! * **small-instance scoring** — exact noisy output distributions for
//!   benchmarks of ≤ ~10 qubits, useful when shot noise would obscure an
//!   ablation.
//!
//! Memory is `4^n` amplitudes, so the register limit is half the
//! statevector simulator's.

use supermarq_circuit::{Circuit, Gate, GateKind, C64};

use crate::noise::NoiseModel;

/// Maximum density-matrix register size (`4^13` complex entries = 1 GiB).
pub const MAX_DENSITY_QUBITS: usize = 13;

/// An exact `2^n x 2^n` density matrix, row-major, little-endian qubit
/// indexing (matching [`crate::StateVector`]).
///
/// # Example
///
/// ```
/// use supermarq_sim::DensityMatrix;
/// use supermarq_circuit::Gate;
///
/// let mut rho = DensityMatrix::zero_state(1);
/// rho.apply_gate(&Gate::H, &[0]);
/// rho.depolarize(0, 0.75); // p = 3/4 fully mixes: rho -> I/2
/// assert!((rho.probability_of_basis(0) - 0.5).abs() < 1e-12);
/// assert!((rho.purity() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    num_qubits: usize,
    dim: usize,
    /// Row-major `dim x dim` matrix.
    elems: Vec<C64>,
}

impl DensityMatrix {
    /// The pure state `|0...0><0...0|`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > MAX_DENSITY_QUBITS`.
    pub fn zero_state(num_qubits: usize) -> Self {
        assert!(
            num_qubits <= MAX_DENSITY_QUBITS,
            "register too large: {num_qubits} > {MAX_DENSITY_QUBITS}"
        );
        let dim = 1usize << num_qubits;
        let mut elems = vec![C64::ZERO; dim * dim];
        elems[0] = C64::ONE;
        DensityMatrix {
            num_qubits,
            dim,
            elems,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> C64 {
        self.elems[r * self.dim + c]
    }

    /// The trace (should remain 1).
    pub fn trace(&self) -> C64 {
        (0..self.dim).map(|i| self.at(i, i)).sum()
    }

    /// Purity `Tr(rho^2)`: 1 for pure states, `1/2^n` for the maximally
    /// mixed state.
    pub fn purity(&self) -> f64 {
        let mut total = 0.0;
        for r in 0..self.dim {
            for c in 0..self.dim {
                total += (self.at(r, c) * self.at(c, r)).re;
            }
        }
        total
    }

    /// Probability of computational-basis outcome `bits`.
    pub fn probability_of_basis(&self, bits: u64) -> f64 {
        self.at(bits as usize, bits as usize).re
    }

    /// The diagonal as a probability distribution.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.dim).map(|i| self.at(i, i).re).collect()
    }

    /// Applies a single-qubit operator pair `rho -> A rho A^dagger`
    /// (non-unitary allowed — used for Kraus terms), accumulating into a
    /// scratch buffer.
    fn accumulate_kraus1(&self, a: &[[C64; 2]; 2], qubit: usize, out: &mut [C64]) {
        let bit = 1usize << qubit;
        // B = A rho: rows transform.
        // C = B A^dagger: columns transform with conjugate.
        // Work directly: out[r][c] += sum_{r', c'} A[rb][rb'] rho[r'][c'] conj(A[cb][cb'])
        // where rb is the qubit bit of r, rest of r must match r'.
        for r in 0..self.dim {
            let rb = (r & bit != 0) as usize;
            let r_base = r & !bit;
            for c in 0..self.dim {
                let cb = (c & bit != 0) as usize;
                let c_base = c & !bit;
                let mut acc = C64::ZERO;
                for rb2 in 0..2 {
                    let a_r = a[rb][rb2];
                    if a_r == C64::ZERO {
                        continue;
                    }
                    let rr = r_base | (rb2 * bit);
                    for (cb2, a_cb2) in a[cb].iter().enumerate() {
                        let a_c = a_cb2.conj();
                        if a_c == C64::ZERO {
                            continue;
                        }
                        let cc = c_base | (cb2 * bit);
                        acc += a_r * self.at(rr, cc) * a_c;
                    }
                }
                out[r * self.dim + c] += acc;
            }
        }
    }

    /// Applies a two-qubit unitary `rho -> U rho U^dagger` with the
    /// [`Gate::matrix2`] basis convention (first operand = MSB).
    fn apply_unitary2(&mut self, u: &[[C64; 4]; 4], q0: usize, q1: usize) {
        let b0 = 1usize << q0;
        let b1 = 1usize << q1;
        let sub = |idx: usize| -> usize {
            (((idx & b0) != 0) as usize) << 1 | ((idx & b1) != 0) as usize
        };
        let compose = |base: usize, s: usize| -> usize {
            let mut idx = base;
            if s & 0b10 != 0 {
                idx |= b0;
            }
            if s & 0b01 != 0 {
                idx |= b1;
            }
            idx
        };
        let mut out = vec![C64::ZERO; self.dim * self.dim];
        for r in 0..self.dim {
            let rs = sub(r);
            let r_base = r & !(b0 | b1);
            for c in 0..self.dim {
                let cs = sub(c);
                let c_base = c & !(b0 | b1);
                let mut acc = C64::ZERO;
                for rs2 in 0..4 {
                    let u_r = u[rs][rs2];
                    if u_r == C64::ZERO {
                        continue;
                    }
                    let rr = compose(r_base, rs2);
                    for (cs2, u_cs2) in u[cs].iter().enumerate() {
                        let u_c = u_cs2.conj();
                        if u_c == C64::ZERO {
                            continue;
                        }
                        let cc = compose(c_base, cs2);
                        acc += u_r * self.at(rr, cc) * u_c;
                    }
                }
                out[r * self.dim + c] = acc;
            }
        }
        self.elems = out;
    }

    /// Applies a unitary gate.
    ///
    /// # Panics
    ///
    /// Panics for non-unitary gates or operand mismatches.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) {
        if let Some(m) = gate.matrix1() {
            assert_eq!(qubits.len(), 1, "one-qubit gate takes one operand");
            let mut out = vec![C64::ZERO; self.dim * self.dim];
            self.accumulate_kraus1(&m, qubits[0], &mut out);
            self.elems = out;
        } else if let Some(m) = gate.matrix2() {
            assert_eq!(qubits.len(), 2, "two-qubit gate takes two operands");
            self.apply_unitary2(&m, qubits[0], qubits[1]);
        } else {
            panic!("apply_gate called with non-unitary gate {gate:?}");
        }
    }

    /// Applies a single-qubit channel given by Kraus operators.
    ///
    /// # Panics
    ///
    /// Panics (in debug) if the Kraus set is not trace-preserving.
    pub fn apply_kraus1(&mut self, kraus: &[[[C64; 2]; 2]], qubit: usize) {
        let mut out = vec![C64::ZERO; self.dim * self.dim];
        for k in kraus {
            self.accumulate_kraus1(k, qubit, &mut out);
        }
        self.elems = out;
        debug_assert!(
            (self.trace().re - 1.0).abs() < 1e-6,
            "channel not trace preserving"
        );
    }

    /// The single-qubit depolarizing channel with probability `p`.
    pub fn depolarize(&mut self, qubit: usize, p: f64) {
        let s = (1.0 - p).sqrt();
        let q = (p / 3.0).sqrt();
        let scale = |m: [[C64; 2]; 2], f: f64| {
            [
                [m[0][0].scale(f), m[0][1].scale(f)],
                [m[1][0].scale(f), m[1][1].scale(f)],
            ]
        };
        let kraus = [
            scale(Gate::I.matrix1().expect("matrix"), s),
            scale(Gate::X.matrix1().expect("matrix"), q),
            scale(Gate::Y.matrix1().expect("matrix"), q),
            scale(Gate::Z.matrix1().expect("matrix"), q),
        ];
        self.apply_kraus1(&kraus, qubit);
    }

    /// The amplitude-damping channel with decay probability `gamma`.
    pub fn amplitude_damp(&mut self, qubit: usize, gamma: f64) {
        let k0 = [
            [C64::ONE, C64::ZERO],
            [C64::ZERO, C64::real((1.0 - gamma).sqrt())],
        ];
        let k1 = [[C64::ZERO, C64::real(gamma.sqrt())], [C64::ZERO, C64::ZERO]];
        self.apply_kraus1(&[k0, k1], qubit);
    }

    /// The phase-damping (dephasing) channel: phase flip with probability
    /// `p`.
    pub fn dephase(&mut self, qubit: usize, p: f64) {
        let s = (1.0 - p).sqrt();
        let q = p.sqrt();
        let i = Gate::I.matrix1().expect("matrix");
        let z = Gate::Z.matrix1().expect("matrix");
        let scale = |m: [[C64; 2]; 2], f: f64| {
            [
                [m[0][0].scale(f), m[0][1].scale(f)],
                [m[1][0].scale(f), m[1][1].scale(f)],
            ]
        };
        self.apply_kraus1(&[scale(i, s), scale(z, q)], qubit);
    }

    /// The symmetric readout-error channel applied as a classical bit-flip
    /// channel on the diagonal (used when extracting final distributions).
    pub fn classical_bitflip(&mut self, qubit: usize, p: f64) {
        let s = (1.0 - p).sqrt();
        let q = p.sqrt();
        let i = Gate::I.matrix1().expect("matrix");
        let x = Gate::X.matrix1().expect("matrix");
        let scale = |m: [[C64; 2]; 2], f: f64| {
            [
                [m[0][0].scale(f), m[0][1].scale(f)],
                [m[1][0].scale(f), m[1][1].scale(f)],
            ]
        };
        self.apply_kraus1(&[scale(i, s), scale(x, q)], qubit);
    }

    /// Runs a measurement-free circuit under a noise model, applying
    /// depolarizing noise after each gate exactly (the density-matrix
    /// analogue of one trajectory family). Relaxation/readout channels are
    /// not modeled here; see [`crate::Executor`] for the full model.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains measurement or reset.
    pub fn run_unitary_circuit(&mut self, circuit: &Circuit, noise: &NoiseModel) {
        for instr in circuit.iter() {
            match instr.gate.kind() {
                GateKind::OneQubitUnitary => {
                    self.apply_gate(&instr.gate, &instr.qubits);
                    if noise.depolarizing_1q > 0.0 {
                        self.depolarize(instr.qubits[0], noise.depolarizing_1q);
                    }
                }
                GateKind::TwoQubitUnitary => {
                    self.apply_gate(&instr.gate, &instr.qubits);
                    if noise.depolarizing_2q > 0.0 {
                        // Two-qubit depolarizing approximated as independent
                        // single-qubit depolarizing of matched strength on
                        // both operands would change the channel; apply the
                        // exact 2q depolarizing instead: with prob p replace
                        // by the maximally mixed state on the pair.
                        self.depolarize2(instr.qubits[0], instr.qubits[1], noise.depolarizing_2q);
                    }
                }
                GateKind::Barrier => {}
                other => panic!("run_unitary_circuit cannot handle {other:?}"),
            }
        }
    }

    /// The exact two-qubit depolarizing channel: with probability `p` a
    /// uniformly random non-identity two-qubit Pauli is applied (matching
    /// the trajectory sampler's convention).
    pub fn depolarize2(&mut self, q0: usize, q1: usize, p: f64) {
        if p <= 0.0 {
            return;
        }
        // rho -> (1-p) rho + p/15 sum_{P != II} P rho P.
        let paulis = [Gate::I, Gate::X, Gate::Y, Gate::Z];
        let original = self.clone();
        // Start with the (1-p) identity part.
        for e in self.elems.iter_mut() {
            *e = e.scale(1.0 - p);
        }
        for (i, ga) in paulis.iter().enumerate() {
            for (j, gb) in paulis.iter().enumerate() {
                if i == 0 && j == 0 {
                    continue;
                }
                let mut term = original.clone();
                if *ga != Gate::I {
                    term.apply_gate(ga, &[q0]);
                }
                if *gb != Gate::I {
                    term.apply_gate(gb, &[q1]);
                }
                let w = p / 15.0;
                for (dst, src) in self.elems.iter_mut().zip(&term.elems) {
                    *dst += src.scale(w);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::state::StateVector;

    #[test]
    fn pure_state_evolution_matches_statevector() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ry(0.7, 2).cz(1, 2).rzz(0.4, 0, 2);
        let psi: StateVector = Executor::final_state(&c).expect("unitary circuit");
        let mut rho = DensityMatrix::zero_state(3);
        rho.run_unitary_circuit(&c, &NoiseModel::ideal());
        for (i, p) in psi.probabilities().iter().enumerate() {
            assert!(
                (rho.probability_of_basis(i as u64) - p).abs() < 1e-10,
                "i={i}"
            );
        }
        assert!((rho.purity() - 1.0).abs() < 1e-10);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn depolarization_at_three_quarters_gives_maximally_mixed() {
        // The "with probability p apply a random Pauli" convention reaches
        // the maximally mixed state at p = 3/4, where the channel equals
        // (rho + X rho X + Y rho Y + Z rho Z)/4 = I/2.
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::H, &[0]);
        rho.depolarize(0, 0.75);
        assert!((rho.probability_of_basis(0) - 0.5).abs() < 1e-12);
        assert!((rho.purity() - 0.5).abs() < 1e-12);
        // At p = 1 the state is (rho + 2|-><-|)/3 for input |+>: purity 5/9.
        let mut rho2 = DensityMatrix::zero_state(1);
        rho2.apply_gate(&Gate::H, &[0]);
        rho2.depolarize(0, 1.0);
        assert!(
            (rho2.purity() - 5.0 / 9.0).abs() < 1e-12,
            "purity={}",
            rho2.purity()
        );
    }

    #[test]
    fn amplitude_damping_fixed_point_is_ground_state() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::X, &[0]);
        rho.amplitude_damp(0, 0.3);
        assert!((rho.probability_of_basis(1) - 0.7).abs() < 1e-12);
        rho.amplitude_damp(0, 1.0);
        assert!((rho.probability_of_basis(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dephasing_kills_coherences_not_populations() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::H, &[0]);
        let before = rho.probabilities();
        rho.dephase(0, 0.5); // Kraus weights give off-diagonal damping
        let after = rho.probabilities();
        assert!((before[0] - after[0]).abs() < 1e-12);
        // Purity drops strictly below 1.
        assert!(rho.purity() < 0.999);
    }

    #[test]
    fn trajectory_average_converges_to_exact_channel() {
        // GHZ circuit with 2q depolarizing: average trajectory populations
        // must converge to the density-matrix diagonal.
        let n = 3;
        let mut c = Circuit::new(n);
        c.h(0).cx(0, 1).cx(1, 2);
        let p = 0.1;
        let noise = NoiseModel {
            depolarizing_1q: p,
            depolarizing_2q: p,
            ..NoiseModel::ideal()
        };
        // Exact.
        let mut rho = DensityMatrix::zero_state(n);
        rho.run_unitary_circuit(&c, &noise);
        let exact = rho.probabilities();
        // Trajectories.
        let mut measured = c.clone();
        measured.measure_all();
        let counts = Executor::new(noise).run(&measured, 60000, 5);
        for (i, &pi) in exact.iter().enumerate() {
            let f = counts.probability(i as u64);
            assert!((f - pi).abs() < 0.01, "i={i}: exact={pi} traj={f}");
        }
    }

    #[test]
    fn classical_bitflip_mixes_outcomes() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gate(&Gate::X, &[1]);
        rho.classical_bitflip(1, 0.25);
        assert!((rho.probability_of_basis(0b10) - 0.75).abs() < 1e-12);
        assert!((rho.probability_of_basis(0b00) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn two_qubit_depolarizing_preserves_trace() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gate(&Gate::H, &[0]);
        rho.apply_gate(&Gate::Cx, &[0, 1]);
        rho.depolarize2(0, 1, 0.2);
        assert!((rho.trace().re - 1.0).abs() < 1e-10);
        assert!(rho.purity() < 1.0);
        // Bell parity is damped: P(00) + P(11) = 1 - p * 8/15 ... just check
        // it dropped but remains dominant.
        let even = rho.probability_of_basis(0) + rho.probability_of_basis(3);
        assert!(even < 1.0 && even > 0.8, "even={even}");
    }

    #[test]
    #[should_panic(expected = "register too large")]
    fn rejects_oversized_register() {
        DensityMatrix::zero_state(MAX_DENSITY_QUBITS + 1);
    }

    #[test]
    #[should_panic(expected = "cannot handle")]
    fn rejects_measurement_in_unitary_run() {
        let mut c = Circuit::new(1);
        c.measure(0);
        let mut rho = DensityMatrix::zero_state(1);
        rho.run_unitary_circuit(&c, &NoiseModel::ideal());
    }
}
