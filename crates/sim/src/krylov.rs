//! Matrix-free Krylov (Lanczos) methods on Pauli-sum Hamiltonians.
//!
//! The Hamiltonian-simulation benchmark is scored against the *exact* time
//! evolution of the transverse-field Ising model, and the VQE benchmark is
//! scored against the exact ground-state energy. Both references are
//! computed here without ever materializing the `2^n x 2^n` Hamiltonian:
//! `H|psi>` is applied string-by-string, and a Lanczos tridiagonalization
//! provides `exp(-iHt)|psi>` and extremal eigenvalues.

use supermarq_circuit::C64;
use supermarq_pauli::{Pauli, PauliSum};

use crate::state::StateVector;

/// Applies `H|psi>` for a real-coefficient Pauli sum, matrix-free.
///
/// Each Pauli string `P` acts as `P|i> = i^{n_Y} (-1)^{popcount(i & zmask)}
/// |i XOR xmask>` where `xmask` marks X/Y sites and `zmask` marks Z/Y sites.
///
/// # Panics
///
/// Panics if the sizes mismatch.
pub fn apply_hamiltonian(h: &PauliSum, psi: &StateVector) -> Vec<C64> {
    assert_eq!(h.num_qubits(), psi.num_qubits(), "size mismatch");
    let n = psi.num_qubits();
    let dim = 1usize << n;
    let amps = psi.amplitudes();
    let mut out = vec![C64::ZERO; dim];
    for (coeff, string) in h.iter() {
        let mut xmask = 0usize;
        let mut zmask = 0usize;
        let mut n_y = 0u32;
        for (q, &p) in string.paulis().iter().enumerate() {
            match p {
                Pauli::I => {}
                Pauli::X => xmask |= 1 << q,
                Pauli::Z => zmask |= 1 << q,
                Pauli::Y => {
                    xmask |= 1 << q;
                    zmask |= 1 << q;
                    n_y += 1;
                }
            }
        }
        // Global factor i^{n_Y}.
        let base = match n_y % 4 {
            0 => C64::ONE,
            1 => C64::I,
            2 => -C64::ONE,
            _ => -C64::I,
        }
        .scale(coeff);
        for (i, &amp) in amps.iter().enumerate().take(dim) {
            let sign = if ((i & zmask).count_ones() & 1) == 1 {
                -1.0
            } else {
                1.0
            };
            let target = i ^ xmask;
            out[target] += base.scale(sign) * amp;
        }
    }
    out
}

fn dot(a: &[C64], b: &[C64]) -> C64 {
    a.iter().zip(b).map(|(x, y)| x.conj() * *y).sum()
}

fn norm(a: &[C64]) -> f64 {
    a.iter().map(|x| x.norm_sqr()).sum::<f64>().sqrt()
}

/// Result of a Lanczos tridiagonalization run.
#[derive(Debug, Clone)]
struct LanczosBasis {
    /// Orthonormal Krylov vectors (each of length `2^n`).
    vectors: Vec<Vec<C64>>,
    /// Diagonal of the tridiagonal matrix.
    alphas: Vec<f64>,
    /// Off-diagonal (length `alphas.len() - 1`).
    betas: Vec<f64>,
}

/// Builds a Krylov basis of dimension at most `m` starting from `psi`
/// (assumed normalized). Stops early when the residual norm underflows
/// (invariant subspace found).
fn lanczos(h: &PauliSum, psi: &StateVector, m: usize) -> LanczosBasis {
    let mut vectors: Vec<Vec<C64>> = vec![psi.amplitudes().to_vec()];
    let mut alphas = Vec::new();
    let mut betas = Vec::new();
    for j in 0..m {
        let vj = StateVector::from_amplitudes(vectors[j].clone());
        let mut w = apply_hamiltonian(h, &vj);
        let alpha = dot(&vectors[j], &w).re;
        alphas.push(alpha);
        for (wi, vi) in w.iter_mut().zip(&vectors[j]) {
            *wi -= vi.scale(alpha);
        }
        if j > 0 {
            let beta_prev = betas[j - 1];
            let prev = &vectors[j - 1];
            for (wi, vi) in w.iter_mut().zip(prev) {
                *wi -= vi.scale(beta_prev);
            }
        }
        // Full reorthogonalization for numerical robustness (small m).
        for v in &vectors {
            let overlap = dot(v, &w);
            for (wi, vi) in w.iter_mut().zip(v) {
                *wi -= *vi * overlap;
            }
        }
        let beta = norm(&w);
        if beta < 1e-12 || j + 1 == m {
            break;
        }
        betas.push(beta);
        let inv = 1.0 / beta;
        for wi in &mut w {
            *wi = wi.scale(inv);
        }
        vectors.push(w);
    }
    LanczosBasis {
        vectors,
        alphas,
        betas,
    }
}

/// Eigendecomposition of a symmetric tridiagonal matrix via the implicit QL
/// algorithm. Returns `(eigenvalues, eigenvectors)` where column `k` of the
/// returned matrix (i.e. `vectors[i][k]`) is the `i`-th component of the
/// `k`-th eigenvector.
///
/// # Panics
///
/// Panics if the iteration fails to converge (more than 50 sweeps; does not
/// happen for well-formed input).
pub fn tridiagonal_eigen(diag: &[f64], off: &[f64]) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = diag.len();
    assert_eq!(off.len() + 1, n.max(1), "off-diagonal length must be n-1");
    let mut d = diag.to_vec();
    // e is padded: e[i] couples i and i+1; e[n-1] unused.
    let mut e: Vec<f64> = off.to_vec();
    e.push(0.0);
    let mut z = vec![vec![0.0; n]; n];
    for (i, row) in z.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small off-diagonal element to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 50, "tridiagonal QL failed to converge");
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0, 1.0);
            let mut p = 0.0;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                for row in z.iter_mut() {
                    f = row[i + 1];
                    row[i + 1] = s * row[i] + c * f;
                    row[i] = c * row[i] - s * f;
                }
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    (d, z)
}

/// Computes `exp(-i H t)|psi>` by stepping a Lanczos propagator.
///
/// `krylov_dim` Krylov vectors per step (30 is ample for the TFIM sizes used
/// in the benchmarks); `steps` substeps for accuracy over long times.
///
/// # Panics
///
/// Panics if sizes mismatch or `steps == 0`.
pub fn evolve(
    h: &PauliSum,
    psi: &StateVector,
    t: f64,
    krylov_dim: usize,
    steps: usize,
) -> StateVector {
    assert!(steps > 0, "steps must be positive");
    let dt = t / steps as f64;
    let mut current = psi.clone();
    for _ in 0..steps {
        current = evolve_step(h, &current, dt, krylov_dim);
    }
    current
}

fn evolve_step(h: &PauliSum, psi: &StateVector, dt: f64, m: usize) -> StateVector {
    let basis = lanczos(h, psi, m);
    let k = basis.alphas.len();
    let (evals, evecs) = tridiagonal_eigen(&basis.alphas, &basis.betas[..k - 1]);
    // coeffs = Q exp(-i dt D) Q^T e1.
    let mut coeffs = vec![C64::ZERO; k];
    for (j, coeff) in coeffs.iter_mut().enumerate() {
        let mut acc = C64::ZERO;
        for (idx, &lambda) in evals.iter().enumerate() {
            let phase = C64::cis(-dt * lambda);
            acc += phase.scale(evecs[j][idx] * evecs[0][idx]);
        }
        *coeff = acc;
    }
    let dim = basis.vectors[0].len();
    let mut amps = vec![C64::ZERO; dim];
    for (j, v) in basis.vectors.iter().enumerate() {
        let cj = coeffs[j];
        for (a, &vi) in amps.iter_mut().zip(v) {
            *a += cj * vi;
        }
    }
    // Numerical renormalization.
    let mut out = StateVector::from_amplitudes_renormalized(amps);
    out.renormalize();
    out
}

/// Computes the lowest eigenvalue (ground-state energy) of a Pauli-sum
/// Hamiltonian with Lanczos, restarting until converged to `tol`.
///
/// The starting vector is a fixed pseudo-random (but deterministic) dense
/// vector, which overlaps every eigenvector with probability one.
pub fn ground_state_energy(h: &PauliSum, tol: f64) -> f64 {
    let n = h.num_qubits();
    let dim = 1usize << n;
    // Deterministic quasi-random start vector.
    let mut amps: Vec<C64> = (0..dim)
        .map(|i| {
            let x = ((i as f64 + 1.0) * 0.754877666).fract() - 0.5;
            let y = ((i as f64 + 1.0) * 0.569840290).fract() - 0.5;
            C64::new(x, y)
        })
        .collect();
    let nrm = norm(&amps);
    for a in &mut amps {
        *a = a.scale(1.0 / nrm);
    }
    let mut psi = StateVector::from_amplitudes_renormalized(amps);
    psi.renormalize();
    let mut last = f64::INFINITY;
    for _ in 0..60 {
        let m = 30.min(dim);
        let basis = lanczos(h, &psi, m);
        let k = basis.alphas.len();
        let (evals, evecs) = tridiagonal_eigen(&basis.alphas, &basis.betas[..k - 1]);
        let (min_idx, &energy) = evals
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite eigenvalues"))
            .expect("non-empty spectrum");
        // Ritz vector for the lowest eigenvalue becomes the restart vector.
        let dim = basis.vectors[0].len();
        let mut next = vec![C64::ZERO; dim];
        for (j, v) in basis.vectors.iter().enumerate() {
            let w = evecs[j][min_idx];
            for (a, &vi) in next.iter_mut().zip(v) {
                *a += vi.scale(w);
            }
        }
        let nrm = norm(&next);
        for a in &mut next {
            *a = a.scale(1.0 / nrm);
        }
        psi = StateVector::from_amplitudes_renormalized(next);
        psi.renormalize();
        if (energy - last).abs() < tol {
            return energy;
        }
        last = energy;
    }
    last
}

impl StateVector {
    /// Builds a state from amplitudes without the strict normalization
    /// check, for internal numerical pipelines; call
    /// [`StateVector::renormalize`] afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_amplitudes_renormalized(amps: Vec<C64>) -> Self {
        let len = amps.len();
        assert!(
            len.is_power_of_two() && len > 0,
            "amplitude count must be a power of two"
        );
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!(norm > 1e-300, "zero vector");
        let inv = 1.0 / norm.sqrt();
        let amps = amps.into_iter().map(|a| a.scale(inv)).collect();
        StateVector::from_amplitudes(amps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supermarq_circuit::Gate;
    use supermarq_pauli::{tfim_hamiltonian, PauliString};

    #[test]
    fn apply_hamiltonian_matches_expectation() {
        // <psi|H|psi> computed via apply must match StateVector::expectation.
        let mut psi = StateVector::zero_state(3);
        psi.apply_gate(&Gate::H, &[0]);
        psi.apply_gate(&Gate::Cx, &[0, 1]);
        psi.apply_gate(&Gate::Ry(0.7), &[2]);
        let h = tfim_hamiltonian(3, 1.0, 0.4);
        let hpsi = apply_hamiltonian(&h, &psi);
        let via_apply: f64 = psi
            .amplitudes()
            .iter()
            .zip(&hpsi)
            .map(|(a, b)| (a.conj() * *b).re)
            .sum();
        let via_expect = psi.expectation(&h);
        assert!((via_apply - via_expect).abs() < 1e-10);
    }

    #[test]
    fn apply_hamiltonian_y_phases() {
        // Y|0> = i|1>.
        let psi = StateVector::zero_state(1);
        let h = PauliSum::from_terms(1, [(1.0, "Y".parse::<PauliString>().unwrap())]);
        let out = apply_hamiltonian(&h, &psi);
        assert!(out[0].approx_eq(C64::ZERO, 1e-12));
        assert!(out[1].approx_eq(C64::I, 1e-12));
    }

    #[test]
    fn tridiagonal_eigen_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let (vals, vecs) = tridiagonal_eigen(&[2.0, 2.0], &[1.0]);
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((sorted[0] - 1.0).abs() < 1e-10);
        assert!((sorted[1] - 3.0).abs() < 1e-10);
        // Eigenvectors are orthonormal.
        for k in [0, 1] {
            let n: f64 = (0..2).map(|i| vecs[i][k] * vecs[i][k]).sum();
            assert!((n - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn tridiagonal_eigen_reconstructs_matrix() {
        let diag = [1.0, -0.5, 2.0, 0.3];
        let off = [0.7, -0.2, 1.1];
        let (vals, vecs) = tridiagonal_eigen(&diag, &off);
        // Check T v_k = lambda_k v_k.
        for k in 0..4 {
            for i in 0..4 {
                let mut tv = diag[i] * vecs[i][k];
                if i > 0 {
                    tv += off[i - 1] * vecs[i - 1][k];
                }
                if i < 3 {
                    tv += off[i] * vecs[i + 1][k];
                }
                assert!((tv - vals[k] * vecs[i][k]).abs() < 1e-9, "k={k} i={i}");
            }
        }
    }

    #[test]
    fn evolution_of_eigenstate_is_stationary() {
        // |00> is an eigenstate of H = -ZZ; populations must not move.
        let h = PauliSum::from_terms(2, [(-1.0, "ZZ".parse::<PauliString>().unwrap())]);
        let psi = StateVector::zero_state(2);
        let out = evolve(&h, &psi, 3.0, 10, 4);
        assert!((out.probability(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_qubit_rabi_oscillation() {
        // H = X: |0(t)> = cos(t)|0> - i sin(t)|1>, so P(1) = sin^2(t).
        let h = PauliSum::from_terms(1, [(1.0, "X".parse::<PauliString>().unwrap())]);
        let psi = StateVector::zero_state(1);
        let t = 0.9;
        let out = evolve(&h, &psi, t, 10, 3);
        assert!((out.probability(1) - t.sin().powi(2)).abs() < 1e-8);
    }

    #[test]
    fn evolution_matches_fine_trotter_on_tfim() {
        // Compare Krylov evolution against very fine first-order Trotter.
        let n = 4;
        let h = tfim_hamiltonian(n, 1.0, 0.8);
        let mut psi = StateVector::zero_state(n);
        for q in 0..n {
            psi.apply_gate(&Gate::H, &[q]);
        }
        let t = 0.6;
        let krylov = evolve(&h, &psi, t, 20, 4);
        // Fine Trotter: exp(-iH dt) ~ prod exp(-i h_k dt) with tiny dt.
        let steps = 4000;
        let dt = t / steps as f64;
        let mut trotter = psi.clone();
        for _ in 0..steps {
            for i in 0..n - 1 {
                trotter.apply_gate(&Gate::Rzz(-2.0 * dt), &[i, i + 1]);
            }
            for q in 0..n {
                trotter.apply_gate(&Gate::Rx(-2.0 * 0.8 * dt), &[q]);
            }
        }
        let fid = krylov.fidelity(&trotter);
        assert!(fid > 0.9999, "fidelity {fid}");
    }

    #[test]
    fn ground_state_energy_of_single_spin() {
        // H = -X has ground energy -1.
        let h = PauliSum::from_terms(1, [(-1.0, "X".parse::<PauliString>().unwrap())]);
        let e = ground_state_energy(&h, 1e-10);
        assert!((e + 1.0).abs() < 1e-8, "e={e}");
    }

    #[test]
    fn ground_state_energy_matches_pfeuty_for_small_tfim() {
        // Pfeuty's exact solution for the open-chain TFIM at J = h = 1:
        // E0 = -sum_k eps(k) ... for small n just compare against dense
        // diagonalization via Lanczos on a 3-spin chain computed by hand:
        // H = -(Z0Z1 + Z1Z2) - (X0 + X1 + X2).
        let h = tfim_hamiltonian(3, 1.0, 1.0);
        let e = ground_state_energy(&h, 1e-10);
        // Reference from exact diagonalization: -3.4939592074349326
        assert!((e + 3.4939592074349326).abs() < 1e-6, "e={e}");
    }
}
