//! Work partitioning for intra-statevector parallelism.
//!
//! Every specialized kernel in [`crate::state`] is written as a *range
//! kernel*: a function over a contiguous range of a flat task space (pair
//! indices for one-qubit gates, 4-tuple indices for two-qubit gates) whose
//! writes for disjoint ranges touch disjoint amplitudes. [`run_chunked`]
//! decides how many workers a kernel fans out to and dispatches the ranges
//! over the rayon stand-in's persistent pool.
//!
//! **Determinism.** Each task's output depends only on the pre-gate
//! amplitudes it reads, never on which worker ran it or where chunk
//! boundaries fell, so amplitudes are bit-identical at every thread count
//! — the same contract the shot-level executor enforces for `Counts`, now
//! extended inside a single trajectory (test-enforced by the forced-chunk
//! kernel tests and the `tests/properties.rs` thread-sweep proptest).

use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use supermarq_circuit::C64;

/// Minimum tasks per worker before a kernel fans out. Below this the
/// per-region dispatch overhead (queue hand-off + wakeup, single-digit
/// microseconds) outweighs the work: 2^14 pair tasks is a 15-qubit state's
/// entire 1q gate, which runs in ~10 us serially.
const MIN_TASKS_PER_WORKER: usize = 1 << 14;

/// Test hook: when set, [`run_chunked`] fans out even for tiny task counts
/// so unit tests can exercise chunk-boundary behaviour on small states.
static FORCE_PARALLEL: AtomicBool = AtomicBool::new(false);

/// Forces kernels to fan out regardless of task count (tests only).
/// Returns the previous value so tests can restore it.
#[cfg(test)]
pub(crate) fn set_force_parallel(on: bool) -> bool {
    FORCE_PARALLEL.swap(on, Ordering::Relaxed)
}

/// A raw pointer to the amplitude array, shareable across pool workers.
///
/// Range kernels index disjoint amplitude sets for disjoint task ranges,
/// so concurrent `&mut`-free writes through this pointer are data-race
/// free. The wrapper exists because `*mut C64` is neither `Send` nor
/// `Sync`; the safety argument lives with each kernel's task-to-index
/// mapping.
pub(crate) struct SharedAmps {
    ptr: *mut C64,
    #[cfg(debug_assertions)]
    len: usize,
}

unsafe impl Send for SharedAmps {}
unsafe impl Sync for SharedAmps {}

impl SharedAmps {
    pub(crate) fn new(amps: &mut [C64]) -> SharedAmps {
        SharedAmps {
            ptr: amps.as_mut_ptr(),
            #[cfg(debug_assertions)]
            len: amps.len(),
        }
    }

    /// Wraps a raw allocation (possibly uninitialized, e.g. the
    /// write-only output buffer of a permutation pass).
    ///
    /// # Safety
    ///
    /// `ptr` must be valid for reads and writes of `len` amplitudes for
    /// the wrapper's lifetime.
    pub(crate) unsafe fn from_raw(ptr: *mut C64, len: usize) -> SharedAmps {
        #[cfg(not(debug_assertions))]
        let _ = len;
        SharedAmps {
            ptr,
            #[cfg(debug_assertions)]
            len,
        }
    }

    /// Pointer to amplitude `i`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds, and the caller's task partition must
    /// guarantee no other worker concurrently accesses amplitude `i`.
    #[inline(always)]
    pub(crate) unsafe fn at(&self, i: usize) -> *mut C64 {
        #[cfg(debug_assertions)]
        debug_assert!(i < self.len, "amplitude index {i} out of bounds");
        self.ptr.add(i)
    }
}

/// Runs `kernel` over `0..tasks`, split into contiguous ranges across the
/// pool when the state is large enough (and the effective thread count is
/// more than one); inline on the calling thread otherwise.
pub(crate) fn run_chunked(tasks: usize, kernel: impl Fn(Range<usize>) + Sync) {
    let threads = rayon::current_num_threads();
    let forced = FORCE_PARALLEL.load(Ordering::Relaxed);
    let workers = if forced {
        threads.min(tasks).max(1)
    } else {
        threads.min(tasks / MIN_TASKS_PER_WORKER).max(1)
    };
    if workers <= 1 {
        crate::simd::dispatch(|| kernel(0..tasks));
        return;
    }
    let chunk = tasks.div_ceil(workers);
    let ranges: Vec<Range<usize>> = (0..workers)
        .map(|w| w * chunk..((w + 1) * chunk).min(tasks))
        .filter(|r| !r.is_empty())
        .collect();
    use rayon::prelude::*;
    ranges
        .par_iter()
        .for_each(|r| crate::simd::dispatch(|| kernel(r.clone())));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn small_task_counts_stay_inline() {
        // 100 tasks is far below MIN_TASKS_PER_WORKER: one contiguous call.
        let calls = AtomicUsize::new(0);
        run_chunked(100, |r| {
            assert_eq!(r, 0..100);
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn forced_chunking_covers_every_task_exactly_once() {
        let prev = set_force_parallel(true);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let hits: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
        pool.install(|| {
            run_chunked(37, |r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        set_force_parallel(prev);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn shared_amps_round_trips_disjoint_writes() {
        let mut amps = vec![C64::ZERO; 8];
        let shared = SharedAmps::new(&mut amps);
        run_chunked(8, |r| {
            for i in r {
                // SAFETY: every task index is written exactly once.
                unsafe { *shared.at(i) = C64::real(i as f64) };
            }
        });
        for (i, a) in amps.iter().enumerate() {
            assert_eq!(a.re, i as f64);
        }
    }
}
