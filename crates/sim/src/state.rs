//! Exact statevector representation and gate application.
//!
//! Gate kernels are written as *range kernels* over a flat task space
//! (pair indices for one-qubit gates, 4-tuple indices for two-qubit
//! gates): [`crate::chunk::run_chunked`] splits the task space across the
//! thread pool for large states and runs inline otherwise, and the inner
//! loops go through the [`crate::simd`] lanes. Amplitudes are
//! bit-identical at every thread count — see `chunk.rs` for the contract.

use crate::chunk::{self, SharedAmps};
use crate::pool;
use crate::simd;
use rand::Rng;
use std::ops::Range;
use supermarq_circuit::{Gate, Instruction, C64};
use supermarq_pauli::{Pauli, PauliString, PauliSum};

/// Maximum register size the simulator accepts (memory guard: a 26-qubit
/// state is already 1 GiB of amplitudes).
pub const MAX_QUBITS: usize = 26;

/// Numerically-zero threshold for *squared* norms: a state (or measurement
/// branch) whose `norm_sqr()` is at or below this — i.e. whose norm is at
/// or below `1e-12` — cannot be renormalized. [`StateVector::renormalize`]
/// panics below it; [`StateVector::project_qubit`] and the trajectory
/// noise channels in `crate::noise` rely on that to reject
/// zero-probability branches (their branch selection draws against the
/// *pre-collapse* probability, so a surviving branch always has weight
/// well above this threshold).
pub const MIN_NORM_SQR: f64 = 1e-24;

/// An exact `2^n`-amplitude quantum state.
///
/// Qubit `q` corresponds to bit `q` of the amplitude index (little-endian:
/// qubit 0 is the least-significant bit).
///
/// # Example
///
/// ```
/// use supermarq_sim::StateVector;
/// use supermarq_circuit::Gate;
///
/// let mut psi = StateVector::zero_state(2);
/// psi.apply_gate(&Gate::H, &[0]);
/// psi.apply_gate(&Gate::Cx, &[0, 1]);
/// assert!((psi.probability(0b00) - 0.5).abs() < 1e-12);
/// assert!((psi.probability(0b11) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// The computational-basis state `|00...0>`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > MAX_QUBITS`.
    pub fn zero_state(num_qubits: usize) -> Self {
        assert!(
            num_qubits <= MAX_QUBITS,
            "register too large: {num_qubits} > {MAX_QUBITS}"
        );
        let len = 1usize << num_qubits;
        let mut amps = pool::take(len);
        amps.resize(len, C64::ZERO);
        amps[0] = C64::ONE;
        StateVector { num_qubits, amps }
    }

    /// The computational-basis state `|bits>` (bit `q` of `bits` = qubit `q`).
    pub fn basis_state(num_qubits: usize, bits: u64) -> Self {
        assert!(num_qubits <= MAX_QUBITS, "register too large");
        assert!(
            num_qubits == 64 || bits < (1u64 << num_qubits),
            "basis index out of range"
        );
        let len = 1usize << num_qubits;
        let mut amps = pool::take(len);
        amps.resize(len, C64::ZERO);
        amps[bits as usize] = C64::ONE;
        StateVector { num_qubits, amps }
    }

    /// Builds a state from raw amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two or the norm differs from 1
    /// by more than `1e-6`.
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        let len = amps.len();
        assert!(
            len.is_power_of_two() && len > 0,
            "amplitude count must be a power of two"
        );
        let num_qubits = len.trailing_zeros() as usize;
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!(
            (norm - 1.0).abs() < 1e-6,
            "state is not normalized (norm^2 = {norm})"
        );
        StateVector { num_qubits, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The amplitude vector.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Probability of observing basis state `bits` on full measurement.
    pub fn probability(&self, bits: u64) -> f64 {
        self.amps[bits as usize].norm_sqr()
    }

    /// `<self|other>`.
    ///
    /// # Panics
    ///
    /// Panics on size mismatch.
    pub fn inner_product(&self, other: &StateVector) -> C64 {
        assert_eq!(self.num_qubits, other.num_qubits, "size mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// State fidelity `|<self|other>|^2`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Squared norm (should be 1 up to numerical error).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Renormalizes the state to unit norm.
    ///
    /// # Panics
    ///
    /// Panics if the state is numerically zero, i.e. its squared norm is
    /// at or below [`MIN_NORM_SQR`] (norm `<= 1e-12`). The threshold is
    /// compared in squared-norm space to avoid disagreeing with callers —
    /// the noise channels in `crate::noise` reason about branch weights as
    /// probabilities (squared norms), never plain norms.
    pub fn renormalize(&mut self) {
        let n2 = self.norm_sqr();
        assert!(
            n2 > MIN_NORM_SQR,
            "cannot renormalize numerically-zero state (norm^2 = {n2:e})"
        );
        let inv = 1.0 / n2.sqrt();
        for a in &mut self.amps {
            *a = a.scale(inv);
        }
    }

    /// Applies a 2x2 unitary to `qubit` (chunked + SIMD dense kernel).
    pub fn apply_matrix1(&mut self, m: &[[C64; 2]; 2], qubit: usize) {
        assert!(qubit < self.num_qubits, "qubit out of range");
        let stride = 1usize << qubit;
        let pairs = self.amps.len() / 2;
        let amps = SharedAmps::new(&mut self.amps);
        if stride == 1 {
            // Qubit 0: every pair is adjacent in memory, so a task range is
            // one contiguous block — walk it directly instead of degrading
            // to length-1 runs.
            chunk::run_chunked(pairs, |tasks| {
                // SAFETY: pair task p owns amplitudes (2p, 2p + 1); disjoint
                // task ranges own disjoint blocks.
                unsafe { simd::matrix1_adjacent(amps.at(2 * tasks.start), tasks.len(), m) };
            });
        } else {
            chunk::run_chunked(pairs, |tasks| matrix1_range(&amps, m, stride, tasks));
        }
    }

    /// Applies a 4x4 unitary to the ordered pair `(q0, q1)`; the matrix uses
    /// basis order `|q0 q1>` with `q0` as the most-significant bit, matching
    /// [`Gate::matrix2`].
    ///
    /// Enumerates the `2^(n-2)` tuple bases directly with the same
    /// two-level stride walk the specialized kernels use (the original
    /// kernel scanned all `2^n` indices and skipped three quarters of
    /// them — O(4·2^n) branchy work per gate). Exact-zero matrix entries
    /// are masked out of the row accumulation once up front
    /// ([`simd::nonzero_mask4`]), so sparse gate matrices — CX touches 4
    /// of 16 entries — pay only for their nonzero structure; the mask is
    /// fixed per gate, keeping amplitudes bit-identical at any chunking.
    pub fn apply_matrix2(&mut self, m: &[[C64; 4]; 4], q0: usize, q1: usize) {
        assert!(
            q0 < self.num_qubits && q1 < self.num_qubits && q0 != q1,
            "bad qubit pair"
        );
        let b0 = 1usize << q0;
        let b1 = 1usize << q1;
        let (lo, hi) = if b0 < b1 { (b0, b1) } else { (b1, b0) };
        let mask = simd::nonzero_mask4(m);
        let tuples = self.amps.len() / 4;
        let amps = SharedAmps::new(&mut self.amps);
        chunk::run_chunked(tuples, |tasks| {
            matrix2_range(&amps, m, mask, [b0, b1], [lo, hi], tasks);
        });
    }

    /// Applies a unitary gate to the given operands.
    ///
    /// Diagonal gates (Z/S/T/Rz/P/Cz/Cp/Rzz) dispatch to in-place phase
    /// multiplies, X/CX/SWAP to index permutations; everything else falls
    /// back to the general dense [`StateVector::apply_matrix1`] /
    /// [`StateVector::apply_matrix2`] kernels. All callers (the executor,
    /// the density-matrix reference, verification audits, Clifford
    /// cross-checks) route through here and share the specialized paths.
    ///
    /// # Panics
    ///
    /// Panics if the gate is not unitary (use measurement/reset methods for
    /// those) or the operand count mismatches.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) {
        use std::f64::consts::FRAC_PI_4;
        let one_operand = |qs: &[usize]| {
            assert_eq!(qs.len(), 1, "one-qubit gate takes one operand");
            qs[0]
        };
        let two_operands = |qs: &[usize]| {
            assert_eq!(qs.len(), 2, "two-qubit gate takes two operands");
            (qs[0], qs[1])
        };
        match *gate {
            Gate::I => {
                let q = one_operand(qubits);
                assert!(q < self.num_qubits, "qubit out of range");
            }
            Gate::X => self.apply_x(one_operand(qubits)),
            Gate::Z => self.apply_phase1(one_operand(qubits), -C64::ONE),
            Gate::S => self.apply_phase1(one_operand(qubits), C64::I),
            Gate::Sdg => self.apply_phase1(one_operand(qubits), -C64::I),
            Gate::T => self.apply_phase1(one_operand(qubits), C64::cis(FRAC_PI_4)),
            Gate::Tdg => self.apply_phase1(one_operand(qubits), C64::cis(-FRAC_PI_4)),
            Gate::P(t) => self.apply_phase1(one_operand(qubits), C64::cis(t)),
            Gate::Rz(t) => {
                self.apply_diagonal1(one_operand(qubits), C64::cis(-t / 2.0), C64::cis(t / 2.0));
            }
            Gate::Cx => {
                let (c, t) = two_operands(qubits);
                self.apply_cx(c, t);
            }
            Gate::Cz => {
                let (a, b) = two_operands(qubits);
                self.apply_controlled_phase(a, b, -C64::ONE);
            }
            Gate::Cp(t) => {
                let (a, b) = two_operands(qubits);
                self.apply_controlled_phase(a, b, C64::cis(t));
            }
            Gate::Swap => {
                let (a, b) = two_operands(qubits);
                self.apply_swap(a, b);
            }
            Gate::Rzz(t) => {
                let (a, b) = two_operands(qubits);
                self.apply_rzz(a, b, t);
            }
            _ => {
                if let Some(m) = gate.matrix1() {
                    self.apply_matrix1(&m, one_operand(qubits));
                } else if let Some(m) = gate.matrix2() {
                    let (a, b) = two_operands(qubits);
                    self.apply_matrix2(&m, a, b);
                } else {
                    panic!("apply_gate called with non-unitary gate {gate:?}");
                }
            }
        }
    }

    /// Pauli-X as an index permutation: swaps each `|...0_q...>` amplitude
    /// with its `|...1_q...>` partner, no arithmetic.
    fn apply_x(&mut self, qubit: usize) {
        assert!(qubit < self.num_qubits, "qubit out of range");
        let stride = 1usize << qubit;
        let pairs = self.amps.len() / 2;
        let amps = SharedAmps::new(&mut self.amps);
        chunk::run_chunked(pairs, |tasks| {
            for_pair_runs(stride, tasks, |i0, run| {
                // SAFETY: disjoint pair tasks, and the two swapped runs are
                // `stride >= run` apart, so they never overlap.
                unsafe { simd::swap_run(amps.at(i0), amps.at(i0 + stride), run) };
            });
        });
    }

    /// Diagonal one-qubit gate `diag(d0, d1)` as in-place multiplies.
    fn apply_diagonal1(&mut self, qubit: usize, d0: C64, d1: C64) {
        assert!(qubit < self.num_qubits, "qubit out of range");
        let stride = 1usize << qubit;
        let pairs = self.amps.len() / 2;
        let amps = SharedAmps::new(&mut self.amps);
        if stride == 1 {
            chunk::run_chunked(pairs, |tasks| {
                // SAFETY: pair task p owns amplitudes (2p, 2p + 1); disjoint
                // task ranges own disjoint blocks.
                unsafe { simd::diagonal_adjacent(amps.at(2 * tasks.start), tasks.len(), d0, d1) };
            });
        } else {
            chunk::run_chunked(pairs, |tasks| {
                for_pair_runs(stride, tasks, |i0, run| {
                    // SAFETY: disjoint pair tasks touch disjoint index pairs.
                    unsafe {
                        simd::cmul_run(amps.at(i0), run, d0);
                        simd::cmul_run(amps.at(i0 + stride), run, d1);
                    }
                });
            });
        }
    }

    /// Phase gate `diag(1, phase)`: touches only the `|1>` half of the
    /// register (Z/S/T/P all land here).
    fn apply_phase1(&mut self, qubit: usize, phase: C64) {
        assert!(qubit < self.num_qubits, "qubit out of range");
        let stride = 1usize << qubit;
        let pairs = self.amps.len() / 2;
        let amps = SharedAmps::new(&mut self.amps);
        if stride == 1 {
            // Qubit 0: the |1> amplitudes sit at every odd index, so the
            // strided walk degrades to length-1 runs. The adjacent diagonal
            // kernel streams the whole block instead; multiplying the |0>
            // half by exact 1.0 costs nothing at this memory-bound size.
            chunk::run_chunked(pairs, |tasks| {
                // SAFETY: pair task p owns amplitudes (2p, 2p + 1); disjoint
                // task ranges own disjoint blocks.
                unsafe {
                    simd::diagonal_adjacent(amps.at(2 * tasks.start), tasks.len(), C64::ONE, phase);
                }
            });
        } else {
            chunk::run_chunked(pairs, |tasks| {
                for_pair_runs(stride, tasks, |i0, run| {
                    // SAFETY: disjoint pair tasks; only the |1> member is written.
                    unsafe { simd::cmul_run(amps.at(i0 + stride), run, phase) };
                });
            });
        }
    }

    /// CNOT as an index permutation: for every index with the control set,
    /// swaps the target's `0`/`1` amplitudes.
    fn apply_cx(&mut self, control: usize, target: usize) {
        self.assert_pair(control, target);
        let bc = 1usize << control;
        let bt = 1usize << target;
        let (lo, hi) = if bc < bt { (bc, bt) } else { (bt, bc) };
        let tuples = self.amps.len() / 4;
        let amps = SharedAmps::new(&mut self.amps);
        if bc == 1 && bt == 2 {
            // CX(0, 1): each 4-tuple is one contiguous 4-amplitude group
            // (swap elements 1 and 3), so a task range is one block.
            chunk::run_chunked(tuples, |tasks| {
                // SAFETY: tuple t owns amplitudes 4t..4t+4; disjoint task
                // ranges own disjoint blocks.
                unsafe { simd::swap_odd_adjacent(amps.at(4 * tasks.start), tasks.len()) };
            });
        } else if bc == 1 {
            // Control = qubit 0, target higher: the generic walk degrades
            // to length-1 runs (one swap per tuple). Here the swapped
            // elements are the odd-indexed amplitudes of the two contiguous
            // `bt`-long halves of each `2*bt` block, which the odd-lane
            // swap kernel streams whole. `bt/2` tuples per half-block.
            let shift = (bt / 2).trailing_zeros();
            let mask = bt / 2 - 1;
            chunk::run_chunked(tuples, |tasks| {
                let mut t = tasks.start;
                while t < tasks.end {
                    let u = t & mask;
                    let cnt = (bt / 2 - u).min(tasks.end - t);
                    let a0 = ((t >> shift) << (shift + 2)) | (2 * u);
                    // SAFETY: tuple t owns the odd pair (a0 + 2k + 1,
                    // a0 + bt + 2k + 1); disjoint task ranges cover
                    // disjoint tuples, and the two blocks are `bt` apart.
                    unsafe { simd::swap_odd_between(amps.at(a0), amps.at(a0 + bt), 2 * cnt) };
                    t += cnt;
                }
            });
        } else {
            chunk::run_chunked(tuples, |tasks| {
                for_tuple_runs(lo, hi, tasks, |base, run| {
                    // SAFETY: disjoint tuple tasks; the swapped runs are
                    // `bt >= lo >= run` apart, so they never overlap.
                    unsafe { simd::swap_run(amps.at(base | bc), amps.at(base | bc | bt), run) };
                });
            });
        }
    }

    /// SWAP as an index permutation: exchanges the `|01>` and `|10>`
    /// amplitudes of every 4-tuple.
    fn apply_swap(&mut self, a: usize, b: usize) {
        self.assert_pair(a, b);
        let ba = 1usize << a;
        let bb = 1usize << b;
        let (lo, hi) = if ba < bb { (ba, bb) } else { (bb, ba) };
        let tuples = self.amps.len() / 4;
        let amps = SharedAmps::new(&mut self.amps);
        chunk::run_chunked(tuples, |tasks| {
            for_tuple_runs(lo, hi, tasks, |base, run| {
                // SAFETY: disjoint tuple tasks; the swapped runs are
                // `hi - lo >= lo >= run` apart, so they never overlap.
                unsafe { simd::swap_run(amps.at(base | ba), amps.at(base | bb), run) };
            });
        });
    }

    /// Controlled phase `diag(1, 1, 1, phase)`: multiplies only the `|11>`
    /// amplitudes (CZ and CP land here).
    fn apply_controlled_phase(&mut self, a: usize, b: usize, phase: C64) {
        self.assert_pair(a, b);
        let both = (1usize << a) | (1usize << b);
        let (lo, hi) = sorted_strides(a, b);
        let tuples = self.amps.len() / 4;
        let amps = SharedAmps::new(&mut self.amps);
        chunk::run_chunked(tuples, |tasks| {
            for_tuple_runs(lo, hi, tasks, |base, run| {
                // SAFETY: disjoint tuple tasks; only the |11> member is written.
                unsafe { simd::cmul_run(amps.at(base | both), run, phase) };
            });
        });
    }

    /// `Rzz(theta)` as a parity-conditioned phase multiply:
    /// `e^{-i theta/2}` on even-parity (`|00>`, `|11>`) amplitudes and
    /// `e^{+i theta/2}` on odd-parity ones.
    fn apply_rzz(&mut self, a: usize, b: usize, theta: f64) {
        self.assert_pair(a, b);
        let even = C64::cis(-theta / 2.0);
        let odd = C64::cis(theta / 2.0);
        let (lo, hi) = sorted_strides(a, b);
        let tuples = self.amps.len() / 4;
        let amps = SharedAmps::new(&mut self.amps);
        chunk::run_chunked(tuples, |tasks| {
            for_tuple_runs(lo, hi, tasks, |base, run| {
                // SAFETY: disjoint tuple tasks; all four tuple members are
                // written exactly once.
                unsafe {
                    simd::cmul_run(amps.at(base), run, even);
                    simd::cmul_run(amps.at(base | lo), run, odd);
                    simd::cmul_run(amps.at(base | hi), run, odd);
                    simd::cmul_run(amps.at(base | lo | hi), run, even);
                }
            });
        });
    }

    /// Applies the affine GF(2) index permutation `i -> (xor of cols[k]
    /// for each set bit k of i) xor offset` in one out-of-place pass.
    /// Produced by the executor's permutation fusion pre-pass
    /// (`crate::fusion`), which guarantees the map is a bijection (a
    /// composition of X/CX/SWAP index maps).
    ///
    /// The pass walks the *output* sequentially and gathers through the
    /// inverse map (`out[j] = amps[inv(j)]`): scattered reads beat
    /// scattered writes (no read-for-ownership traffic), and for ladder
    /// circuits like a GHZ CX chain the inverse is the Gray code, whose
    /// consecutive reads differ by one mostly-low bit — near-sequential
    /// locality.
    ///
    /// Bit-exact at any thread count: amplitudes move, nothing is
    /// recomputed, and the source of each output index is
    /// partition-independent.
    pub(crate) fn permute_amps(&mut self, cols: &[u64], offset: u64) {
        assert_eq!(cols.len(), self.num_qubits, "column count mismatch");
        let len = self.amps.len();
        let (icols, ioffset) = invert_affine(cols, offset);
        // Table of inverse-map images over the low `b` bits of the output
        // index; the high bits are folded once per task, so the inner loop
        // is one table lookup + xor per amplitude.
        let b = self.num_qubits.min(8);
        let low_size = 1usize << b;
        let mut low = vec![0u64; low_size];
        for l in 1..low_size {
            low[l] = low[l & (l - 1)] ^ icols[l.trailing_zeros() as usize];
        }
        let mut out: Vec<C64> = pool::take(len);
        // SAFETY: the capacity-`len` buffer is fully written below (every
        // output index `j` exactly once), then set_len marks it
        // initialized.
        let out_shared = unsafe { SharedAmps::from_raw(out.as_mut_ptr(), len) };
        let in_shared = SharedAmps::new(&mut self.amps);
        chunk::run_chunked(len >> b, |tasks| {
            for h in tasks {
                let j_hi = h << b;
                let mut i_hi = ioffset;
                let mut bits = j_hi as u64;
                while bits != 0 {
                    i_hi ^= icols[bits.trailing_zeros() as usize];
                    bits &= bits - 1;
                }
                for (l, &low_l) in low.iter().enumerate() {
                    // SAFETY: writes are disjoint per task (contiguous
                    // output ranges); reads only alias other tasks' reads.
                    unsafe {
                        *out_shared.at(j_hi | l) = *in_shared.at((i_hi ^ low_l) as usize);
                    }
                }
            }
        });
        // SAFETY: every index of `out` was initialized above.
        unsafe { out.set_len(len) };
        pool::recycle(std::mem::replace(&mut self.amps, out));
    }

    fn assert_pair(&self, a: usize, b: usize) {
        assert!(
            a < self.num_qubits && b < self.num_qubits && a != b,
            "bad qubit pair"
        );
    }

    /// Applies a unitary instruction.
    pub fn apply_instruction(&mut self, instr: &Instruction) {
        self.apply_gate(&instr.gate, &instr.qubits);
    }

    /// Probability that measuring `qubit` yields 1.
    pub fn probability_of_one(&self, qubit: usize) -> f64 {
        assert!(qubit < self.num_qubits, "qubit out of range");
        let stride = 1usize << qubit;
        let len = self.amps.len();
        let mut p = 0.0;
        let mut base = stride;
        while base < len {
            for a in &self.amps[base..base + stride] {
                p += a.norm_sqr();
            }
            base += stride << 1;
        }
        p
    }

    /// Projectively measures `qubit`, collapsing the state, and returns the
    /// observed bit.
    pub fn measure_qubit<R: Rng + ?Sized>(&mut self, qubit: usize, rng: &mut R) -> bool {
        let p1 = self.probability_of_one(qubit);
        let outcome = rng.gen::<f64>() < p1;
        self.project_qubit(qubit, outcome);
        outcome
    }

    /// Projects `qubit` onto `value` and renormalizes.
    ///
    /// # Panics
    ///
    /// Panics if the projection has zero probability.
    pub fn project_qubit(&mut self, qubit: usize, value: bool) {
        assert!(qubit < self.num_qubits, "qubit out of range");
        let stride = 1usize << qubit;
        let len = self.amps.len();
        // Zero the half that contradicts `value`, walking only those blocks.
        let mut base = if value { 0 } else { stride };
        while base < len {
            self.amps[base..base + stride].fill(C64::ZERO);
            base += stride << 1;
        }
        self.renormalize();
    }

    /// Resets `qubit` to `|0>`: measures it and applies X if the result was 1.
    pub fn reset_qubit<R: Rng + ?Sized>(&mut self, qubit: usize, rng: &mut R) {
        if self.measure_qubit(qubit, rng) {
            let m = Gate::X.matrix1().expect("X has a matrix");
            self.apply_matrix1(&m, qubit);
        }
    }

    /// Samples a full computational-basis measurement without collapsing the
    /// state (valid when no further evolution uses the state).
    ///
    /// When float rounding leaves the cumulative probability just below the
    /// drawn uniform variate, the fallback is the last basis state with
    /// *nonzero* probability — never a physically impossible outcome. For
    /// repeated sampling from the same state, build a [`CumulativeSampler`]
    /// once instead of paying this O(2^n) scan per shot.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        let mut last_nonzero = 0u64;
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if p > 0.0 {
                last_nonzero = i as u64;
            }
            acc += p;
            if r < acc {
                return i as u64;
            }
        }
        last_nonzero
    }

    /// Applies a Pauli string as a unitary (used by stochastic noise).
    pub fn apply_pauli_string(&mut self, p: &PauliString) {
        assert_eq!(p.num_qubits(), self.num_qubits, "size mismatch");
        for (q, &pauli) in p.paulis().iter().enumerate() {
            let gate = match pauli {
                Pauli::I => continue,
                Pauli::X => Gate::X,
                Pauli::Y => Gate::Y,
                Pauli::Z => Gate::Z,
            };
            let m = gate.matrix1().expect("pauli has a matrix");
            self.apply_matrix1(&m, q);
        }
    }

    /// Returns `P|self>` for a Pauli string (without phase ambiguity: Y
    /// carries its usual `[[0,-i],[i,0]]` matrix).
    fn pauli_applied(&self, p: &PauliString) -> StateVector {
        let mut out = self.clone();
        out.apply_pauli_string(p);
        out
    }

    /// Expectation value `<self| P |self>` of a Pauli string. Always real
    /// for Hermitian `P`; the real part is returned.
    pub fn expectation_pauli(&self, p: &PauliString) -> f64 {
        let applied = self.pauli_applied(p);
        self.inner_product(&applied).re
    }

    /// Expectation value of a weighted Pauli sum.
    pub fn expectation(&self, h: &PauliSum) -> f64 {
        h.iter().map(|(c, p)| c * self.expectation_pauli(p)).sum()
    }

    /// The full probability distribution over basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }
}

/// Retired amplitude buffers go back to the thread-local [`pool`] so the
/// next state (or permutation pass) reuses the allocation instead of
/// bouncing multi-megabyte blocks through the system allocator — see the
/// pool module docs for why that matters.
impl Drop for StateVector {
    fn drop(&mut self) {
        pool::recycle(std::mem::take(&mut self.amps));
    }
}

/// Inverts the affine GF(2) map `i -> A·i xor c` (`A` given as columns),
/// returning the inverse's columns and offset (`inv(j) = A⁻¹·j xor
/// A⁻¹·c`). Column-operation Gaussian elimination: the same elementary
/// column ops that reduce `A` to the identity, applied to the identity,
/// accumulate `A⁻¹`.
///
/// # Panics
///
/// Panics if the map is singular (cannot happen for compositions of
/// X/CX/SWAP index maps, which are invertible by construction).
fn invert_affine(cols: &[u64], offset: u64) -> (Vec<u64>, u64) {
    let n = cols.len();
    let mut m = cols.to_vec();
    let mut inv: Vec<u64> = (0..n).map(|k| 1u64 << k).collect();
    for p in 0..n {
        let pivot = (p..n)
            .find(|&k| (m[k] >> p) & 1 == 1)
            .expect("permutation map is singular");
        m.swap(p, pivot);
        inv.swap(p, pivot);
        for k in 0..n {
            if k != p && (m[k] >> p) & 1 == 1 {
                m[k] ^= m[p];
                inv[k] ^= inv[p];
            }
        }
    }
    let mut ioffset = 0u64;
    let mut bits = offset;
    while bits != 0 {
        ioffset ^= inv[bits.trailing_zeros() as usize];
        bits &= bits - 1;
    }
    (inv, ioffset)
}

/// Strides of qubits `a` and `b` sorted ascending.
#[inline(always)]
fn sorted_strides(a: usize, b: usize) -> (usize, usize) {
    let ba = 1usize << a;
    let bb = 1usize << b;
    if ba < bb {
        (ba, bb)
    } else {
        (bb, ba)
    }
}

// ---------------------------------------------------------------------------
// Range kernels.
//
// One-qubit gates act on `len/2` disjoint index pairs `(i0, i0 | stride)`;
// two-qubit gates on `len/4` disjoint 4-tuples. The kernels enumerate a
// *task space* — pair index `p in 0..len/2`, tuple index `t in 0..len/4` —
// and map tasks to amplitude indices by inserting zero bits at the operand
// strides. The mapping is monotone, so a contiguous task range covers
// contiguous index runs (maximal runs of `stride` tasks for 1q, `lo` tasks
// for 2q), which is what lets the inner loops use SIMD lanes and
// `swap_nonoverlapping` instead of per-element index arithmetic.
//
// Disjointness (the safety argument for every `SharedAmps` access): the
// task-to-index mapping is injective, each task reads and writes only its
// own pair/tuple, and `run_chunked` hands out non-overlapping task ranges.

/// Calls `f(i0, run)` for each maximal contiguous run of pair tasks in
/// `range`: `i0` is the first pair's low amplitude index (qubit bit clear),
/// the partner of `i0 + j` is `i0 + j + stride` for `j < run`.
#[inline(always)]
fn for_pair_runs(stride: usize, range: Range<usize>, mut f: impl FnMut(usize, usize)) {
    let mask = stride - 1;
    let mut p = range.start;
    while p < range.end {
        let offset = p & mask;
        let run = (stride - offset).min(range.end - p);
        let i0 = ((p & !mask) << 1) | offset;
        f(i0, run);
        p += run;
    }
}

/// Calls `f(base, run)` for each maximal contiguous run of 4-tuple tasks in
/// `range`, where `lo < hi` are the operand strides: `base` has both
/// operand bits clear, and the tuple of `base + j` (`j < run <= lo`) is
/// `{base+j, base+j|lo, base+j|hi, base+j|lo|hi}`.
#[inline(always)]
fn for_tuple_runs(lo: usize, hi: usize, range: Range<usize>, mut f: impl FnMut(usize, usize)) {
    let lo_mask = lo - 1;
    let hi_mask = hi - 1;
    let mut t = range.start;
    while t < range.end {
        let offset = t & lo_mask;
        let run = (lo - offset).min(range.end - t);
        let partial = ((t & !lo_mask) << 1) | offset;
        let base = ((partial & !hi_mask) << 1) | (partial & hi_mask);
        f(base, run);
        t += run;
    }
}

/// Dense one-qubit kernel over a pair-task range. The SIMD body and the
/// scalar tail compute the same operation tree (see `crate::simd`), so a
/// pair produces bit-identical amplitudes whichever path handles it.
fn matrix1_range(amps: &SharedAmps, m: &[[C64; 2]; 2], stride: usize, tasks: Range<usize>) {
    for_pair_runs(stride, tasks, |i0, run| {
        // SAFETY: disjoint pair tasks touch disjoint (i0, i0 + stride)
        // amplitude pairs; both runs stay in bounds.
        unsafe { simd::matrix1_run(amps.at(i0), amps.at(i0 + stride), run, m) };
    });
}

/// Dense two-qubit kernel over a tuple-task range. `bits = [b0, b1]` are
/// the operand strides in matrix basis order (`q0` = MSB, matching
/// [`Gate::matrix2`]); `sorted = [lo, hi]` are the same strides ascending.
fn matrix2_range(
    amps: &SharedAmps,
    m: &[[C64; 4]; 4],
    mask: [u8; 4],
    bits: [usize; 2],
    sorted: [usize; 2],
    tasks: Range<usize>,
) {
    let [b0, b1] = bits;
    let [lo, hi] = sorted;
    for_tuple_runs(lo, hi, tasks, |base, run| {
        // SAFETY: disjoint tuple tasks touch disjoint 4-tuples; all four
        // runs stay in bounds. Pointer order is the matrix basis order
        // (q0 = MSB).
        unsafe {
            let p = [
                amps.at(base),
                amps.at(base | b1),
                amps.at(base | b0),
                amps.at(base | b0 | b1),
            ];
            simd::matrix2_run(&p, run, m, &mask);
        }
    });
}

/// Precomputed cumulative-probability table for repeated basis-state
/// sampling from a fixed state: O(2^n) once, then O(n) binary search per
/// draw instead of [`StateVector::sample`]'s O(2^n) linear scan per shot.
///
/// Zero-probability outcomes occupy zero-width intervals in the table and
/// can never be drawn; when float rounding leaves the final cumulative sum
/// below the drawn variate, the fallback is the last basis state with
/// nonzero probability.
///
/// # Example
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use supermarq_circuit::Gate;
/// use supermarq_sim::{CumulativeSampler, StateVector};
///
/// let mut psi = StateVector::zero_state(2);
/// psi.apply_gate(&Gate::H, &[0]);
/// psi.apply_gate(&Gate::Cx, &[0, 1]);
/// let sampler = CumulativeSampler::new(&psi);
/// let mut rng = StdRng::seed_from_u64(1);
/// for _ in 0..100 {
///     let bits = sampler.sample(&mut rng);
///     assert!(bits == 0b00 || bits == 0b11);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CumulativeSampler {
    /// `cumulative[i]` = probability of drawing a basis index `<= i`.
    cumulative: Vec<f64>,
    /// Largest basis index with nonzero probability (rounding fallback).
    last_nonzero: u64,
}

impl CumulativeSampler {
    /// Builds the table from a state's probability distribution.
    pub fn new(state: &StateVector) -> Self {
        let mut cumulative = Vec::with_capacity(state.amps.len());
        let mut acc = 0.0;
        let mut last_nonzero = 0u64;
        for (i, a) in state.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if p > 0.0 {
                last_nonzero = i as u64;
            }
            acc += p;
            cumulative.push(acc);
        }
        CumulativeSampler {
            cumulative,
            last_nonzero,
        }
    }

    /// Draws one basis index by binary search over the cumulative table.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let r: f64 = rng.gen();
        // First index whose cumulative probability exceeds r; ties on a
        // zero-width interval are impossible because `cumulative` is flat
        // across zero-probability outcomes.
        let idx = self.cumulative.partition_point(|&c| c <= r);
        if idx < self.cumulative.len() {
            idx as u64
        } else {
            self.last_nonzero
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn zero_state_has_unit_amplitude_at_origin() {
        let psi = StateVector::zero_state(3);
        assert_eq!(psi.num_qubits(), 3);
        assert!((psi.probability(0) - 1.0).abs() < 1e-12);
        assert!((psi.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_gate_flips_bit() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Gate::X, &[1]);
        assert!((psi.probability(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_probabilities() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Gate::H, &[0]);
        psi.apply_gate(&Gate::Cx, &[0, 1]);
        assert!((psi.probability(0b00) - 0.5).abs() < 1e-12);
        assert!((psi.probability(0b11) - 0.5).abs() < 1e-12);
        assert!(psi.probability(0b01) < 1e-12);
    }

    #[test]
    fn cx_respects_operand_order() {
        // Control = qubit 1, target = qubit 0.
        let mut psi = StateVector::basis_state(2, 0b10);
        psi.apply_gate(&Gate::Cx, &[1, 0]);
        assert!((psi.probability(0b11) - 1.0).abs() < 1e-12);
        // Control = qubit 0 in |0>: nothing happens.
        let mut psi = StateVector::basis_state(2, 0b10);
        psi.apply_gate(&Gate::Cx, &[0, 1]);
        assert!((psi.probability(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_exchanges_bits() {
        let mut psi = StateVector::basis_state(3, 0b001);
        psi.apply_gate(&Gate::Swap, &[0, 2]);
        assert!((psi.probability(0b100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ghz_state_on_five_qubits() {
        let n = 5;
        let mut psi = StateVector::zero_state(n);
        psi.apply_gate(&Gate::H, &[0]);
        for q in 0..n - 1 {
            psi.apply_gate(&Gate::Cx, &[q, q + 1]);
        }
        assert!((psi.probability(0) - 0.5).abs() < 1e-12);
        assert!((psi.probability((1 << n) - 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rz_phases_do_not_change_populations() {
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(&Gate::H, &[0]);
        let p_before = psi.probabilities();
        psi.apply_gate(&Gate::Rz(1.234), &[0]);
        let p_after = psi.probabilities();
        for (a, b) in p_before.iter().zip(&p_after) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn measurement_collapses_state() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Gate::H, &[0]);
        psi.apply_gate(&Gate::Cx, &[0, 1]);
        let mut r = rng();
        let outcome = psi.measure_qubit(0, &mut r);
        // After measuring one half of a Bell pair the other is determined.
        let expected = if outcome { 0b11 } else { 0b00 };
        assert!((psi.probability(expected) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_returns_qubit_to_zero() {
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(&Gate::X, &[0]);
        let mut r = rng();
        psi.reset_qubit(0, &mut r);
        assert!((psi.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(&Gate::Ry(2.0 * (0.3f64.sqrt()).asin()), &[0]);
        // P(1) = 0.3.
        let mut r = rng();
        let shots = 20000;
        let ones: usize = (0..shots).filter(|_| psi.sample(&mut r) == 1).count();
        let freq = ones as f64 / shots as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq={freq}");
    }

    #[test]
    fn expectation_of_z_on_zero_is_one() {
        let psi = StateVector::zero_state(1);
        let z: PauliString = "Z".parse().unwrap();
        assert!((psi.expectation_pauli(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_of_mermin_on_ghz_i_state() {
        use supermarq_pauli::mermin_operator;
        // |phi> = (|000> + i|111>)/sqrt(2) should give <M> = 2^{n-1} = 4.
        let n = 3;
        let mut amps = vec![C64::ZERO; 8];
        amps[0] = C64::real(1.0 / 2f64.sqrt());
        amps[7] = C64::new(0.0, 1.0 / 2f64.sqrt());
        let psi = StateVector::from_amplitudes(amps);
        let m = mermin_operator(n);
        assert!((psi.expectation(&m) - 4.0).abs() < 1e-10);
    }

    #[test]
    fn tfim_expectation_on_all_plus_state() {
        use supermarq_pauli::tfim_hamiltonian;
        // |+++>: <ZZ> = 0, <X> = 1 per site, so <H> = -h_x * n.
        let n = 3;
        let mut psi = StateVector::zero_state(n);
        for q in 0..n {
            psi.apply_gate(&Gate::H, &[q]);
        }
        let h = tfim_hamiltonian(n, 1.0, 0.5);
        assert!((psi.expectation(&h) + 1.5).abs() < 1e-12);
    }

    #[test]
    fn inner_product_and_fidelity() {
        let a = StateVector::zero_state(2);
        let mut b = StateVector::zero_state(2);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
        b.apply_gate(&Gate::X, &[0]);
        assert!(a.fidelity(&b) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not normalized")]
    fn from_amplitudes_rejects_unnormalized() {
        StateVector::from_amplitudes(vec![C64::ONE, C64::ONE]);
    }

    #[test]
    #[should_panic(expected = "register too large")]
    fn rejects_oversized_register() {
        StateVector::zero_state(MAX_QUBITS + 1);
    }

    /// An RNG pinned at its maximum output: `gen::<f64>()` yields the
    /// largest representable value below 1, forcing cumulative-sum
    /// fallback paths.
    struct MaxRng;

    impl rand::RngCore for MaxRng {
        fn next_u64(&mut self) -> u64 {
            u64::MAX
        }
    }

    /// Builds a state whose norm is just under 1 (within the constructor's
    /// tolerance) with all weight on the low indices, so a max-value draw
    /// overruns the cumulative sum.
    fn underweight_low_state() -> StateVector {
        let s = C64::real(0.4999997f64.sqrt());
        StateVector::from_amplitudes(vec![s, s, C64::ZERO, C64::ZERO])
    }

    #[test]
    fn sample_rounding_fallback_never_emits_zero_probability_outcome() {
        // Regression: the old fallback returned `amps.len() - 1` (here the
        // zero-amplitude |11>) when rounding left the cumulative sum below
        // the drawn variate; it must return the last *nonzero* outcome.
        let psi = underweight_low_state();
        let mut rng = MaxRng;
        assert_eq!(psi.sample(&mut rng), 1);
        let sampler = CumulativeSampler::new(&psi);
        assert_eq!(sampler.sample(&mut rng), 1);
    }

    #[test]
    fn cumulative_sampler_matches_linear_scan() {
        let mut psi = StateVector::zero_state(3);
        psi.apply_gate(&Gate::H, &[0]);
        psi.apply_gate(&Gate::Cx, &[0, 1]);
        psi.apply_gate(&Gate::Ry(0.7), &[2]);
        let sampler = CumulativeSampler::new(&psi);
        // Identical draws consume one variate each, so parallel streams
        // stay in lockstep.
        let mut ra = rng();
        let mut rb = rng();
        for _ in 0..2000 {
            assert_eq!(psi.sample(&mut ra), sampler.sample(&mut rb));
        }
    }

    /// A fixed non-trivial `n`-qubit state (distinct amplitude at every
    /// index) to pin amplitude-movement tests against.
    fn scrambled_state_n(n: usize) -> StateVector {
        let mut psi = StateVector::zero_state(n);
        for q in 0..n {
            psi.apply_gate(&Gate::H, &[q]);
            psi.apply_gate(&Gate::Ry(0.3 + 0.2 * q as f64), &[q]);
        }
        for q in 0..n - 1 {
            psi.apply_gate(&Gate::Cp(0.4 + 0.1 * q as f64), &[q, q + 1]);
        }
        psi
    }

    /// A fixed non-trivial 4-qubit state to exercise the kernels on.
    fn scrambled_state() -> StateVector {
        let mut psi = StateVector::zero_state(4);
        for q in 0..4 {
            psi.apply_matrix1(&Gate::H.matrix1().unwrap(), q);
            psi.apply_matrix1(&Gate::Ry(0.3 + q as f64).matrix1().unwrap(), q);
        }
        psi.apply_matrix2(&Gate::Cx.matrix2().unwrap(), 0, 2);
        psi.apply_matrix1(&Gate::Rz(1.1).matrix1().unwrap(), 3);
        psi
    }

    #[test]
    fn specialized_kernels_match_dense_matrix_path() {
        use Gate::*;
        let one_q: &[Gate] = &[X, Z, S, Sdg, T, Tdg, P(0.37), Rz(-1.9), I];
        for gate in one_q {
            for q in 0..4 {
                let mut fast = scrambled_state();
                fast.apply_gate(gate, &[q]);
                let mut dense = scrambled_state();
                dense.apply_matrix1(&gate.matrix1().unwrap(), q);
                assert!(fast.fidelity(&dense) > 1.0 - 1e-12, "{gate:?} on qubit {q}");
                // Phases matter too, not just populations.
                assert!(
                    fast.inner_product(&dense).re > 1.0 - 1e-12,
                    "{gate:?} on qubit {q} differs by phase"
                );
            }
        }
        let two_q: &[Gate] = &[Cx, Cz, Cp(0.9), Swap, Rzz(2.3)];
        for gate in two_q {
            for (a, b) in [(0, 1), (1, 0), (0, 3), (3, 1), (2, 3)] {
                let mut fast = scrambled_state();
                fast.apply_gate(gate, &[a, b]);
                let mut dense = scrambled_state();
                dense.apply_matrix2(&gate.matrix2().unwrap(), a, b);
                assert!(
                    fast.inner_product(&dense).re > 1.0 - 1e-12,
                    "{gate:?} on qubits ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn stride_probability_and_projection_match_definitions() {
        let psi = scrambled_state();
        for q in 0..4 {
            let bit = 1usize << q;
            let reference: f64 = psi
                .amplitudes()
                .iter()
                .enumerate()
                .filter(|(i, _)| i & bit != 0)
                .map(|(_, a)| a.norm_sqr())
                .sum();
            assert!((psi.probability_of_one(q) - reference).abs() < 1e-12);
            for value in [false, true] {
                let mut projected = psi.clone();
                projected.project_qubit(q, value);
                for (i, a) in projected.amplitudes().iter().enumerate() {
                    if ((i & bit) != 0) != value {
                        assert_eq!(a.norm_sqr(), 0.0, "qubit {q} value {value} index {i}");
                    }
                }
                assert!((projected.norm_sqr() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn two_qubit_gate_on_noncontiguous_qubits() {
        // rzz on qubits (0, 2) of a 3-qubit register.
        let mut psi = StateVector::zero_state(3);
        for q in 0..3 {
            psi.apply_gate(&Gate::H, &[q]);
        }
        psi.apply_gate(&Gate::Rzz(std::f64::consts::PI), &[0, 2]);
        // <Z0 Z2> after rzz(pi) on |+++>: rzz(pi) = -i Z0 Z2 up to phase,
        // state populations unchanged.
        let p = psi.probabilities();
        for v in p {
            assert!((v - 0.125).abs() < 1e-12);
        }
        // But X expectation on qubit 1 unchanged = 1.
        let x1: PauliString = "IXI".parse().unwrap();
        assert!((psi.expectation_pauli(&x1) - 1.0).abs() < 1e-12);
        // Rzz(pi) = -i Z0 Z2 up to phase, so qubit 0 is now in |->: <X0> = -1.
        let x0: PauliString = "XII".parse().unwrap();
        assert!((psi.expectation_pauli(&x0) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn renormalize_accepts_norm_just_above_threshold() {
        // norm = 2e-12 => norm^2 = 4e-24, above MIN_NORM_SQR = 1e-24: the
        // state is tiny but still renormalizable.
        let mut psi = StateVector {
            num_qubits: 0,
            amps: vec![C64::real(2e-12)],
        };
        psi.renormalize();
        assert!((psi.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot renormalize")]
    fn renormalize_rejects_norm_below_threshold() {
        // norm = 0.5e-12 => norm^2 = 2.5e-25, at/below MIN_NORM_SQR. The
        // old check compared the plain norm against 1e-12; the squared-norm
        // threshold must reject the same states (0.5e-12 < 1e-12).
        let mut psi = StateVector {
            num_qubits: 0,
            amps: vec![C64::real(0.5e-12)],
        };
        psi.renormalize();
    }

    /// The pre-refactor dense two-qubit kernel: scan all `2^n` indices and
    /// process the quarter with both operand bits clear, with the same
    /// `C64::ZERO`-seeded accumulation the range kernel uses.
    fn matrix2_full_scan(psi: &StateVector, m: &[[C64; 4]; 4], q0: usize, q1: usize) -> Vec<C64> {
        let b0 = 1usize << q0;
        let b1 = 1usize << q1;
        let mut amps = psi.amps.clone();
        for base in 0..amps.len() {
            if base & (b0 | b1) != 0 {
                continue;
            }
            let idx = [base, base | b1, base | b0, base | b0 | b1];
            let a = idx.map(|k| amps[k]);
            for (row, &k) in idx.iter().enumerate() {
                let mut v = C64::ZERO;
                for (&mc, &ac) in m[row].iter().zip(&a) {
                    v += mc * ac;
                }
                amps[k] = v;
            }
        }
        amps
    }

    #[test]
    fn dense_two_qubit_walk_matches_full_scan_bitwise() {
        // The tuple-base stride walk must reproduce the old full-scan
        // enumeration *bitwise* (satellite of the O(4*2^n) fix): same
        // tuples, same accumulation tree, only the iteration shape changed.
        for gate in [
            Gate::Cx,
            Gate::Cz,
            Gate::Swap,
            Gate::Rzz(0.83),
            Gate::Cp(-1.2),
        ] {
            let m = gate.matrix2().unwrap();
            for (q0, q1) in [(0, 1), (1, 0), (0, 3), (3, 1), (2, 3)] {
                let mut psi = scrambled_state();
                let expect = matrix2_full_scan(&psi, &m, q0, q1);
                psi.apply_matrix2(&m, q0, q1);
                for (i, (a, b)) in psi.amps.iter().zip(&expect).enumerate() {
                    assert!(
                        a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                        "{gate:?} on ({q0}, {q1}): amplitude {i} is {a:?}, full scan got {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn kernels_bit_identical_when_forced_to_chunk() {
        // Drive every specialized kernel plus both dense kernels over an
        // 8-qubit state, serial vs forced-chunked under pools of 2/4/8
        // threads, and require bitwise-equal amplitudes — chunk boundaries
        // (and the SIMD/scalar-tail split they move) must not perturb a
        // single ULP.
        let evolve = |psi: &mut StateVector| {
            for q in 0..8 {
                psi.apply_gate(&Gate::H, &[q]);
            }
            psi.apply_gate(&Gate::Ry(0.37), &[3]);
            psi.apply_gate(&Gate::X, &[1]);
            psi.apply_gate(&Gate::S, &[6]);
            psi.apply_gate(&Gate::Rz(-1.1), &[0]);
            // Qubit-0 operands exercise the adjacent/odd-lane fast paths.
            psi.apply_gate(&Gate::S, &[0]);
            psi.apply_gate(&Gate::X, &[0]);
            psi.apply_gate(&Gate::Cx, &[0, 3]);
            psi.apply_gate(&Gate::Cx, &[0, 1]);
            psi.apply_gate(&Gate::Cx, &[2, 5]);
            psi.apply_gate(&Gate::Cz, &[7, 0]);
            psi.apply_gate(&Gate::Swap, &[4, 1]);
            psi.apply_gate(&Gate::Rzz(2.3), &[6, 3]);
            psi.apply_gate(&Gate::Cp(0.9), &[5, 7]);
            psi.apply_matrix2(&Gate::Cx.matrix2().unwrap(), 0, 4);
        };
        let mut serial = StateVector::zero_state(8);
        evolve(&mut serial);
        let prev = chunk::set_force_parallel(true);
        for threads in [2usize, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let mut chunked = StateVector::zero_state(8);
            pool.install(|| evolve(&mut chunked));
            for (i, (a, b)) in serial.amps.iter().zip(&chunked.amps).enumerate() {
                assert!(
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                    "amplitude {i} differs at {threads} forced threads: {a:?} vs {b:?}"
                );
            }
        }
        chunk::set_force_parallel(prev);
    }

    /// Composes the index maps of a gate list into affine (cols, offset)
    /// form — the same algebra as the fusion pass, rebuilt independently.
    fn compose_map(n: usize, gates: &[(Gate, [usize; 2])]) -> (Vec<u64>, u64) {
        let mut cols: Vec<u64> = (0..n).map(|k| 1u64 << k).collect();
        let mut offset = 0u64;
        for (gate, qs) in gates {
            for v in cols.iter_mut().chain(std::iter::once(&mut offset)) {
                match gate {
                    Gate::X => {}
                    Gate::Cx => *v ^= ((*v >> qs[0]) & 1) << qs[1],
                    Gate::Swap => {
                        let x = ((*v >> qs[0]) ^ (*v >> qs[1])) & 1;
                        *v ^= (x << qs[0]) | (x << qs[1]);
                    }
                    _ => unreachable!(),
                }
            }
            if *gate == Gate::X {
                offset ^= 1 << qs[0];
            }
        }
        (cols, offset)
    }

    #[test]
    fn permute_amps_matches_gate_by_gate_application() {
        // A 10-qubit scrambled state pushed through a mixed X/CX/SWAP
        // sequence: applying the gates individually and applying their
        // composed affine map in one pass must agree bit-for-bit —
        // permutations only move amplitudes, so there is no rounding.
        let gates: [(Gate, [usize; 2]); 7] = [
            (Gate::X, [4, 0]),
            (Gate::Cx, [0, 1]),
            (Gate::Cx, [7, 2]),
            (Gate::Swap, [3, 9]),
            (Gate::Cx, [2, 0]),
            (Gate::X, [9, 0]),
            (Gate::Swap, [0, 5]),
        ];
        let mut reference = scrambled_state_n(10);
        let mut permuted = reference.clone();
        for (gate, qs) in &gates {
            let operands: &[usize] = if *gate == Gate::X { &qs[..1] } else { qs };
            reference.apply_gate(gate, operands);
        }
        let (cols, offset) = compose_map(10, &gates);
        permuted.permute_amps(&cols, offset);
        for (i, (a, b)) in reference.amps.iter().zip(&permuted.amps).enumerate() {
            assert!(
                a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                "amplitude {i}: {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn permute_amps_bit_identical_when_forced_to_chunk() {
        let gates: [(Gate, [usize; 2]); 3] =
            [(Gate::Cx, [0, 1]), (Gate::Swap, [2, 8]), (Gate::X, [5, 0])];
        let (cols, offset) = compose_map(9, &gates);
        let mut serial = scrambled_state_n(9);
        let mut chunked = serial.clone();
        serial.permute_amps(&cols, offset);
        let prev = chunk::set_force_parallel(true);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        pool.install(|| chunked.permute_amps(&cols, offset));
        chunk::set_force_parallel(prev);
        for (i, (a, b)) in serial.amps.iter().zip(&chunked.amps).enumerate() {
            assert!(
                a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                "amplitude {i} differs under forced chunking: {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn invert_affine_round_trips() {
        // inv ∘ map = identity on every index for a nontrivial map.
        let gates: [(Gate, [usize; 2]); 5] = [
            (Gate::Cx, [0, 3]),
            (Gate::Swap, [1, 4]),
            (Gate::X, [2, 0]),
            (Gate::Cx, [4, 2]),
            (Gate::Cx, [2, 1]),
        ];
        let (cols, offset) = compose_map(5, &gates);
        let (icols, ioffset) = invert_affine(&cols, offset);
        let eval = |cols: &[u64], off: u64, i: u64| {
            let mut out = off;
            let mut bits = i;
            while bits != 0 {
                out ^= cols[bits.trailing_zeros() as usize];
                bits &= bits - 1;
            }
            out
        };
        for i in 0u64..32 {
            let j = eval(&cols, offset, i);
            assert_eq!(eval(&icols, ioffset, j), i, "inverse fails at {i}");
        }
    }
}
