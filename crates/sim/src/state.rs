//! Exact statevector representation and gate application.

use rand::Rng;
use supermarq_circuit::{Gate, Instruction, C64};
use supermarq_pauli::{Pauli, PauliString, PauliSum};

/// Maximum register size the simulator accepts (memory guard: a 26-qubit
/// state is already 1 GiB of amplitudes).
pub const MAX_QUBITS: usize = 26;

/// An exact `2^n`-amplitude quantum state.
///
/// Qubit `q` corresponds to bit `q` of the amplitude index (little-endian:
/// qubit 0 is the least-significant bit).
///
/// # Example
///
/// ```
/// use supermarq_sim::StateVector;
/// use supermarq_circuit::Gate;
///
/// let mut psi = StateVector::zero_state(2);
/// psi.apply_gate(&Gate::H, &[0]);
/// psi.apply_gate(&Gate::Cx, &[0, 1]);
/// assert!((psi.probability(0b00) - 0.5).abs() < 1e-12);
/// assert!((psi.probability(0b11) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// The computational-basis state `|00...0>`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > MAX_QUBITS`.
    pub fn zero_state(num_qubits: usize) -> Self {
        assert!(
            num_qubits <= MAX_QUBITS,
            "register too large: {num_qubits} > {MAX_QUBITS}"
        );
        let mut amps = vec![C64::ZERO; 1usize << num_qubits];
        amps[0] = C64::ONE;
        StateVector { num_qubits, amps }
    }

    /// The computational-basis state `|bits>` (bit `q` of `bits` = qubit `q`).
    pub fn basis_state(num_qubits: usize, bits: u64) -> Self {
        assert!(num_qubits <= MAX_QUBITS, "register too large");
        assert!(
            num_qubits == 64 || bits < (1u64 << num_qubits),
            "basis index out of range"
        );
        let mut amps = vec![C64::ZERO; 1usize << num_qubits];
        amps[bits as usize] = C64::ONE;
        StateVector { num_qubits, amps }
    }

    /// Builds a state from raw amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two or the norm differs from 1
    /// by more than `1e-6`.
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        let len = amps.len();
        assert!(
            len.is_power_of_two() && len > 0,
            "amplitude count must be a power of two"
        );
        let num_qubits = len.trailing_zeros() as usize;
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!(
            (norm - 1.0).abs() < 1e-6,
            "state is not normalized (norm^2 = {norm})"
        );
        StateVector { num_qubits, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The amplitude vector.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Probability of observing basis state `bits` on full measurement.
    pub fn probability(&self, bits: u64) -> f64 {
        self.amps[bits as usize].norm_sqr()
    }

    /// `<self|other>`.
    ///
    /// # Panics
    ///
    /// Panics on size mismatch.
    pub fn inner_product(&self, other: &StateVector) -> C64 {
        assert_eq!(self.num_qubits, other.num_qubits, "size mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// State fidelity `|<self|other>|^2`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Squared norm (should be 1 up to numerical error).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Renormalizes the state to unit norm.
    ///
    /// # Panics
    ///
    /// Panics if the state is (numerically) zero.
    pub fn renormalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        assert!(n > 1e-12, "cannot renormalize zero state");
        let inv = 1.0 / n;
        for a in &mut self.amps {
            *a = a.scale(inv);
        }
    }

    /// Applies a 2x2 unitary to `qubit`.
    pub fn apply_matrix1(&mut self, m: &[[C64; 2]; 2], qubit: usize) {
        assert!(qubit < self.num_qubits, "qubit out of range");
        let stride = 1usize << qubit;
        let len = self.amps.len();
        let mut base = 0;
        while base < len {
            for offset in base..base + stride {
                let i0 = offset;
                let i1 = offset | stride;
                let a0 = self.amps[i0];
                let a1 = self.amps[i1];
                self.amps[i0] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[i1] = m[1][0] * a0 + m[1][1] * a1;
            }
            base += stride << 1;
        }
    }

    /// Applies a 4x4 unitary to the ordered pair `(q0, q1)`; the matrix uses
    /// basis order `|q0 q1>` with `q0` as the most-significant bit, matching
    /// [`Gate::matrix2`].
    pub fn apply_matrix2(&mut self, m: &[[C64; 4]; 4], q0: usize, q1: usize) {
        assert!(
            q0 < self.num_qubits && q1 < self.num_qubits && q0 != q1,
            "bad qubit pair"
        );
        let b0 = 1usize << q0;
        let b1 = 1usize << q1;
        let len = self.amps.len();
        for idx in 0..len {
            // Visit each 4-tuple once: only from its lowest member.
            if idx & b0 != 0 || idx & b1 != 0 {
                continue;
            }
            let i00 = idx;
            let i01 = idx | b1; // q1 = 1
            let i10 = idx | b0; // q0 = 1
            let i11 = idx | b0 | b1;
            let a = [
                self.amps[i00],
                self.amps[i01],
                self.amps[i10],
                self.amps[i11],
            ];
            for (row, &target) in [i00, i01, i10, i11].iter().enumerate() {
                let mut v = C64::ZERO;
                for col in 0..4 {
                    v += m[row][col] * a[col];
                }
                self.amps[target] = v;
            }
        }
    }

    /// Applies a unitary gate to the given operands.
    ///
    /// # Panics
    ///
    /// Panics if the gate is not unitary (use measurement/reset methods for
    /// those) or the operand count mismatches.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) {
        if let Some(m) = gate.matrix1() {
            assert_eq!(qubits.len(), 1, "one-qubit gate takes one operand");
            self.apply_matrix1(&m, qubits[0]);
        } else if let Some(m) = gate.matrix2() {
            assert_eq!(qubits.len(), 2, "two-qubit gate takes two operands");
            self.apply_matrix2(&m, qubits[0], qubits[1]);
        } else {
            panic!("apply_gate called with non-unitary gate {gate:?}");
        }
    }

    /// Applies a unitary instruction.
    pub fn apply_instruction(&mut self, instr: &Instruction) {
        self.apply_gate(&instr.gate, &instr.qubits);
    }

    /// Probability that measuring `qubit` yields 1.
    pub fn probability_of_one(&self, qubit: usize) -> f64 {
        assert!(qubit < self.num_qubits, "qubit out of range");
        let bit = 1usize << qubit;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & bit != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Projectively measures `qubit`, collapsing the state, and returns the
    /// observed bit.
    pub fn measure_qubit<R: Rng + ?Sized>(&mut self, qubit: usize, rng: &mut R) -> bool {
        let p1 = self.probability_of_one(qubit);
        let outcome = rng.gen::<f64>() < p1;
        self.project_qubit(qubit, outcome);
        outcome
    }

    /// Projects `qubit` onto `value` and renormalizes.
    ///
    /// # Panics
    ///
    /// Panics if the projection has zero probability.
    pub fn project_qubit(&mut self, qubit: usize, value: bool) {
        let bit = 1usize << qubit;
        for (i, a) in self.amps.iter_mut().enumerate() {
            if ((i & bit) != 0) != value {
                *a = C64::ZERO;
            }
        }
        self.renormalize();
    }

    /// Resets `qubit` to `|0>`: measures it and applies X if the result was 1.
    pub fn reset_qubit<R: Rng + ?Sized>(&mut self, qubit: usize, rng: &mut R) {
        if self.measure_qubit(qubit, rng) {
            let m = Gate::X.matrix1().expect("X has a matrix");
            self.apply_matrix1(&m, qubit);
        }
    }

    /// Samples a full computational-basis measurement without collapsing the
    /// state (valid when no further evolution uses the state).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            acc += a.norm_sqr();
            if r < acc {
                return i as u64;
            }
        }
        (self.amps.len() - 1) as u64
    }

    /// Applies a Pauli string as a unitary (used by stochastic noise).
    pub fn apply_pauli_string(&mut self, p: &PauliString) {
        assert_eq!(p.num_qubits(), self.num_qubits, "size mismatch");
        for (q, &pauli) in p.paulis().iter().enumerate() {
            let gate = match pauli {
                Pauli::I => continue,
                Pauli::X => Gate::X,
                Pauli::Y => Gate::Y,
                Pauli::Z => Gate::Z,
            };
            let m = gate.matrix1().expect("pauli has a matrix");
            self.apply_matrix1(&m, q);
        }
    }

    /// Returns `P|self>` for a Pauli string (without phase ambiguity: Y
    /// carries its usual `[[0,-i],[i,0]]` matrix).
    fn pauli_applied(&self, p: &PauliString) -> StateVector {
        let mut out = self.clone();
        out.apply_pauli_string(p);
        out
    }

    /// Expectation value `<self| P |self>` of a Pauli string. Always real
    /// for Hermitian `P`; the real part is returned.
    pub fn expectation_pauli(&self, p: &PauliString) -> f64 {
        let applied = self.pauli_applied(p);
        self.inner_product(&applied).re
    }

    /// Expectation value of a weighted Pauli sum.
    pub fn expectation(&self, h: &PauliSum) -> f64 {
        h.iter().map(|(c, p)| c * self.expectation_pauli(p)).sum()
    }

    /// The full probability distribution over basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn zero_state_has_unit_amplitude_at_origin() {
        let psi = StateVector::zero_state(3);
        assert_eq!(psi.num_qubits(), 3);
        assert!((psi.probability(0) - 1.0).abs() < 1e-12);
        assert!((psi.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_gate_flips_bit() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Gate::X, &[1]);
        assert!((psi.probability(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_probabilities() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Gate::H, &[0]);
        psi.apply_gate(&Gate::Cx, &[0, 1]);
        assert!((psi.probability(0b00) - 0.5).abs() < 1e-12);
        assert!((psi.probability(0b11) - 0.5).abs() < 1e-12);
        assert!(psi.probability(0b01) < 1e-12);
    }

    #[test]
    fn cx_respects_operand_order() {
        // Control = qubit 1, target = qubit 0.
        let mut psi = StateVector::basis_state(2, 0b10);
        psi.apply_gate(&Gate::Cx, &[1, 0]);
        assert!((psi.probability(0b11) - 1.0).abs() < 1e-12);
        // Control = qubit 0 in |0>: nothing happens.
        let mut psi = StateVector::basis_state(2, 0b10);
        psi.apply_gate(&Gate::Cx, &[0, 1]);
        assert!((psi.probability(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_exchanges_bits() {
        let mut psi = StateVector::basis_state(3, 0b001);
        psi.apply_gate(&Gate::Swap, &[0, 2]);
        assert!((psi.probability(0b100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ghz_state_on_five_qubits() {
        let n = 5;
        let mut psi = StateVector::zero_state(n);
        psi.apply_gate(&Gate::H, &[0]);
        for q in 0..n - 1 {
            psi.apply_gate(&Gate::Cx, &[q, q + 1]);
        }
        assert!((psi.probability(0) - 0.5).abs() < 1e-12);
        assert!((psi.probability((1 << n) - 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rz_phases_do_not_change_populations() {
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(&Gate::H, &[0]);
        let p_before = psi.probabilities();
        psi.apply_gate(&Gate::Rz(1.234), &[0]);
        let p_after = psi.probabilities();
        for (a, b) in p_before.iter().zip(&p_after) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn measurement_collapses_state() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Gate::H, &[0]);
        psi.apply_gate(&Gate::Cx, &[0, 1]);
        let mut r = rng();
        let outcome = psi.measure_qubit(0, &mut r);
        // After measuring one half of a Bell pair the other is determined.
        let expected = if outcome { 0b11 } else { 0b00 };
        assert!((psi.probability(expected) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_returns_qubit_to_zero() {
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(&Gate::X, &[0]);
        let mut r = rng();
        psi.reset_qubit(0, &mut r);
        assert!((psi.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(&Gate::Ry(2.0 * (0.3f64.sqrt()).asin()), &[0]);
        // P(1) = 0.3.
        let mut r = rng();
        let shots = 20000;
        let ones: usize = (0..shots).filter(|_| psi.sample(&mut r) == 1).count();
        let freq = ones as f64 / shots as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq={freq}");
    }

    #[test]
    fn expectation_of_z_on_zero_is_one() {
        let psi = StateVector::zero_state(1);
        let z: PauliString = "Z".parse().unwrap();
        assert!((psi.expectation_pauli(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_of_mermin_on_ghz_i_state() {
        use supermarq_pauli::mermin_operator;
        // |phi> = (|000> + i|111>)/sqrt(2) should give <M> = 2^{n-1} = 4.
        let n = 3;
        let mut amps = vec![C64::ZERO; 8];
        amps[0] = C64::real(1.0 / 2f64.sqrt());
        amps[7] = C64::new(0.0, 1.0 / 2f64.sqrt());
        let psi = StateVector::from_amplitudes(amps);
        let m = mermin_operator(n);
        assert!((psi.expectation(&m) - 4.0).abs() < 1e-10);
    }

    #[test]
    fn tfim_expectation_on_all_plus_state() {
        use supermarq_pauli::tfim_hamiltonian;
        // |+++>: <ZZ> = 0, <X> = 1 per site, so <H> = -h_x * n.
        let n = 3;
        let mut psi = StateVector::zero_state(n);
        for q in 0..n {
            psi.apply_gate(&Gate::H, &[q]);
        }
        let h = tfim_hamiltonian(n, 1.0, 0.5);
        assert!((psi.expectation(&h) + 1.5).abs() < 1e-12);
    }

    #[test]
    fn inner_product_and_fidelity() {
        let a = StateVector::zero_state(2);
        let mut b = StateVector::zero_state(2);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
        b.apply_gate(&Gate::X, &[0]);
        assert!(a.fidelity(&b) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not normalized")]
    fn from_amplitudes_rejects_unnormalized() {
        StateVector::from_amplitudes(vec![C64::ONE, C64::ONE]);
    }

    #[test]
    #[should_panic(expected = "register too large")]
    fn rejects_oversized_register() {
        StateVector::zero_state(MAX_QUBITS + 1);
    }

    #[test]
    fn two_qubit_gate_on_noncontiguous_qubits() {
        // rzz on qubits (0, 2) of a 3-qubit register.
        let mut psi = StateVector::zero_state(3);
        for q in 0..3 {
            psi.apply_gate(&Gate::H, &[q]);
        }
        psi.apply_gate(&Gate::Rzz(std::f64::consts::PI), &[0, 2]);
        // <Z0 Z2> after rzz(pi) on |+++>: rzz(pi) = -i Z0 Z2 up to phase,
        // state populations unchanged.
        let p = psi.probabilities();
        for v in p {
            assert!((v - 0.125).abs() < 1e-12);
        }
        // But X expectation on qubit 1 unchanged = 1.
        let x1: PauliString = "IXI".parse().unwrap();
        assert!((psi.expectation_pauli(&x1) - 1.0).abs() < 1e-12);
        // Rzz(pi) = -i Z0 Z2 up to phase, so qubit 0 is now in |->: <X0> = -1.
        let x0: PauliString = "XII".parse().unwrap();
        assert!((psi.expectation_pauli(&x0) + 1.0).abs() < 1e-12);
    }
}
