//! Exact statevector representation and gate application.

use rand::Rng;
use supermarq_circuit::{Gate, Instruction, C64};
use supermarq_pauli::{Pauli, PauliString, PauliSum};

/// Maximum register size the simulator accepts (memory guard: a 26-qubit
/// state is already 1 GiB of amplitudes).
pub const MAX_QUBITS: usize = 26;

/// An exact `2^n`-amplitude quantum state.
///
/// Qubit `q` corresponds to bit `q` of the amplitude index (little-endian:
/// qubit 0 is the least-significant bit).
///
/// # Example
///
/// ```
/// use supermarq_sim::StateVector;
/// use supermarq_circuit::Gate;
///
/// let mut psi = StateVector::zero_state(2);
/// psi.apply_gate(&Gate::H, &[0]);
/// psi.apply_gate(&Gate::Cx, &[0, 1]);
/// assert!((psi.probability(0b00) - 0.5).abs() < 1e-12);
/// assert!((psi.probability(0b11) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// The computational-basis state `|00...0>`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > MAX_QUBITS`.
    pub fn zero_state(num_qubits: usize) -> Self {
        assert!(
            num_qubits <= MAX_QUBITS,
            "register too large: {num_qubits} > {MAX_QUBITS}"
        );
        let mut amps = vec![C64::ZERO; 1usize << num_qubits];
        amps[0] = C64::ONE;
        StateVector { num_qubits, amps }
    }

    /// The computational-basis state `|bits>` (bit `q` of `bits` = qubit `q`).
    pub fn basis_state(num_qubits: usize, bits: u64) -> Self {
        assert!(num_qubits <= MAX_QUBITS, "register too large");
        assert!(
            num_qubits == 64 || bits < (1u64 << num_qubits),
            "basis index out of range"
        );
        let mut amps = vec![C64::ZERO; 1usize << num_qubits];
        amps[bits as usize] = C64::ONE;
        StateVector { num_qubits, amps }
    }

    /// Builds a state from raw amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two or the norm differs from 1
    /// by more than `1e-6`.
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        let len = amps.len();
        assert!(
            len.is_power_of_two() && len > 0,
            "amplitude count must be a power of two"
        );
        let num_qubits = len.trailing_zeros() as usize;
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!(
            (norm - 1.0).abs() < 1e-6,
            "state is not normalized (norm^2 = {norm})"
        );
        StateVector { num_qubits, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The amplitude vector.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Probability of observing basis state `bits` on full measurement.
    pub fn probability(&self, bits: u64) -> f64 {
        self.amps[bits as usize].norm_sqr()
    }

    /// `<self|other>`.
    ///
    /// # Panics
    ///
    /// Panics on size mismatch.
    pub fn inner_product(&self, other: &StateVector) -> C64 {
        assert_eq!(self.num_qubits, other.num_qubits, "size mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// State fidelity `|<self|other>|^2`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Squared norm (should be 1 up to numerical error).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Renormalizes the state to unit norm.
    ///
    /// # Panics
    ///
    /// Panics if the state is (numerically) zero.
    pub fn renormalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        assert!(n > 1e-12, "cannot renormalize zero state");
        let inv = 1.0 / n;
        for a in &mut self.amps {
            *a = a.scale(inv);
        }
    }

    /// Applies a 2x2 unitary to `qubit`.
    pub fn apply_matrix1(&mut self, m: &[[C64; 2]; 2], qubit: usize) {
        assert!(qubit < self.num_qubits, "qubit out of range");
        let stride = 1usize << qubit;
        let len = self.amps.len();
        let mut base = 0;
        while base < len {
            for offset in base..base + stride {
                let i0 = offset;
                let i1 = offset | stride;
                let a0 = self.amps[i0];
                let a1 = self.amps[i1];
                self.amps[i0] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[i1] = m[1][0] * a0 + m[1][1] * a1;
            }
            base += stride << 1;
        }
    }

    /// Applies a 4x4 unitary to the ordered pair `(q0, q1)`; the matrix uses
    /// basis order `|q0 q1>` with `q0` as the most-significant bit, matching
    /// [`Gate::matrix2`].
    pub fn apply_matrix2(&mut self, m: &[[C64; 4]; 4], q0: usize, q1: usize) {
        assert!(
            q0 < self.num_qubits && q1 < self.num_qubits && q0 != q1,
            "bad qubit pair"
        );
        let b0 = 1usize << q0;
        let b1 = 1usize << q1;
        let len = self.amps.len();
        for idx in 0..len {
            // Visit each 4-tuple once: only from its lowest member.
            if idx & b0 != 0 || idx & b1 != 0 {
                continue;
            }
            let i00 = idx;
            let i01 = idx | b1; // q1 = 1
            let i10 = idx | b0; // q0 = 1
            let i11 = idx | b0 | b1;
            let a = [
                self.amps[i00],
                self.amps[i01],
                self.amps[i10],
                self.amps[i11],
            ];
            for (row, &target) in [i00, i01, i10, i11].iter().enumerate() {
                let mut v = C64::ZERO;
                for col in 0..4 {
                    v += m[row][col] * a[col];
                }
                self.amps[target] = v;
            }
        }
    }

    /// Applies a unitary gate to the given operands.
    ///
    /// Diagonal gates (Z/S/T/Rz/P/Cz/Cp/Rzz) dispatch to in-place phase
    /// multiplies, X/CX/SWAP to index permutations; everything else falls
    /// back to the general dense [`StateVector::apply_matrix1`] /
    /// [`StateVector::apply_matrix2`] kernels. All callers (the executor,
    /// the density-matrix reference, verification audits, Clifford
    /// cross-checks) route through here and share the specialized paths.
    ///
    /// # Panics
    ///
    /// Panics if the gate is not unitary (use measurement/reset methods for
    /// those) or the operand count mismatches.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) {
        use std::f64::consts::FRAC_PI_4;
        let one_operand = |qs: &[usize]| {
            assert_eq!(qs.len(), 1, "one-qubit gate takes one operand");
            qs[0]
        };
        let two_operands = |qs: &[usize]| {
            assert_eq!(qs.len(), 2, "two-qubit gate takes two operands");
            (qs[0], qs[1])
        };
        match *gate {
            Gate::I => {
                let q = one_operand(qubits);
                assert!(q < self.num_qubits, "qubit out of range");
            }
            Gate::X => self.apply_x(one_operand(qubits)),
            Gate::Z => self.apply_phase1(one_operand(qubits), -C64::ONE),
            Gate::S => self.apply_phase1(one_operand(qubits), C64::I),
            Gate::Sdg => self.apply_phase1(one_operand(qubits), -C64::I),
            Gate::T => self.apply_phase1(one_operand(qubits), C64::cis(FRAC_PI_4)),
            Gate::Tdg => self.apply_phase1(one_operand(qubits), C64::cis(-FRAC_PI_4)),
            Gate::P(t) => self.apply_phase1(one_operand(qubits), C64::cis(t)),
            Gate::Rz(t) => {
                self.apply_diagonal1(one_operand(qubits), C64::cis(-t / 2.0), C64::cis(t / 2.0));
            }
            Gate::Cx => {
                let (c, t) = two_operands(qubits);
                self.apply_cx(c, t);
            }
            Gate::Cz => {
                let (a, b) = two_operands(qubits);
                self.apply_controlled_phase(a, b, -C64::ONE);
            }
            Gate::Cp(t) => {
                let (a, b) = two_operands(qubits);
                self.apply_controlled_phase(a, b, C64::cis(t));
            }
            Gate::Swap => {
                let (a, b) = two_operands(qubits);
                self.apply_swap(a, b);
            }
            Gate::Rzz(t) => {
                let (a, b) = two_operands(qubits);
                self.apply_rzz(a, b, t);
            }
            _ => {
                if let Some(m) = gate.matrix1() {
                    self.apply_matrix1(&m, one_operand(qubits));
                } else if let Some(m) = gate.matrix2() {
                    let (a, b) = two_operands(qubits);
                    self.apply_matrix2(&m, a, b);
                } else {
                    panic!("apply_gate called with non-unitary gate {gate:?}");
                }
            }
        }
    }

    /// Pauli-X as an index permutation: swaps each `|...0_q...>` amplitude
    /// with its `|...1_q...>` partner, no arithmetic.
    fn apply_x(&mut self, qubit: usize) {
        assert!(qubit < self.num_qubits, "qubit out of range");
        let stride = 1usize << qubit;
        let len = self.amps.len();
        let mut base = 0;
        while base < len {
            for i in base..base + stride {
                self.amps.swap(i, i | stride);
            }
            base += stride << 1;
        }
    }

    /// Diagonal one-qubit gate `diag(d0, d1)` as in-place multiplies.
    fn apply_diagonal1(&mut self, qubit: usize, d0: C64, d1: C64) {
        assert!(qubit < self.num_qubits, "qubit out of range");
        let stride = 1usize << qubit;
        let len = self.amps.len();
        let mut base = 0;
        while base < len {
            for i in base..base + stride {
                self.amps[i] = d0 * self.amps[i];
                let j = i | stride;
                self.amps[j] = d1 * self.amps[j];
            }
            base += stride << 1;
        }
    }

    /// Phase gate `diag(1, phase)`: touches only the `|1>` half of the
    /// register (Z/S/T/P all land here).
    fn apply_phase1(&mut self, qubit: usize, phase: C64) {
        assert!(qubit < self.num_qubits, "qubit out of range");
        let stride = 1usize << qubit;
        let len = self.amps.len();
        let mut base = stride;
        while base < len {
            for i in base..base + stride {
                self.amps[i] = phase * self.amps[i];
            }
            base += stride << 1;
        }
    }

    /// CNOT as an index permutation: for every index with the control set,
    /// swaps the target's `0`/`1` amplitudes.
    fn apply_cx(&mut self, control: usize, target: usize) {
        self.assert_pair(control, target);
        let bc = 1usize << control;
        let bt = 1usize << target;
        let (lo, hi) = if bc < bt { (bc, bt) } else { (bt, bc) };
        let len = self.amps.len();
        let mut base_h = 0;
        while base_h < len {
            let mut base_l = base_h;
            while base_l < base_h + hi {
                for i in base_l..base_l + lo {
                    self.amps.swap(i | bc, i | bc | bt);
                }
                base_l += lo << 1;
            }
            base_h += hi << 1;
        }
    }

    /// SWAP as an index permutation: exchanges the `|01>` and `|10>`
    /// amplitudes of every 4-tuple.
    fn apply_swap(&mut self, a: usize, b: usize) {
        self.assert_pair(a, b);
        let ba = 1usize << a;
        let bb = 1usize << b;
        let (lo, hi) = if ba < bb { (ba, bb) } else { (bb, ba) };
        let len = self.amps.len();
        let mut base_h = 0;
        while base_h < len {
            let mut base_l = base_h;
            while base_l < base_h + hi {
                for i in base_l..base_l + lo {
                    self.amps.swap(i | ba, i | bb);
                }
                base_l += lo << 1;
            }
            base_h += hi << 1;
        }
    }

    /// Controlled phase `diag(1, 1, 1, phase)`: multiplies only the `|11>`
    /// amplitudes (CZ and CP land here).
    fn apply_controlled_phase(&mut self, a: usize, b: usize, phase: C64) {
        self.assert_pair(a, b);
        let ba = 1usize << a;
        let bb = 1usize << b;
        let (lo, hi) = if ba < bb { (ba, bb) } else { (bb, ba) };
        let len = self.amps.len();
        let mut base_h = hi;
        while base_h < len {
            let mut base_l = base_h + lo;
            while base_l < base_h + hi {
                for i in base_l..base_l + lo {
                    self.amps[i] = phase * self.amps[i];
                }
                base_l += lo << 1;
            }
            base_h += hi << 1;
        }
    }

    /// `Rzz(theta)` as a parity-conditioned phase multiply:
    /// `e^{-i theta/2}` on even-parity (`|00>`, `|11>`) amplitudes and
    /// `e^{+i theta/2}` on odd-parity ones.
    fn apply_rzz(&mut self, a: usize, b: usize, theta: f64) {
        self.assert_pair(a, b);
        let even = C64::cis(-theta / 2.0);
        let odd = C64::cis(theta / 2.0);
        let ba = 1usize << a;
        let bb = 1usize << b;
        let (lo, hi) = if ba < bb { (ba, bb) } else { (bb, ba) };
        let len = self.amps.len();
        let mut base_h = 0;
        while base_h < len {
            let mut base_l = base_h;
            while base_l < base_h + hi {
                for i in base_l..base_l + lo {
                    self.amps[i] = even * self.amps[i];
                    self.amps[i | lo] = odd * self.amps[i | lo];
                    self.amps[i | hi] = odd * self.amps[i | hi];
                    self.amps[i | lo | hi] = even * self.amps[i | lo | hi];
                }
                base_l += lo << 1;
            }
            base_h += hi << 1;
        }
    }

    fn assert_pair(&self, a: usize, b: usize) {
        assert!(
            a < self.num_qubits && b < self.num_qubits && a != b,
            "bad qubit pair"
        );
    }

    /// Applies a unitary instruction.
    pub fn apply_instruction(&mut self, instr: &Instruction) {
        self.apply_gate(&instr.gate, &instr.qubits);
    }

    /// Probability that measuring `qubit` yields 1.
    pub fn probability_of_one(&self, qubit: usize) -> f64 {
        assert!(qubit < self.num_qubits, "qubit out of range");
        let stride = 1usize << qubit;
        let len = self.amps.len();
        let mut p = 0.0;
        let mut base = stride;
        while base < len {
            for a in &self.amps[base..base + stride] {
                p += a.norm_sqr();
            }
            base += stride << 1;
        }
        p
    }

    /// Projectively measures `qubit`, collapsing the state, and returns the
    /// observed bit.
    pub fn measure_qubit<R: Rng + ?Sized>(&mut self, qubit: usize, rng: &mut R) -> bool {
        let p1 = self.probability_of_one(qubit);
        let outcome = rng.gen::<f64>() < p1;
        self.project_qubit(qubit, outcome);
        outcome
    }

    /// Projects `qubit` onto `value` and renormalizes.
    ///
    /// # Panics
    ///
    /// Panics if the projection has zero probability.
    pub fn project_qubit(&mut self, qubit: usize, value: bool) {
        assert!(qubit < self.num_qubits, "qubit out of range");
        let stride = 1usize << qubit;
        let len = self.amps.len();
        // Zero the half that contradicts `value`, walking only those blocks.
        let mut base = if value { 0 } else { stride };
        while base < len {
            self.amps[base..base + stride].fill(C64::ZERO);
            base += stride << 1;
        }
        self.renormalize();
    }

    /// Resets `qubit` to `|0>`: measures it and applies X if the result was 1.
    pub fn reset_qubit<R: Rng + ?Sized>(&mut self, qubit: usize, rng: &mut R) {
        if self.measure_qubit(qubit, rng) {
            let m = Gate::X.matrix1().expect("X has a matrix");
            self.apply_matrix1(&m, qubit);
        }
    }

    /// Samples a full computational-basis measurement without collapsing the
    /// state (valid when no further evolution uses the state).
    ///
    /// When float rounding leaves the cumulative probability just below the
    /// drawn uniform variate, the fallback is the last basis state with
    /// *nonzero* probability — never a physically impossible outcome. For
    /// repeated sampling from the same state, build a [`CumulativeSampler`]
    /// once instead of paying this O(2^n) scan per shot.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        let mut last_nonzero = 0u64;
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if p > 0.0 {
                last_nonzero = i as u64;
            }
            acc += p;
            if r < acc {
                return i as u64;
            }
        }
        last_nonzero
    }

    /// Applies a Pauli string as a unitary (used by stochastic noise).
    pub fn apply_pauli_string(&mut self, p: &PauliString) {
        assert_eq!(p.num_qubits(), self.num_qubits, "size mismatch");
        for (q, &pauli) in p.paulis().iter().enumerate() {
            let gate = match pauli {
                Pauli::I => continue,
                Pauli::X => Gate::X,
                Pauli::Y => Gate::Y,
                Pauli::Z => Gate::Z,
            };
            let m = gate.matrix1().expect("pauli has a matrix");
            self.apply_matrix1(&m, q);
        }
    }

    /// Returns `P|self>` for a Pauli string (without phase ambiguity: Y
    /// carries its usual `[[0,-i],[i,0]]` matrix).
    fn pauli_applied(&self, p: &PauliString) -> StateVector {
        let mut out = self.clone();
        out.apply_pauli_string(p);
        out
    }

    /// Expectation value `<self| P |self>` of a Pauli string. Always real
    /// for Hermitian `P`; the real part is returned.
    pub fn expectation_pauli(&self, p: &PauliString) -> f64 {
        let applied = self.pauli_applied(p);
        self.inner_product(&applied).re
    }

    /// Expectation value of a weighted Pauli sum.
    pub fn expectation(&self, h: &PauliSum) -> f64 {
        h.iter().map(|(c, p)| c * self.expectation_pauli(p)).sum()
    }

    /// The full probability distribution over basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }
}

/// Precomputed cumulative-probability table for repeated basis-state
/// sampling from a fixed state: O(2^n) once, then O(n) binary search per
/// draw instead of [`StateVector::sample`]'s O(2^n) linear scan per shot.
///
/// Zero-probability outcomes occupy zero-width intervals in the table and
/// can never be drawn; when float rounding leaves the final cumulative sum
/// below the drawn variate, the fallback is the last basis state with
/// nonzero probability.
///
/// # Example
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use supermarq_circuit::Gate;
/// use supermarq_sim::{CumulativeSampler, StateVector};
///
/// let mut psi = StateVector::zero_state(2);
/// psi.apply_gate(&Gate::H, &[0]);
/// psi.apply_gate(&Gate::Cx, &[0, 1]);
/// let sampler = CumulativeSampler::new(&psi);
/// let mut rng = StdRng::seed_from_u64(1);
/// for _ in 0..100 {
///     let bits = sampler.sample(&mut rng);
///     assert!(bits == 0b00 || bits == 0b11);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CumulativeSampler {
    /// `cumulative[i]` = probability of drawing a basis index `<= i`.
    cumulative: Vec<f64>,
    /// Largest basis index with nonzero probability (rounding fallback).
    last_nonzero: u64,
}

impl CumulativeSampler {
    /// Builds the table from a state's probability distribution.
    pub fn new(state: &StateVector) -> Self {
        let mut cumulative = Vec::with_capacity(state.amps.len());
        let mut acc = 0.0;
        let mut last_nonzero = 0u64;
        for (i, a) in state.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if p > 0.0 {
                last_nonzero = i as u64;
            }
            acc += p;
            cumulative.push(acc);
        }
        CumulativeSampler {
            cumulative,
            last_nonzero,
        }
    }

    /// Draws one basis index by binary search over the cumulative table.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let r: f64 = rng.gen();
        // First index whose cumulative probability exceeds r; ties on a
        // zero-width interval are impossible because `cumulative` is flat
        // across zero-probability outcomes.
        let idx = self.cumulative.partition_point(|&c| c <= r);
        if idx < self.cumulative.len() {
            idx as u64
        } else {
            self.last_nonzero
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn zero_state_has_unit_amplitude_at_origin() {
        let psi = StateVector::zero_state(3);
        assert_eq!(psi.num_qubits(), 3);
        assert!((psi.probability(0) - 1.0).abs() < 1e-12);
        assert!((psi.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_gate_flips_bit() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Gate::X, &[1]);
        assert!((psi.probability(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_probabilities() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Gate::H, &[0]);
        psi.apply_gate(&Gate::Cx, &[0, 1]);
        assert!((psi.probability(0b00) - 0.5).abs() < 1e-12);
        assert!((psi.probability(0b11) - 0.5).abs() < 1e-12);
        assert!(psi.probability(0b01) < 1e-12);
    }

    #[test]
    fn cx_respects_operand_order() {
        // Control = qubit 1, target = qubit 0.
        let mut psi = StateVector::basis_state(2, 0b10);
        psi.apply_gate(&Gate::Cx, &[1, 0]);
        assert!((psi.probability(0b11) - 1.0).abs() < 1e-12);
        // Control = qubit 0 in |0>: nothing happens.
        let mut psi = StateVector::basis_state(2, 0b10);
        psi.apply_gate(&Gate::Cx, &[0, 1]);
        assert!((psi.probability(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_exchanges_bits() {
        let mut psi = StateVector::basis_state(3, 0b001);
        psi.apply_gate(&Gate::Swap, &[0, 2]);
        assert!((psi.probability(0b100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ghz_state_on_five_qubits() {
        let n = 5;
        let mut psi = StateVector::zero_state(n);
        psi.apply_gate(&Gate::H, &[0]);
        for q in 0..n - 1 {
            psi.apply_gate(&Gate::Cx, &[q, q + 1]);
        }
        assert!((psi.probability(0) - 0.5).abs() < 1e-12);
        assert!((psi.probability((1 << n) - 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rz_phases_do_not_change_populations() {
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(&Gate::H, &[0]);
        let p_before = psi.probabilities();
        psi.apply_gate(&Gate::Rz(1.234), &[0]);
        let p_after = psi.probabilities();
        for (a, b) in p_before.iter().zip(&p_after) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn measurement_collapses_state() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Gate::H, &[0]);
        psi.apply_gate(&Gate::Cx, &[0, 1]);
        let mut r = rng();
        let outcome = psi.measure_qubit(0, &mut r);
        // After measuring one half of a Bell pair the other is determined.
        let expected = if outcome { 0b11 } else { 0b00 };
        assert!((psi.probability(expected) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_returns_qubit_to_zero() {
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(&Gate::X, &[0]);
        let mut r = rng();
        psi.reset_qubit(0, &mut r);
        assert!((psi.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(&Gate::Ry(2.0 * (0.3f64.sqrt()).asin()), &[0]);
        // P(1) = 0.3.
        let mut r = rng();
        let shots = 20000;
        let ones: usize = (0..shots).filter(|_| psi.sample(&mut r) == 1).count();
        let freq = ones as f64 / shots as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq={freq}");
    }

    #[test]
    fn expectation_of_z_on_zero_is_one() {
        let psi = StateVector::zero_state(1);
        let z: PauliString = "Z".parse().unwrap();
        assert!((psi.expectation_pauli(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_of_mermin_on_ghz_i_state() {
        use supermarq_pauli::mermin_operator;
        // |phi> = (|000> + i|111>)/sqrt(2) should give <M> = 2^{n-1} = 4.
        let n = 3;
        let mut amps = vec![C64::ZERO; 8];
        amps[0] = C64::real(1.0 / 2f64.sqrt());
        amps[7] = C64::new(0.0, 1.0 / 2f64.sqrt());
        let psi = StateVector::from_amplitudes(amps);
        let m = mermin_operator(n);
        assert!((psi.expectation(&m) - 4.0).abs() < 1e-10);
    }

    #[test]
    fn tfim_expectation_on_all_plus_state() {
        use supermarq_pauli::tfim_hamiltonian;
        // |+++>: <ZZ> = 0, <X> = 1 per site, so <H> = -h_x * n.
        let n = 3;
        let mut psi = StateVector::zero_state(n);
        for q in 0..n {
            psi.apply_gate(&Gate::H, &[q]);
        }
        let h = tfim_hamiltonian(n, 1.0, 0.5);
        assert!((psi.expectation(&h) + 1.5).abs() < 1e-12);
    }

    #[test]
    fn inner_product_and_fidelity() {
        let a = StateVector::zero_state(2);
        let mut b = StateVector::zero_state(2);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
        b.apply_gate(&Gate::X, &[0]);
        assert!(a.fidelity(&b) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not normalized")]
    fn from_amplitudes_rejects_unnormalized() {
        StateVector::from_amplitudes(vec![C64::ONE, C64::ONE]);
    }

    #[test]
    #[should_panic(expected = "register too large")]
    fn rejects_oversized_register() {
        StateVector::zero_state(MAX_QUBITS + 1);
    }

    /// An RNG pinned at its maximum output: `gen::<f64>()` yields the
    /// largest representable value below 1, forcing cumulative-sum
    /// fallback paths.
    struct MaxRng;

    impl rand::RngCore for MaxRng {
        fn next_u64(&mut self) -> u64 {
            u64::MAX
        }
    }

    /// Builds a state whose norm is just under 1 (within the constructor's
    /// tolerance) with all weight on the low indices, so a max-value draw
    /// overruns the cumulative sum.
    fn underweight_low_state() -> StateVector {
        let s = C64::real(0.4999997f64.sqrt());
        StateVector::from_amplitudes(vec![s, s, C64::ZERO, C64::ZERO])
    }

    #[test]
    fn sample_rounding_fallback_never_emits_zero_probability_outcome() {
        // Regression: the old fallback returned `amps.len() - 1` (here the
        // zero-amplitude |11>) when rounding left the cumulative sum below
        // the drawn variate; it must return the last *nonzero* outcome.
        let psi = underweight_low_state();
        let mut rng = MaxRng;
        assert_eq!(psi.sample(&mut rng), 1);
        let sampler = CumulativeSampler::new(&psi);
        assert_eq!(sampler.sample(&mut rng), 1);
    }

    #[test]
    fn cumulative_sampler_matches_linear_scan() {
        let mut psi = StateVector::zero_state(3);
        psi.apply_gate(&Gate::H, &[0]);
        psi.apply_gate(&Gate::Cx, &[0, 1]);
        psi.apply_gate(&Gate::Ry(0.7), &[2]);
        let sampler = CumulativeSampler::new(&psi);
        // Identical draws consume one variate each, so parallel streams
        // stay in lockstep.
        let mut ra = rng();
        let mut rb = rng();
        for _ in 0..2000 {
            assert_eq!(psi.sample(&mut ra), sampler.sample(&mut rb));
        }
    }

    /// A fixed non-trivial 4-qubit state to exercise the kernels on.
    fn scrambled_state() -> StateVector {
        let mut psi = StateVector::zero_state(4);
        for q in 0..4 {
            psi.apply_matrix1(&Gate::H.matrix1().unwrap(), q);
            psi.apply_matrix1(&Gate::Ry(0.3 + q as f64).matrix1().unwrap(), q);
        }
        psi.apply_matrix2(&Gate::Cx.matrix2().unwrap(), 0, 2);
        psi.apply_matrix1(&Gate::Rz(1.1).matrix1().unwrap(), 3);
        psi
    }

    #[test]
    fn specialized_kernels_match_dense_matrix_path() {
        use Gate::*;
        let one_q: &[Gate] = &[X, Z, S, Sdg, T, Tdg, P(0.37), Rz(-1.9), I];
        for gate in one_q {
            for q in 0..4 {
                let mut fast = scrambled_state();
                fast.apply_gate(gate, &[q]);
                let mut dense = scrambled_state();
                dense.apply_matrix1(&gate.matrix1().unwrap(), q);
                assert!(fast.fidelity(&dense) > 1.0 - 1e-12, "{gate:?} on qubit {q}");
                // Phases matter too, not just populations.
                assert!(
                    fast.inner_product(&dense).re > 1.0 - 1e-12,
                    "{gate:?} on qubit {q} differs by phase"
                );
            }
        }
        let two_q: &[Gate] = &[Cx, Cz, Cp(0.9), Swap, Rzz(2.3)];
        for gate in two_q {
            for (a, b) in [(0, 1), (1, 0), (0, 3), (3, 1), (2, 3)] {
                let mut fast = scrambled_state();
                fast.apply_gate(gate, &[a, b]);
                let mut dense = scrambled_state();
                dense.apply_matrix2(&gate.matrix2().unwrap(), a, b);
                assert!(
                    fast.inner_product(&dense).re > 1.0 - 1e-12,
                    "{gate:?} on qubits ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn stride_probability_and_projection_match_definitions() {
        let psi = scrambled_state();
        for q in 0..4 {
            let bit = 1usize << q;
            let reference: f64 = psi
                .amplitudes()
                .iter()
                .enumerate()
                .filter(|(i, _)| i & bit != 0)
                .map(|(_, a)| a.norm_sqr())
                .sum();
            assert!((psi.probability_of_one(q) - reference).abs() < 1e-12);
            for value in [false, true] {
                let mut projected = psi.clone();
                projected.project_qubit(q, value);
                for (i, a) in projected.amplitudes().iter().enumerate() {
                    if ((i & bit) != 0) != value {
                        assert_eq!(a.norm_sqr(), 0.0, "qubit {q} value {value} index {i}");
                    }
                }
                assert!((projected.norm_sqr() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn two_qubit_gate_on_noncontiguous_qubits() {
        // rzz on qubits (0, 2) of a 3-qubit register.
        let mut psi = StateVector::zero_state(3);
        for q in 0..3 {
            psi.apply_gate(&Gate::H, &[q]);
        }
        psi.apply_gate(&Gate::Rzz(std::f64::consts::PI), &[0, 2]);
        // <Z0 Z2> after rzz(pi) on |+++>: rzz(pi) = -i Z0 Z2 up to phase,
        // state populations unchanged.
        let p = psi.probabilities();
        for v in p {
            assert!((v - 0.125).abs() < 1e-12);
        }
        // But X expectation on qubit 1 unchanged = 1.
        let x1: PauliString = "IXI".parse().unwrap();
        assert!((psi.expectation_pauli(&x1) - 1.0).abs() < 1e-12);
        // Rzz(pi) = -i Z0 Z2 up to phase, so qubit 0 is now in |->: <X0> = -1.
        let x0: PauliString = "XII".parse().unwrap();
        assert!((psi.expectation_pauli(&x0) + 1.0).abs() < 1e-12);
    }
}
