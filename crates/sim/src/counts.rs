//! Measurement outcome histograms.

use std::collections::BTreeMap;

/// A histogram of measured bitstrings.
///
/// Keys are little-endian bit masks: bit `q` of the key is the classical bit
/// that qubit `q`'s measurement wrote. Qubits that were never measured
/// contribute 0 bits.
///
/// # Example
///
/// ```
/// use supermarq_sim::Counts;
///
/// let mut counts = Counts::new(2);
/// counts.record(0b11);
/// counts.record(0b11);
/// counts.record(0b00);
/// assert_eq!(counts.total(), 3);
/// assert!((counts.probability(0b11) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counts {
    num_bits: usize,
    counts: BTreeMap<u64, usize>,
}

impl Counts {
    /// An empty histogram over `num_bits` classical bits.
    pub fn new(num_bits: usize) -> Self {
        assert!(num_bits <= 64, "counts support at most 64 bits");
        Counts {
            num_bits,
            counts: BTreeMap::new(),
        }
    }

    /// Builds a histogram from `(bits, count)` pairs.
    pub fn from_pairs(num_bits: usize, pairs: impl IntoIterator<Item = (u64, usize)>) -> Self {
        let mut c = Counts::new(num_bits);
        for (k, v) in pairs {
            c.record_n(k, v);
        }
        c
    }

    /// Number of classical bits per outcome.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Records one observation of `bits`.
    pub fn record(&mut self, bits: u64) {
        self.record_n(bits, 1);
    }

    /// Records `count` observations of `bits` in one histogram update —
    /// O(log outcomes) instead of the O(count) of repeated [`Counts::record`]
    /// calls. Recording zero observations is a no-op (no empty entry is
    /// created, keeping histogram equality well-defined).
    pub fn record_n(&mut self, bits: u64, count: usize) {
        debug_assert!(
            self.num_bits >= u64::BITS as usize || bits >> self.num_bits == 0,
            "bitstring {bits:#b} exceeds the {}-bit register",
            self.num_bits
        );
        if count == 0 {
            return;
        }
        *self.counts.entry(bits).or_insert(0) += count;
    }

    /// Total number of recorded shots.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Number of distinct observed outcomes.
    pub fn num_outcomes(&self) -> usize {
        self.counts.len()
    }

    /// Count for a specific outcome.
    pub fn count(&self, bits: u64) -> usize {
        self.counts.get(&bits).copied().unwrap_or(0)
    }

    /// Empirical probability of an outcome (0 if no shots recorded).
    pub fn probability(&self, bits: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.count(bits) as f64 / total as f64
    }

    /// Iterates over `(bits, count)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, usize)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// The empirical probability for every observed outcome.
    pub fn to_probabilities(&self) -> BTreeMap<u64, f64> {
        let total = self.total() as f64;
        self.counts
            .iter()
            .map(|(&k, &v)| (k, v as f64 / total))
            .collect()
    }

    /// Marginalizes onto the given bit positions: output bit `i` is input
    /// bit `bits[i]`.
    ///
    /// # Panics
    ///
    /// Panics if any requested bit is out of range.
    pub fn marginal(&self, bits: &[usize]) -> Counts {
        for &b in bits {
            assert!(b < self.num_bits, "bit {b} out of range");
        }
        let mut out = Counts::new(bits.len());
        for (&key, &count) in &self.counts {
            let mut m = 0u64;
            for (i, &b) in bits.iter().enumerate() {
                if key >> b & 1 == 1 {
                    m |= 1 << i;
                }
            }
            out.record_n(m, count);
        }
        out
    }

    /// The empirical expectation of a diagonal observable
    /// `sum_k c_k prod_{q in S_k} Z_q`, where each term is given as a
    /// `(coefficient, support mask)` pair: `<term> = E[(-1)^{popcount(bits & mask)}]`.
    pub fn expectation_z(&self, terms: &[(f64, u64)]) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut value = 0.0;
        for &(c, mask) in terms {
            let mut acc = 0i64;
            for (&key, &count) in &self.counts {
                let parity = (key & mask).count_ones() % 2;
                let sign = if parity == 0 { 1 } else { -1 };
                acc += sign * count as i64;
            }
            value += c * acc as f64 / total as f64;
        }
        value
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bit widths differ.
    pub fn merge(&mut self, other: &Counts) {
        assert_eq!(self.num_bits, other.num_bits, "bit width mismatch");
        for (&k, &v) in &other.counts {
            self.record_n(k, v);
        }
    }

    /// The most frequently observed outcome, if any shots exist. Ties break
    /// toward the smaller key.
    pub fn most_common(&self) -> Option<(u64, usize)> {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&k, &v)| (k, v))
    }
}

impl std::fmt::Display for Counts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entries: Vec<String> = self
            .counts
            .iter()
            .map(|(k, v)| format!("{:0width$b}: {v}", k, width = self.num_bits.max(1)))
            .collect();
        write!(f, "{{{}}}", entries.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut c = Counts::new(3);
        c.record(0b101);
        c.record(0b101);
        c.record(0b010);
        assert_eq!(c.total(), 3);
        assert_eq!(c.count(0b101), 2);
        assert_eq!(c.count(0b111), 0);
        assert_eq!(c.num_outcomes(), 2);
        assert_eq!(c.most_common(), Some((0b101, 2)));
    }

    #[test]
    fn empty_counts_probability_is_zero() {
        let c = Counts::new(2);
        assert_eq!(c.probability(0), 0.0);
        assert_eq!(c.most_common(), None);
    }

    #[test]
    fn marginal_extracts_bits() {
        let c = Counts::from_pairs(3, [(0b110, 4), (0b001, 2)]);
        // Keep bits [1, 2] -> outputs 0b11 (from 0b110) and 0b00 (from 0b001).
        let m = c.marginal(&[1, 2]);
        assert_eq!(m.num_bits(), 2);
        assert_eq!(m.count(0b11), 4);
        assert_eq!(m.count(0b00), 2);
    }

    #[test]
    fn expectation_of_single_z() {
        // 75% of shots have bit0 = 0 -> <Z0> = 0.5.
        let c = Counts::from_pairs(1, [(0, 3), (1, 1)]);
        let e = c.expectation_z(&[(1.0, 0b1)]);
        assert!((e - 0.5).abs() < 1e-12);
    }

    #[test]
    fn expectation_of_zz_parity() {
        // Bell-like counts: 00 and 11 each half -> <Z0 Z1> = 1.
        let c = Counts::from_pairs(2, [(0b00, 500), (0b11, 500)]);
        let e = c.expectation_z(&[(1.0, 0b11)]);
        assert!((e - 1.0).abs() < 1e-12);
        // <Z0> = 0.
        let e0 = c.expectation_z(&[(1.0, 0b01)]);
        assert!(e0.abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Counts::from_pairs(2, [(0b01, 1)]);
        let b = Counts::from_pairs(2, [(0b01, 2), (0b10, 3)]);
        a.merge(&b);
        assert_eq!(a.count(0b01), 3);
        assert_eq!(a.count(0b10), 3);
        assert_eq!(a.total(), 6);
    }

    #[test]
    #[should_panic(expected = "bit width mismatch")]
    fn merge_rejects_mismatched_width() {
        let mut a = Counts::new(1);
        let b = Counts::new(2);
        a.merge(&b);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut repeated = Counts::new(3);
        for _ in 0..1000 {
            repeated.record(0b101);
        }
        let mut batched = Counts::new(3);
        batched.record_n(0b101, 1000);
        assert_eq!(repeated, batched);
    }

    #[test]
    fn record_n_of_zero_is_a_no_op() {
        let mut c = Counts::new(2);
        c.record_n(0b01, 0);
        assert_eq!(c.num_outcomes(), 0);
        assert_eq!(c, Counts::new(2));
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "range check is a debug assertion")]
    #[should_panic(expected = "exceeds the 2-bit register")]
    fn record_rejects_out_of_range_bitstrings() {
        let mut c = Counts::new(2);
        c.record(0b100);
    }

    #[test]
    fn full_width_registers_accept_any_bitstring() {
        let mut c = Counts::new(64);
        c.record(u64::MAX);
        assert_eq!(c.count(u64::MAX), 1);
    }

    #[test]
    fn display_formats_binary() {
        let c = Counts::from_pairs(3, [(0b101, 2)]);
        assert_eq!(c.to_string(), "{101: 2}");
    }
}
