//! Single-qubit gate fusion pre-pass for the executor's unitary paths.
//!
//! A run of `k` adjacent one-qubit unitaries on the same qubit costs `k`
//! full passes over half the amplitude array; multiplying their 2x2
//! matrices first collapses that to one dense pass. The pre-pass is used
//! only where a circuit is evaluated as a pure unitary (the noiseless fast
//! path and `final_state`): trajectory simulation attaches noise channels
//! to individual gates, so gates must stay separate there.
//!
//! "Adjacent" is per qubit, not per program position: a one-qubit run on
//! qubit `a` stays fusable across interleaved operations on other qubits,
//! and is flushed by anything sharing qubit `a` (a two-qubit gate,
//! measurement, reset, or barrier). Operations on disjoint qubits commute
//! exactly as operators, so the reordering this implies does not change
//! the resulting unitary.
//!
//! Runs of length 1 are re-emitted as their original instruction so
//! diagonal/permutation gates keep their specialized kernels; only runs of
//! two or more pay the dense-matrix path.
//!
//! A second stage ([`fuse_permutation_runs`]) collapses adjacent runs of
//! the *classical permutation* gates X, CX and SWAP: each maps basis index
//! `i` to `A·i xor c` for an invertible GF(2) matrix `A` (stored as
//! columns) and offset `c`, so a run of `k` of them composes into one
//! affine map applied in a single pass over the amplitudes
//! ([`crate::StateVector`]'s `permute_amps`) instead of `k` memory-bound
//! sweeps. A GHZ ladder's whole CX chain becomes one pass.

use supermarq_circuit::{Circuit, Gate, GateKind, Instruction, C64};

/// One operation of a fused unitary program.
pub(crate) enum FusedOp<'c> {
    /// An original instruction, with its index in the source circuit.
    Instr {
        index: usize,
        instr: &'c Instruction,
    },
    /// A run of two or more adjacent one-qubit unitaries on `qubit`,
    /// collapsed into a single matrix.
    Fused1q { qubit: usize, matrix: [[C64; 2]; 2] },
    /// A run of two or more adjacent X/CX/SWAP gates, collapsed into one
    /// affine index map `i -> (xor of cols[k] for set bits k of i) xor
    /// offset`.
    Permutation { cols: Vec<u64>, offset: u64 },
}

/// A one-qubit run still accumulating.
struct Pending<'c> {
    matrix: [[C64; 2]; 2],
    count: usize,
    first_index: usize,
    first: &'c Instruction,
}

/// 2x2 complex matrix product `a * b` (same accumulation order as the
/// transpiler's gate-fusion pass).
fn matmul2(a: &[[C64; 2]; 2], b: &[[C64; 2]; 2]) -> [[C64; 2]; 2] {
    let mut out = [[C64::ZERO; 2]; 2];
    for (row, out_row) in out.iter_mut().enumerate() {
        for (col, out_cell) in out_row.iter_mut().enumerate() {
            *out_cell = a[row][0] * b[0][col] + a[row][1] * b[1][col];
        }
    }
    out
}

fn flush<'c>(
    pending: &mut Option<Pending<'c>>,
    ops: &mut Vec<FusedOp<'c>>,
    fused_away: &mut usize,
) {
    if let Some(p) = pending.take() {
        if p.count == 1 {
            ops.push(FusedOp::Instr {
                index: p.first_index,
                instr: p.first,
            });
        } else {
            *fused_away += p.count - 1;
            ops.push(FusedOp::Fused1q {
                qubit: p.first.qubits[0],
                matrix: p.matrix,
            });
        }
    }
}

/// Fuses per-qubit runs of adjacent one-qubit unitaries. Returns the fused
/// program and the number of gate applications eliminated (`sum over runs
/// of (len - 1)`).
pub(crate) fn fuse_1q_runs(circuit: &Circuit) -> (Vec<FusedOp<'_>>, usize) {
    let mut pending: Vec<Option<Pending<'_>>> = (0..circuit.num_qubits()).map(|_| None).collect();
    let mut ops = Vec::with_capacity(circuit.instructions().len());
    let mut fused_away = 0usize;
    for (index, instr) in circuit.iter().enumerate() {
        match instr.gate.kind() {
            GateKind::OneQubitUnitary => {
                let q = instr.qubits[0];
                let m = instr.gate.matrix1().expect("1q unitary has a matrix");
                match &mut pending[q] {
                    Some(p) => {
                        // Later gates left-multiply: overall = m_new * m_acc.
                        p.matrix = matmul2(&m, &p.matrix);
                        p.count += 1;
                    }
                    None => {
                        pending[q] = Some(Pending {
                            matrix: m,
                            count: 1,
                            first_index: index,
                            first: instr,
                        });
                    }
                }
            }
            GateKind::TwoQubitUnitary
            | GateKind::Measurement
            | GateKind::Reset
            | GateKind::Barrier => {
                for &q in &instr.qubits {
                    flush(&mut pending[q], &mut ops, &mut fused_away);
                }
                ops.push(FusedOp::Instr { index, instr });
            }
        }
    }
    for slot in &mut pending {
        flush(slot, &mut ops, &mut fused_away);
    }
    (ops, fused_away)
}

/// An affine GF(2) index map accumulating a permutation-gate run.
struct PendingPerm<'c> {
    /// `cols[k]` = image of basis vector `e_k` under the linear part.
    cols: Vec<u64>,
    offset: u64,
    count: usize,
    first: FusedOp<'c>,
}

impl PendingPerm<'_> {
    fn identity(num_qubits: usize, first: FusedOp<'_>) -> PendingPerm<'_> {
        PendingPerm {
            cols: (0..num_qubits).map(|k| 1u64 << k).collect(),
            offset: 0,
            count: 0,
            first,
        }
    }

    /// Left-composes one permutation gate: the new map is `gate ∘ self`.
    fn compose(&mut self, instr: &Instruction) {
        match instr.gate {
            Gate::X => self.offset ^= 1 << instr.qubits[0],
            Gate::Cx => {
                let (c, t) = (instr.qubits[0], instr.qubits[1]);
                for v in self.cols.iter_mut().chain([&mut self.offset]) {
                    *v ^= ((*v >> c) & 1) << t;
                }
            }
            Gate::Swap => {
                let (a, b) = (instr.qubits[0], instr.qubits[1]);
                for v in self.cols.iter_mut().chain([&mut self.offset]) {
                    let x = ((*v >> a) ^ (*v >> b)) & 1;
                    *v ^= (x << a) | (x << b);
                }
            }
            _ => unreachable!("not a permutation gate: {:?}", instr.gate),
        }
        self.count += 1;
    }
}

/// `true` for gates that permute basis indices without touching amplitude
/// values.
fn is_permutation_gate(instr: &Instruction) -> bool {
    matches!(instr.gate, Gate::X | Gate::Cx | Gate::Swap)
}

fn flush_perm<'c>(
    pending: &mut Option<PendingPerm<'c>>,
    ops: &mut Vec<FusedOp<'c>>,
    fused_away: &mut usize,
) {
    if let Some(p) = pending.take() {
        if p.count == 1 {
            // Singletons keep their specialized swap kernels.
            ops.push(p.first);
        } else {
            *fused_away += p.count - 1;
            ops.push(FusedOp::Permutation {
                cols: p.cols,
                offset: p.offset,
            });
        }
    }
}

/// Collapses adjacent runs of X/CX/SWAP ops in an already-1q-fused program
/// into single [`FusedOp::Permutation`] ops. Returns the rewritten program
/// and the number of gate applications eliminated.
pub(crate) fn fuse_permutation_runs(
    ops: Vec<FusedOp<'_>>,
    num_qubits: usize,
) -> (Vec<FusedOp<'_>>, usize) {
    let mut out = Vec::with_capacity(ops.len());
    let mut pending: Option<PendingPerm<'_>> = None;
    let mut fused_away = 0usize;
    for op in ops {
        match &op {
            FusedOp::Instr { instr, .. } if is_permutation_gate(instr) => {
                let instr = *instr;
                let p = pending.get_or_insert_with(|| PendingPerm::identity(num_qubits, op));
                p.compose(instr);
            }
            _ => {
                flush_perm(&mut pending, &mut out, &mut fused_away);
                out.push(op);
            }
        }
    }
    flush_perm(&mut pending, &mut out, &mut fused_away);
    (out, fused_away)
}

#[cfg(test)]
mod tests {
    use super::*;
    use supermarq_circuit::Gate;

    fn op_count(ops: &[FusedOp<'_>]) -> (usize, usize) {
        let fused = ops
            .iter()
            .filter(|op| matches!(op, FusedOp::Fused1q { .. }))
            .count();
        (ops.len(), fused)
    }

    #[test]
    fn adjacent_runs_collapse_and_singletons_survive() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).s(0); // run of 3 on qubit 0
        c.x(1); // singleton on qubit 1
        let (ops, fused_away) = fuse_1q_runs(&c);
        assert_eq!(fused_away, 2);
        let (total, fused) = op_count(&ops);
        assert_eq!((total, fused), (2, 1));
        // The singleton keeps its original instruction (specialized kernel).
        assert!(ops.iter().any(|op| matches!(
            op,
            FusedOp::Instr { instr, .. } if instr.gate == Gate::X
        )));
    }

    #[test]
    fn two_qubit_gates_flush_their_operands_only() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2);
        c.cx(0, 1); // flushes qubits 0 and 1, not 2
        c.t(2); // still fusable with the earlier H on 2
        let (ops, fused_away) = fuse_1q_runs(&c);
        assert_eq!(fused_away, 1); // only the (H, T) run on qubit 2
        let (_, fused) = op_count(&ops);
        assert_eq!(fused, 1);
    }

    #[test]
    fn fused_matrix_matches_gate_product() {
        let mut c = Circuit::new(1);
        c.h(0).t(0);
        let (ops, _) = fuse_1q_runs(&c);
        assert_eq!(ops.len(), 1);
        let FusedOp::Fused1q { qubit, matrix } = &ops[0] else {
            panic!("expected fused run");
        };
        assert_eq!(*qubit, 0);
        let h = Gate::H.matrix1().unwrap();
        let t = Gate::T.matrix1().unwrap();
        let expect = matmul2(&t, &h); // T after H => T * H
        for r in 0..2 {
            for col in 0..2 {
                assert!((matrix[r][col] - expect[r][col]).norm_sqr() < 1e-24);
            }
        }
    }

    /// Classical reference: the basis-index image of one permutation gate.
    fn apply_perm_gate(instr: &Instruction, i: u64) -> u64 {
        match instr.gate {
            Gate::X => i ^ (1 << instr.qubits[0]),
            Gate::Cx => {
                let (c, t) = (instr.qubits[0], instr.qubits[1]);
                i ^ (((i >> c) & 1) << t)
            }
            Gate::Swap => {
                let (a, b) = (instr.qubits[0], instr.qubits[1]);
                let x = ((i >> a) ^ (i >> b)) & 1;
                i ^ ((x << a) | (x << b))
            }
            _ => unreachable!(),
        }
    }

    /// Evaluates an affine map at index `i`.
    fn eval_affine(cols: &[u64], offset: u64, i: u64) -> u64 {
        let mut out = offset;
        let mut bits = i;
        while bits != 0 {
            out ^= cols[bits.trailing_zeros() as usize];
            bits &= bits - 1;
        }
        out
    }

    fn fuse_both(c: &Circuit) -> (Vec<FusedOp<'_>>, usize) {
        let (ops, a) = fuse_1q_runs(c);
        let (ops, b) = fuse_permutation_runs(ops, c.num_qubits());
        (ops, a + b)
    }

    #[test]
    fn permutation_run_collapses_to_one_exact_affine_map() {
        let mut c = Circuit::new(4);
        c.x(2).cx(0, 1).swap(1, 3).cx(3, 0).x(0).cx(1, 2);
        let (ops, fused_away) = fuse_both(&c);
        assert_eq!(ops.len(), 1, "whole circuit is one permutation run");
        assert_eq!(fused_away, 5);
        let FusedOp::Permutation { cols, offset } = &ops[0] else {
            panic!("expected a fused permutation");
        };
        // The composed map must agree with applying the gates one by one
        // on every basis index.
        for i in 0u64..16 {
            let mut expect = i;
            for instr in c.iter() {
                expect = apply_perm_gate(instr, expect);
            }
            assert_eq!(
                eval_affine(cols, *offset, i),
                expect,
                "index {i} maps incorrectly"
            );
        }
    }

    #[test]
    fn permutation_singletons_keep_their_instruction() {
        let mut c = Circuit::new(2);
        c.x(0).h(1).cx(0, 1); // H splits the X and CX into singletons
        let (ops, fused_away) = fuse_both(&c);
        assert_eq!(fused_away, 0);
        assert_eq!(ops.len(), 3);
        assert!(ops.iter().all(|op| matches!(op, FusedOp::Instr { .. })));
    }

    #[test]
    fn non_permutation_gates_split_runs() {
        let mut c = Circuit::new(3);
        c.x(0).cx(0, 1); // run of 2
        c.cz(0, 1); // CZ is not a basis permutation: flushes
        c.swap(1, 2).x(2).cx(2, 0); // run of 3
        let (ops, fused_away) = fuse_both(&c);
        assert_eq!(fused_away, 1 + 2);
        let perms = ops
            .iter()
            .filter(|op| matches!(op, FusedOp::Permutation { .. }))
            .count();
        assert_eq!(perms, 2);
        assert_eq!(ops.len(), 3);
    }

    #[test]
    fn measurement_flushes_a_permutation_run() {
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1);
        c.measure(0);
        c.x(1).cx(1, 0);
        let (ops, fused_away) = fuse_both(&c);
        assert_eq!(fused_away, 2);
        // perm, measure, perm.
        assert!(matches!(ops[0], FusedOp::Permutation { .. }));
        assert!(matches!(
            ops[1],
            FusedOp::Instr { instr, .. } if instr.gate == Gate::Measure
        ));
        assert!(matches!(ops[2], FusedOp::Permutation { .. }));
    }

    #[test]
    fn reset_and_measure_flush_and_pass_through() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.reset(0);
        c.h(0).h(0);
        let (ops, fused_away) = fuse_1q_runs(&c);
        assert_eq!(fused_away, 1); // the post-reset (H, H) run
        assert_eq!(ops.len(), 3); // lone H, reset, fused pair
        assert!(matches!(
            ops[1],
            FusedOp::Instr { instr, .. } if instr.gate == Gate::Reset
        ));
    }
}
