//! Stochastic (quantum-trajectory) noise channels.
//!
//! The noise model mirrors what the paper's Table II calibration data
//! describes: per-gate depolarizing error, readout error, and thermal
//! relaxation (`T1` amplitude damping plus `T2` dephasing) accumulated while
//! qubits idle. Gate and measurement durations determine how long idle
//! qubits decohere, which is exactly the mechanism behind the paper's
//! headline error-correction result: superconducting measurement + reset is
//! long relative to `T1`/`T2`, so the data qubits of the bit/phase-code
//! benchmarks decay while ancillas are read out, while trapped-ion qubits
//! idle essentially for free.

use std::collections::BTreeMap;

use rand::Rng;

use crate::state::StateVector;
use supermarq_circuit::{Gate, C64};

/// Durations (in microseconds) of the primitive operations, used to compute
/// how long idle qubits decohere each layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateDurations {
    /// One-qubit gate time.
    pub one_qubit: f64,
    /// Two-qubit gate time.
    pub two_qubit: f64,
    /// Measurement (readout) time.
    pub measurement: f64,
    /// Reset time.
    pub reset: f64,
}

impl Default for GateDurations {
    /// Typical superconducting-scale durations (microseconds).
    fn default() -> Self {
        GateDurations {
            one_qubit: 0.035,
            two_qubit: 0.43,
            measurement: 5.0,
            reset: 5.0,
        }
    }
}

/// A trajectory noise model applied during circuit execution.
///
/// All probabilities are per-application; set any field to zero to disable
/// that channel. `t1`/`t2` of `f64::INFINITY` disable relaxation.
///
/// # Example
///
/// ```
/// use supermarq_sim::NoiseModel;
///
/// let ideal = NoiseModel::ideal();
/// assert!(ideal.is_ideal());
/// let noisy = NoiseModel::uniform_depolarizing(0.01);
/// assert!(!noisy.is_ideal());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseModel {
    /// Depolarizing probability after each one-qubit gate.
    pub depolarizing_1q: f64,
    /// Depolarizing probability after each two-qubit gate (applied to the
    /// pair: a uniformly random non-identity two-qubit Pauli).
    pub depolarizing_2q: f64,
    /// Probability that a measurement records the flipped bit.
    pub readout_error: f64,
    /// Probability that a reset leaves the qubit in `|1>`.
    pub reset_error: f64,
    /// Energy-relaxation time constant (microseconds).
    pub t1: f64,
    /// Dephasing time constant (microseconds). Physical devices satisfy
    /// `t2 <= 2 t1`; values above that bound are clamped when deriving the
    /// pure-dephasing rate.
    pub t2: f64,
    /// Operation durations used to convert idle time into decay.
    pub durations: GateDurations,
    /// Extra multiplicative depolarizing strength per *additional*
    /// simultaneous two-qubit gate in the same layer (cross-talk, paper
    /// Sec. III-B-4). Effective 2q error for a layer with `k` two-qubit
    /// gates: `depolarizing_2q * (1 + crosstalk * (k - 1))`, clamped to 1.
    pub crosstalk: f64,
    /// Optional per-coupler two-qubit error rates (key `(min, max)`),
    /// overriding `depolarizing_2q` on listed edges. Real devices have
    /// large coupler-to-coupler variation — this is what noise-aware
    /// placement exploits.
    pub edge_depolarizing: Option<BTreeMap<(usize, usize), f64>>,
    /// Optional per-qubit readout error rates, overriding `readout_error`
    /// on listed qubits.
    pub qubit_readout: Option<Vec<f64>>,
}

impl NoiseModel {
    /// The noiseless model.
    pub fn ideal() -> Self {
        NoiseModel {
            depolarizing_1q: 0.0,
            depolarizing_2q: 0.0,
            readout_error: 0.0,
            reset_error: 0.0,
            t1: f64::INFINITY,
            t2: f64::INFINITY,
            durations: GateDurations::default(),
            crosstalk: 0.0,
            edge_depolarizing: None,
            qubit_readout: None,
        }
    }

    /// A simple model with the same depolarizing probability after every
    /// gate and no other channels — handy for quick experiments and tests.
    pub fn uniform_depolarizing(p: f64) -> Self {
        NoiseModel {
            depolarizing_1q: p,
            depolarizing_2q: p,
            ..NoiseModel::ideal()
        }
    }

    /// `true` if every channel is disabled.
    pub fn is_ideal(&self) -> bool {
        self.depolarizing_1q == 0.0
            && self.depolarizing_2q == 0.0
            && self.readout_error == 0.0
            && self.reset_error == 0.0
            && self.t1.is_infinite()
            && self.t2.is_infinite()
            && self
                .edge_depolarizing
                .as_ref()
                .is_none_or(|m| m.values().all(|&p| p == 0.0))
            && self
                .qubit_readout
                .as_ref()
                .is_none_or(|v| v.iter().all(|&p| p == 0.0))
    }

    /// Duration of a primitive operation under this model.
    pub fn duration_of(&self, gate: &Gate) -> f64 {
        use supermarq_circuit::GateKind::*;
        match gate.kind() {
            OneQubitUnitary => self.durations.one_qubit,
            TwoQubitUnitary => self.durations.two_qubit,
            Measurement => self.durations.measurement,
            Reset => self.durations.reset,
            Barrier => 0.0,
        }
    }

    /// Applies one-qubit depolarizing noise: with probability `p`, a
    /// uniformly random Pauli from {X, Y, Z}.
    pub fn apply_depolarizing_1q<R: Rng + ?Sized>(
        &self,
        state: &mut StateVector,
        qubit: usize,
        rng: &mut R,
    ) {
        apply_random_pauli(state, &[qubit], self.depolarizing_1q, rng);
    }

    /// The base two-qubit error rate for a specific coupler, honoring
    /// per-edge calibration data when present.
    pub fn depolarizing_2q_for(&self, a: usize, b: usize) -> f64 {
        let key = (a.min(b), a.max(b));
        self.edge_depolarizing
            .as_ref()
            .and_then(|m| m.get(&key).copied())
            .unwrap_or(self.depolarizing_2q)
    }

    /// The readout error for a specific qubit, honoring per-qubit
    /// calibration data when present.
    pub fn readout_error_for(&self, q: usize) -> f64 {
        self.qubit_readout
            .as_ref()
            .and_then(|v| v.get(q).copied())
            .unwrap_or(self.readout_error)
    }

    /// Applies two-qubit depolarizing noise with a cross-talk multiplier for
    /// `simultaneous_2q` total two-qubit gates in the current layer.
    pub fn apply_depolarizing_2q<R: Rng + ?Sized>(
        &self,
        state: &mut StateVector,
        qubits: [usize; 2],
        simultaneous_2q: usize,
        rng: &mut R,
    ) {
        let extra = self.crosstalk * simultaneous_2q.saturating_sub(1) as f64;
        let base = self.depolarizing_2q_for(qubits[0], qubits[1]);
        let p = (base * (1.0 + extra)).min(1.0);
        apply_random_pauli(state, &qubits, p, rng);
    }

    /// Applies thermal relaxation to `qubit` for `duration` microseconds:
    /// amplitude damping with `gamma = 1 - exp(-t/T1)` followed by a phase
    /// flip with the pure-dephasing probability derived from `T2`.
    pub fn apply_relaxation<R: Rng + ?Sized>(
        &self,
        state: &mut StateVector,
        qubit: usize,
        duration: f64,
        rng: &mut R,
    ) {
        if duration <= 0.0 {
            return;
        }
        if self.t1.is_finite() && self.t1 > 0.0 {
            let gamma = 1.0 - (-duration / self.t1).exp();
            apply_amplitude_damping(state, qubit, gamma, rng);
        }
        // Pure dephasing rate: 1/Tphi = 1/T2 - 1/(2 T1).
        if self.t2.is_finite() && self.t2 > 0.0 {
            let rate_t1 = if self.t1.is_finite() {
                1.0 / (2.0 * self.t1)
            } else {
                0.0
            };
            let rate_phi = (1.0 / self.t2 - rate_t1).max(0.0);
            if rate_phi > 0.0 {
                let p_z = 0.5 * (1.0 - (-duration * rate_phi).exp());
                if rng.gen::<f64>() < p_z {
                    let m = Gate::Z.matrix1().expect("Z matrix");
                    state.apply_matrix1(&m, qubit);
                }
            }
        }
    }

    /// Possibly flips a recorded measurement bit (readout error), honoring
    /// per-qubit rates when present.
    pub fn flip_readout<R: Rng + ?Sized>(&self, qubit: usize, bit: bool, rng: &mut R) -> bool {
        let p = self.readout_error_for(qubit);
        if p > 0.0 && rng.gen::<f64>() < p {
            !bit
        } else {
            bit
        }
    }

    /// Applies reset error: with probability `reset_error` the qubit is left
    /// in `|1>` after a reset.
    pub fn apply_reset_error<R: Rng + ?Sized>(
        &self,
        state: &mut StateVector,
        qubit: usize,
        rng: &mut R,
    ) {
        if self.reset_error > 0.0 && rng.gen::<f64>() < self.reset_error {
            let m = Gate::X.matrix1().expect("X matrix");
            state.apply_matrix1(&m, qubit);
        }
    }
}

/// With probability `p`, applies a uniformly random non-identity Pauli over
/// `qubits` (3 choices for one qubit, 15 for two).
fn apply_random_pauli<R: Rng + ?Sized>(
    state: &mut StateVector,
    qubits: &[usize],
    p: f64,
    rng: &mut R,
) {
    if p <= 0.0 || rng.gen::<f64>() >= p {
        return;
    }
    let options = 4usize.pow(qubits.len() as u32) - 1;
    let mut choice = rng.gen_range(1..=options);
    for &q in qubits {
        let pauli = choice % 4;
        choice /= 4;
        let gate = match pauli {
            0 => continue,
            1 => Gate::X,
            2 => Gate::Y,
            _ => Gate::Z,
        };
        let m = gate.matrix1().expect("pauli matrix");
        state.apply_matrix1(&m, q);
    }
}

/// Trajectory sampling of the amplitude-damping channel with Kraus operators
/// `K0 = diag(1, sqrt(1-gamma))`, `K1 = sqrt(gamma) |0><1|`.
fn apply_amplitude_damping<R: Rng + ?Sized>(
    state: &mut StateVector,
    qubit: usize,
    gamma: f64,
    rng: &mut R,
) {
    if gamma <= 0.0 {
        return;
    }
    let p1 = state.probability_of_one(qubit);
    let p_jump = gamma * p1;
    if rng.gen::<f64>() < p_jump {
        // Jump: project onto |1> then flip to |0>.
        state.project_qubit(qubit, true);
        let m = Gate::X.matrix1().expect("X matrix");
        state.apply_matrix1(&m, qubit);
    } else {
        // No-jump evolution: scale the |1> amplitudes and renormalize.
        let k0 = [
            [C64::ONE, C64::ZERO],
            [C64::ZERO, C64::real((1.0 - gamma).sqrt())],
        ];
        state.apply_matrix1(&k0, qubit);
        state.renormalize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn ideal_model_is_ideal() {
        assert!(NoiseModel::ideal().is_ideal());
        assert!(!NoiseModel::uniform_depolarizing(0.1).is_ideal());
    }

    #[test]
    fn zero_probability_depolarizing_is_identity() {
        let model = NoiseModel::ideal();
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(&Gate::H, &[0]);
        let before = psi.clone();
        let mut r = rng(1);
        for _ in 0..100 {
            model.apply_depolarizing_1q(&mut psi, 0, &mut r);
        }
        assert!(psi.fidelity(&before) > 1.0 - 1e-12);
    }

    #[test]
    fn full_depolarizing_randomizes_z_expectation() {
        // p = 1 applies a random Pauli every time; averaged over many
        // trajectories <Z> of |0> becomes approximately (1/3)(-1 -1 +1) = -1/3.
        let model = NoiseModel::uniform_depolarizing(1.0);
        let mut r = rng(2);
        let trials = 6000;
        let mut total = 0.0;
        for _ in 0..trials {
            let mut psi = StateVector::zero_state(1);
            model.apply_depolarizing_1q(&mut psi, 0, &mut r);
            total += psi.expectation_pauli(&"Z".parse().unwrap());
        }
        let avg = total / trials as f64;
        assert!((avg + 1.0 / 3.0).abs() < 0.05, "avg={avg}");
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        // gamma = 1 - exp(-t/T1); for t = T1, survival of |1> should be
        // exp(-1) ~ 0.368 averaged over trajectories.
        let model = NoiseModel {
            t1: 100.0,
            t2: f64::INFINITY,
            ..NoiseModel::ideal()
        };
        let mut r = rng(3);
        let trials = 4000;
        let mut ones = 0usize;
        for _ in 0..trials {
            let mut psi = StateVector::zero_state(1);
            psi.apply_gate(&Gate::X, &[0]);
            model.apply_relaxation(&mut psi, 0, 100.0, &mut r);
            if psi.probability_of_one(0) > 0.5 {
                ones += 1;
            }
        }
        let survival = ones as f64 / trials as f64;
        assert!(
            (survival - (-1.0f64).exp()).abs() < 0.03,
            "survival={survival}"
        );
    }

    #[test]
    fn dephasing_destroys_plus_state_coherence() {
        // Long pure dephasing turns |+> into a Z-mixed state: averaged <X> ~ 0.
        let model = NoiseModel {
            t1: f64::INFINITY,
            t2: 10.0,
            ..NoiseModel::ideal()
        };
        let mut r = rng(4);
        let trials = 4000;
        let mut total_x = 0.0;
        for _ in 0..trials {
            let mut psi = StateVector::zero_state(1);
            psi.apply_gate(&Gate::H, &[0]);
            model.apply_relaxation(&mut psi, 0, 1000.0, &mut r);
            total_x += psi.expectation_pauli(&"X".parse().unwrap());
        }
        let avg = total_x / trials as f64;
        assert!(avg.abs() < 0.05, "avg={avg}");
    }

    #[test]
    fn relaxation_preserves_ground_state() {
        let model = NoiseModel {
            t1: 1.0,
            t2: 1.0,
            ..NoiseModel::ideal()
        };
        let mut psi = StateVector::zero_state(1);
        let mut r = rng(5);
        model.apply_relaxation(&mut psi, 0, 1000.0, &mut r);
        assert!((psi.probability(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn readout_flip_statistics() {
        let model = NoiseModel {
            readout_error: 0.25,
            ..NoiseModel::ideal()
        };
        let mut r = rng(6);
        let trials = 20000;
        let flips = (0..trials)
            .filter(|_| model.flip_readout(0, false, &mut r))
            .count();
        let rate = flips as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn reset_error_excites_with_given_probability() {
        let model = NoiseModel {
            reset_error: 0.3,
            ..NoiseModel::ideal()
        };
        let mut r = rng(7);
        let trials = 5000;
        let mut excited = 0;
        for _ in 0..trials {
            let mut psi = StateVector::zero_state(1);
            model.apply_reset_error(&mut psi, 0, &mut r);
            if psi.probability_of_one(0) > 0.5 {
                excited += 1;
            }
        }
        let rate = excited as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.03, "rate={rate}");
    }

    #[test]
    fn crosstalk_scales_two_qubit_error() {
        // With crosstalk = 1 and 3 simultaneous gates, effective p = 3 * base.
        // Verify indirectly: base p = 0.2, k = 3 -> error rate ~ 0.6.
        let model = NoiseModel {
            depolarizing_2q: 0.2,
            crosstalk: 1.0,
            ..NoiseModel::ideal()
        };
        let mut r = rng(8);
        let trials = 5000;
        let mut errored = 0;
        for _ in 0..trials {
            let mut psi = StateVector::zero_state(2);
            model.apply_depolarizing_2q(&mut psi, [0, 1], 3, &mut r);
            // Any applied Pauli perturbs the all-zero state unless it was ZZ-type.
            let z0 = psi.expectation_pauli(&"ZI".parse().unwrap());
            let z1 = psi.expectation_pauli(&"IZ".parse().unwrap());
            // X/Y components flip a qubit; Z-only errors are invisible on |00>.
            if z0 < 0.5 || z1 < 0.5 {
                errored += 1;
            }
        }
        // 12 of the 15 non-identity 2q Paulis contain an X or Y on at least
        // one site -> visible error rate = 0.6 * 12/15 = 0.48.
        let rate = errored as f64 / trials as f64;
        assert!((rate - 0.48).abs() < 0.04, "rate={rate}");
    }

    #[test]
    fn per_edge_rates_override_global() {
        let mut model = NoiseModel::ideal();
        model.depolarizing_2q = 0.01;
        let mut edges = BTreeMap::new();
        edges.insert((0usize, 1usize), 0.2);
        model.edge_depolarizing = Some(edges);
        assert!((model.depolarizing_2q_for(1, 0) - 0.2).abs() < 1e-12);
        assert!((model.depolarizing_2q_for(1, 2) - 0.01).abs() < 1e-12);
        assert!(!model.is_ideal());
    }

    #[test]
    fn per_qubit_readout_rates_override_global() {
        let mut model = NoiseModel::ideal();
        model.readout_error = 0.02;
        model.qubit_readout = Some(vec![0.0, 0.3]);
        assert_eq!(model.readout_error_for(0), 0.0);
        assert!((model.readout_error_for(1) - 0.3).abs() < 1e-12);
        // Out-of-range falls back to the average.
        assert!((model.readout_error_for(5) - 0.02).abs() < 1e-12);
        let mut r = rng(20);
        let trials = 10000;
        let flips = (0..trials)
            .filter(|_| model.flip_readout(1, false, &mut r))
            .count();
        let rate = flips as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate={rate}");
        assert!((0..trials).all(|_| !model.flip_readout(0, false, &mut r)));
    }

    #[test]
    fn durations_map_to_gate_kinds() {
        let model = NoiseModel::ideal();
        assert_eq!(model.duration_of(&Gate::H), model.durations.one_qubit);
        assert_eq!(model.duration_of(&Gate::Cx), model.durations.two_qubit);
        assert_eq!(
            model.duration_of(&Gate::Measure),
            model.durations.measurement
        );
        assert_eq!(model.duration_of(&Gate::Reset), model.durations.reset);
        assert_eq!(model.duration_of(&Gate::Barrier), 0.0);
    }
}
