//! Hand-rolled SIMD lanes for the statevector kernels.
//!
//! The workspace is zero-dependency and builds on stable Rust, so neither
//! `std::simd` (nightly) nor an intrinsics crate is available. This module
//! provides the complex multiply-add inner loops of the dense and diagonal
//! gate kernels in two interchangeable forms:
//!
//! * a **portable** four-wide `f64` lane type ([`F64x4`], two interleaved
//!   complex amplitudes) whose elementwise operations LLVM lowers to
//!   whatever vector width the build target has, and
//! * an **x86-64 AVX** path written directly against `core::arch`
//!   intrinsics (`vmulpd`/`vpermilpd`/`vaddsubpd` on 256-bit lanes),
//!   selected at runtime via `is_x86_feature_detected!`. Rust compiles for
//!   baseline x86-64 (SSE2) by default, so without the runtime dispatch
//!   the wide units on every AVX-capable host would sit idle.
//!
//! **Bit-identity contract.** The chunked kernels in [`crate::state`] must
//! produce amplitudes bit-identical to their scalar remainder loops no
//! matter where chunk boundaries fall (a pair handled by a SIMD lane at
//! one thread count may land in a scalar tail at another). Every path here
//! therefore mirrors the exact operation tree of the scalar `C64`
//! arithmetic: the same multiplies feeding the same single add/sub per
//! component, differing at most by operand order within one commutative
//! `f64` operation, which IEEE 754 guarantees is bitwise-equal. No fused
//! multiply-add, no reassociation — `vaddsubpd` is a packed add/sub with
//! ordinary rounding, not a contraction.

use supermarq_circuit::C64;

/// Four `f64` lanes holding two adjacent complex amplitudes as
/// `[re0, im0, re1, im1]`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct F64x4(pub [f64; 4]);

impl F64x4 {
    /// All-zero lanes (additive identity; `0.0 + x` is exact for the
    /// non-NaN finite amplitudes the simulator produces).
    pub const ZERO: F64x4 = F64x4([0.0; 4]);

    /// Loads the two amplitudes at `p` and `p + 1`.
    ///
    /// # Safety
    ///
    /// `p` must point at two consecutive readable `C64` values.
    #[inline(always)]
    pub unsafe fn load2(p: *const C64) -> F64x4 {
        let a = *p;
        let b = *p.add(1);
        F64x4([a.re, a.im, b.re, b.im])
    }

    /// Stores the two amplitudes to `p` and `p + 1`.
    ///
    /// # Safety
    ///
    /// `p` must point at two consecutive writable `C64` values.
    #[inline(always)]
    pub unsafe fn store2(self, p: *mut C64) {
        *p = C64::new(self.0[0], self.0[1]);
        *p.add(1) = C64::new(self.0[2], self.0[3]);
    }

    /// Lanewise addition.
    #[inline(always)]
    pub fn add(self, o: F64x4) -> F64x4 {
        F64x4([
            self.0[0] + o.0[0],
            self.0[1] + o.0[1],
            self.0[2] + o.0[2],
            self.0[3] + o.0[3],
        ])
    }

    /// Multiplies both complex lanes by `c`, with the operation tree of
    /// `C64`'s `Mul` (four products, one subtraction, one addition per
    /// amplitude) so results match `c * amp` bit-for-bit.
    #[inline(always)]
    pub fn cmul(self, c: C64) -> F64x4 {
        let a = self.0;
        F64x4([
            a[0] * c.re - a[1] * c.im,
            a[0] * c.im + a[1] * c.re,
            a[2] * c.re - a[3] * c.im,
            a[2] * c.im + a[3] * c.re,
        ])
    }
}

/// `true` when the runtime CPU has AVX and the intrinsic paths apply
/// (`is_x86_feature_detected!` caches its probe in an atomic, so this is a
/// relaxed load after the first call).
#[inline(always)]
fn use_avx() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Runs `f` inside an AVX-attributed frame when the CPU has AVX, plainly
/// otherwise. Placed around a whole chunk walk (see
/// [`crate::chunk::run_chunked`]) this lets LLVM inline the per-run
/// intrinsic bodies below into one attributed function and hoist their
/// loop-invariant broadcasts out of the run loop — without it, a gate on
/// qubit 0 (run length 1) pays the matrix broadcasts once per amplitude
/// pair instead of once per chunk.
#[inline(always)]
pub(crate) fn dispatch(f: impl FnOnce()) {
    #[cfg(target_arch = "x86_64")]
    if use_avx() {
        // SAFETY: AVX availability was just verified at runtime.
        unsafe { with_avx(f) };
        return;
    }
    f();
}

/// # Safety
///
/// The CPU must support AVX.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn with_avx(f: impl FnOnce()) {
    f();
}

// --- Shared scalar tails -------------------------------------------------
//
// Runs are walked two amplitudes per SIMD step; an odd run leaves one
// trailing amplitude. The tails are `#[inline(always)]` helpers shared by
// the portable and AVX paths so every variant ends on the same scalar tree.

/// # Safety
///
/// `p + j..p + run` must be valid, exclusively borrowed amplitudes.
#[inline(always)]
unsafe fn cmul_tail(p: *mut C64, mut j: usize, run: usize, c: C64) {
    while j < run {
        let a = *p.add(j);
        *p.add(j) = c * a;
        j += 1;
    }
}

/// # Safety
///
/// `p0 + j..p0 + run` and `p1 + j..p1 + run` must be valid, disjoint,
/// exclusively borrowed amplitude ranges.
#[inline(always)]
unsafe fn matrix1_tail(p0: *mut C64, p1: *mut C64, mut j: usize, run: usize, m: &[[C64; 2]; 2]) {
    while j < run {
        let a0 = *p0.add(j);
        let a1 = *p1.add(j);
        *p0.add(j) = m[0][0] * a0 + m[0][1] * a1;
        *p1.add(j) = m[1][0] * a0 + m[1][1] * a1;
        j += 1;
    }
}

/// # Safety
///
/// Each `p[k] + j..p[k] + run` must be a valid, exclusively borrowed
/// amplitude range, pairwise disjoint across `k`.
#[inline(always)]
unsafe fn matrix2_tail(
    p: &[*mut C64; 4],
    mut j: usize,
    run: usize,
    m: &[[C64; 4]; 4],
    mask: &[u8; 4],
) {
    while j < run {
        let a = [*p[0].add(j), *p[1].add(j), *p[2].add(j), *p[3].add(j)];
        for (row, &target) in p.iter().enumerate() {
            let mut v = C64::ZERO;
            for (col, (&mc, &ac)) in m[row].iter().zip(&a).enumerate() {
                if mask[row] & (1 << col) != 0 {
                    v += mc * ac;
                }
            }
            *target.add(j) = v;
        }
        j += 1;
    }
}

// --- Portable lane implementations ---------------------------------------

/// # Safety
///
/// See [`cmul_run`].
#[inline(always)]
unsafe fn cmul_run_portable(p: *mut C64, run: usize, c: C64) {
    let mut j = 0;
    while j + 2 <= run {
        F64x4::load2(p.add(j)).cmul(c).store2(p.add(j));
        j += 2;
    }
    cmul_tail(p, j, run, c);
}

/// # Safety
///
/// See [`matrix1_run`].
#[inline(always)]
unsafe fn matrix1_run_portable(p0: *mut C64, p1: *mut C64, run: usize, m: &[[C64; 2]; 2]) {
    let mut j = 0;
    while j + 2 <= run {
        let a0 = F64x4::load2(p0.add(j));
        let a1 = F64x4::load2(p1.add(j));
        a0.cmul(m[0][0]).add(a1.cmul(m[0][1])).store2(p0.add(j));
        a0.cmul(m[1][0]).add(a1.cmul(m[1][1])).store2(p1.add(j));
        j += 2;
    }
    matrix1_tail(p0, p1, j, run, m);
}

/// # Safety
///
/// See [`matrix2_run`].
#[inline(always)]
unsafe fn matrix2_run_portable(p: &[*mut C64; 4], run: usize, m: &[[C64; 4]; 4], mask: &[u8; 4]) {
    let mut j = 0;
    while j + 2 <= run {
        let a = [
            F64x4::load2(p[0].add(j)),
            F64x4::load2(p[1].add(j)),
            F64x4::load2(p[2].add(j)),
            F64x4::load2(p[3].add(j)),
        ];
        for (row, &target) in p.iter().enumerate() {
            let mut v = F64x4::ZERO;
            for (col, (&mc, &ac)) in m[row].iter().zip(&a).enumerate() {
                if mask[row] & (1 << col) != 0 {
                    v = v.add(ac.cmul(mc));
                }
            }
            v.store2(target.add(j));
        }
        j += 2;
    }
    matrix2_tail(p, j, run, m, mask);
}

// --- Adjacent-pair scalar bodies ------------------------------------------
//
// A gate on qubit 0 (stride 1) has every pair's two amplitudes side by
// side: pair task `p` owns `amps[2p]` and `amps[2p + 1]`, so a whole task
// range is one contiguous memory block. The generic run walk degenerates
// to runs of length 1 there (all scalar tail, per-run call overhead per
// amplitude pair); these bodies walk the block directly.

/// # Safety
///
/// See [`matrix1_adjacent`].
#[inline(always)]
unsafe fn matrix1_adjacent_scalar(p: *mut C64, pairs: usize, m: &[[C64; 2]; 2]) {
    let mut j = 0;
    while j < pairs {
        let a0 = *p.add(2 * j);
        let a1 = *p.add(2 * j + 1);
        *p.add(2 * j) = m[0][0] * a0 + m[0][1] * a1;
        *p.add(2 * j + 1) = m[1][0] * a0 + m[1][1] * a1;
        j += 1;
    }
}

/// # Safety
///
/// See [`diagonal_adjacent`].
#[inline(always)]
unsafe fn diagonal_adjacent_scalar(p: *mut C64, pairs: usize, d0: C64, d1: C64) {
    let mut j = 0;
    while j < pairs {
        let a = *p.add(2 * j);
        let b = *p.add(2 * j + 1);
        *p.add(2 * j) = d0 * a;
        *p.add(2 * j + 1) = d1 * b;
        j += 1;
    }
}

// --- Permutation scalar bodies --------------------------------------------

/// # Safety
///
/// See [`swap_odd_between`].
#[inline(always)]
unsafe fn swap_odd_between_scalar(pa: *mut C64, pb: *mut C64, len: usize) {
    let mut j = 1;
    while j < len {
        std::ptr::swap(pa.add(j), pb.add(j));
        j += 2;
    }
}

/// # Safety
///
/// See [`swap_odd_adjacent`].
#[inline(always)]
unsafe fn swap_odd_adjacent_scalar(p: *mut C64, groups: usize) {
    let mut g = 0;
    while g < groups {
        std::ptr::swap(p.add(4 * g + 1), p.add(4 * g + 3));
        g += 1;
    }
}

// --- AVX intrinsic implementations ---------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx {
    use super::{cmul_tail, matrix1_tail, matrix2_tail};
    use std::arch::x86_64::{
        __m256d, _mm256_add_pd, _mm256_addsub_pd, _mm256_broadcast_sd, _mm256_loadu_pd,
        _mm256_mul_pd, _mm256_permute2f128_pd, _mm256_permute_pd, _mm256_setr_pd,
        _mm256_setzero_pd, _mm256_storeu_pd,
    };
    use supermarq_circuit::C64;

    /// Two interleaved complex amplitudes times the scalar whose real and
    /// imaginary parts are pre-broadcast in `cre`/`cim`. Matches the `C64`
    /// multiply tree bitwise:
    ///
    /// ```text
    /// x       = [re*cre, im*cre, ...]      (vmulpd)
    /// swapped = [im, re, ...]              (vpermilpd)
    /// y       = [im*cim, re*cim, ...]      (vmulpd)
    /// out     = [x0-y0, x1+y1, ...]        (vaddsubpd)
    ///         = [re*cre - im*cim, im*cre + re*cim, ...]
    /// ```
    ///
    /// The scalar tree is `(c.re*re - c.im*im, c.re*im + c.im*re)`; each
    /// component differs only by commuting `f64` multiplies/one addition,
    /// which is bitwise-exact. `vaddsubpd` rounds each lane like the
    /// scalar ops — it is not an FMA.
    #[inline(always)]
    unsafe fn cmul256(a: __m256d, cre: __m256d, cim: __m256d) -> __m256d {
        let x = _mm256_mul_pd(a, cre);
        let swapped = _mm256_permute_pd(a, 0b0101);
        let y = _mm256_mul_pd(swapped, cim);
        _mm256_addsub_pd(x, y)
    }

    /// # Safety
    ///
    /// Caller must ensure AVX is available and the range contract of
    /// [`super::cmul_run`].
    #[inline]
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn cmul_run(p: *mut C64, run: usize, c: C64) {
        let cre = _mm256_broadcast_sd(&c.re);
        let cim = _mm256_broadcast_sd(&c.im);
        let mut j = 0;
        while j + 2 <= run {
            let q = p.add(j).cast::<f64>();
            _mm256_storeu_pd(q, cmul256(_mm256_loadu_pd(q), cre, cim));
            j += 2;
        }
        cmul_tail(p, j, run, c);
    }

    /// # Safety
    ///
    /// Caller must ensure AVX is available and the range contract of
    /// [`super::matrix1_run`].
    #[inline]
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn matrix1_run(p0: *mut C64, p1: *mut C64, run: usize, m: &[[C64; 2]; 2]) {
        let m00re = _mm256_broadcast_sd(&m[0][0].re);
        let m00im = _mm256_broadcast_sd(&m[0][0].im);
        let m01re = _mm256_broadcast_sd(&m[0][1].re);
        let m01im = _mm256_broadcast_sd(&m[0][1].im);
        let m10re = _mm256_broadcast_sd(&m[1][0].re);
        let m10im = _mm256_broadcast_sd(&m[1][0].im);
        let m11re = _mm256_broadcast_sd(&m[1][1].re);
        let m11im = _mm256_broadcast_sd(&m[1][1].im);
        let mut j = 0;
        while j + 2 <= run {
            let q0 = p0.add(j).cast::<f64>();
            let q1 = p1.add(j).cast::<f64>();
            let a0 = _mm256_loadu_pd(q0);
            let a1 = _mm256_loadu_pd(q1);
            let r0 = _mm256_add_pd(cmul256(a0, m00re, m00im), cmul256(a1, m01re, m01im));
            let r1 = _mm256_add_pd(cmul256(a0, m10re, m10im), cmul256(a1, m11re, m11im));
            _mm256_storeu_pd(q0, r0);
            _mm256_storeu_pd(q1, r1);
            j += 2;
        }
        matrix1_tail(p0, p1, j, run, m);
    }

    /// # Safety
    ///
    /// Caller must ensure AVX is available and the range contract of
    /// [`super::matrix1_adjacent`].
    #[inline]
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn matrix1_adjacent(p: *mut C64, pairs: usize, m: &[[C64; 2]; 2]) {
        // One 256-bit lane holds one whole pair `[a0.re, a0.im, a1.re,
        // a1.im]`; the low 128-bit half computes the |0> output row and the
        // high half the |1> row, so the per-half constants interleave the
        // matrix columns: `[m00, m10]` against a broadcast `a0`, `[m01,
        // m11]` against a broadcast `a1`.
        let col0_re = _mm256_setr_pd(m[0][0].re, m[0][0].re, m[1][0].re, m[1][0].re);
        let col0_im = _mm256_setr_pd(m[0][0].im, m[0][0].im, m[1][0].im, m[1][0].im);
        let col1_re = _mm256_setr_pd(m[0][1].re, m[0][1].re, m[1][1].re, m[1][1].re);
        let col1_im = _mm256_setr_pd(m[0][1].im, m[0][1].im, m[1][1].im, m[1][1].im);
        for j in 0..pairs {
            let q = p.add(2 * j).cast::<f64>();
            let a = _mm256_loadu_pd(q);
            // [a0, a0] and [a1, a1] via 128-bit halves duplication.
            let a0 = _mm256_permute2f128_pd::<0x00>(a, a);
            let a1 = _mm256_permute2f128_pd::<0x11>(a, a);
            let r = _mm256_add_pd(cmul256(a0, col0_re, col0_im), cmul256(a1, col1_re, col1_im));
            _mm256_storeu_pd(q, r);
        }
    }

    /// # Safety
    ///
    /// Caller must ensure AVX is available and the range contract of
    /// [`super::diagonal_adjacent`].
    #[inline]
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn diagonal_adjacent(p: *mut C64, pairs: usize, d0: C64, d1: C64) {
        // `[d0, d0, d1, d1]` component lanes: the low 128-bit half scales
        // the pair's |0> amplitude, the high half its |1> amplitude.
        let cre = _mm256_setr_pd(d0.re, d0.re, d1.re, d1.re);
        let cim = _mm256_setr_pd(d0.im, d0.im, d1.im, d1.im);
        for j in 0..pairs {
            let q = p.add(2 * j).cast::<f64>();
            _mm256_storeu_pd(q, cmul256(_mm256_loadu_pd(q), cre, cim));
        }
    }

    /// # Safety
    ///
    /// Caller must ensure AVX is available and the range contract of
    /// [`super::swap_run`].
    #[inline]
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn swap_run(pa: *mut C64, pb: *mut C64, run: usize) {
        let mut j = 0;
        while j + 2 <= run {
            let qa = pa.add(j).cast::<f64>();
            let qb = pb.add(j).cast::<f64>();
            let a = _mm256_loadu_pd(qa);
            let b = _mm256_loadu_pd(qb);
            _mm256_storeu_pd(qa, b);
            _mm256_storeu_pd(qb, a);
            j += 2;
        }
        if j < run {
            std::ptr::swap(pa.add(j), pb.add(j));
        }
    }

    /// # Safety
    ///
    /// Caller must ensure AVX is available and the range contract of
    /// [`super::swap_odd_between`].
    #[inline]
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn swap_odd_between(pa: *mut C64, pb: *mut C64, len: usize) {
        // One lane holds two adjacent amplitudes; the odd-indexed one is
        // the high 128-bit half. Exchanging the high halves of an `a`/`b`
        // lane pair swaps the odd elements and rewrites the even ones with
        // their own bits — a pure permutation, trivially bit-exact.
        let mut j = 0;
        while j + 2 <= len {
            let qa = pa.add(j).cast::<f64>();
            let qb = pb.add(j).cast::<f64>();
            let a = _mm256_loadu_pd(qa);
            let b = _mm256_loadu_pd(qb);
            _mm256_storeu_pd(qa, _mm256_permute2f128_pd::<0x30>(a, b));
            _mm256_storeu_pd(qb, _mm256_permute2f128_pd::<0x12>(a, b));
            j += 2;
        }
        super::swap_odd_between_scalar(pa.add(j), pb.add(j), len - j);
    }

    /// # Safety
    ///
    /// Caller must ensure AVX is available and the range contract of
    /// [`super::swap_odd_adjacent`].
    #[inline]
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn swap_odd_adjacent(p: *mut C64, groups: usize) {
        // Same high-half exchange as `swap_odd_between`, but the two lanes
        // of each group are adjacent in memory.
        for g in 0..groups {
            let q = p.add(4 * g).cast::<f64>();
            let a = _mm256_loadu_pd(q);
            let b = _mm256_loadu_pd(q.add(4));
            _mm256_storeu_pd(q, _mm256_permute2f128_pd::<0x30>(a, b));
            _mm256_storeu_pd(q.add(4), _mm256_permute2f128_pd::<0x12>(a, b));
        }
    }

    /// # Safety
    ///
    /// Caller must ensure AVX is available and the range contract of
    /// [`super::matrix2_run`].
    #[inline]
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn matrix2_run(
        p: &[*mut C64; 4],
        run: usize,
        m: &[[C64; 4]; 4],
        mask: &[u8; 4],
    ) {
        let mut j = 0;
        while j + 2 <= run {
            let a = [
                _mm256_loadu_pd(p[0].add(j).cast::<f64>()),
                _mm256_loadu_pd(p[1].add(j).cast::<f64>()),
                _mm256_loadu_pd(p[2].add(j).cast::<f64>()),
                _mm256_loadu_pd(p[3].add(j).cast::<f64>()),
            ];
            for (row, &target) in p.iter().enumerate() {
                let mut v = _mm256_setzero_pd();
                for (col, (mc, &ac)) in m[row].iter().zip(&a).enumerate() {
                    if mask[row] & (1 << col) != 0 {
                        let cre = _mm256_broadcast_sd(&mc.re);
                        let cim = _mm256_broadcast_sd(&mc.im);
                        v = _mm256_add_pd(v, cmul256(ac, cre, cim));
                    }
                }
                _mm256_storeu_pd(target.add(j).cast::<f64>(), v);
            }
            j += 2;
        }
        matrix2_tail(p, j, run, m, mask);
    }
}

// --- Dispatching entry points ---------------------------------------------

/// Multiplies `run` consecutive amplitudes starting at `p` by `c`,
/// bit-identical to the scalar loop `amps[i] = c * amps[i]`.
///
/// # Safety
///
/// `p..p + run` must be a valid, exclusively-borrowed amplitude range.
#[inline(always)]
pub(crate) unsafe fn cmul_run(p: *mut C64, run: usize, c: C64) {
    #[cfg(target_arch = "x86_64")]
    if use_avx() {
        return avx::cmul_run(p, run, c);
    }
    cmul_run_portable(p, run, c);
}

/// Applies the 2x2 matrix `m` to `run` consecutive amplitude pairs
/// `(p0 + j, p1 + j)`, bit-identical to the scalar
/// `(m00*a0 + m01*a1, m10*a0 + m11*a1)` per pair.
///
/// # Safety
///
/// `p0..p0 + run` and `p1..p1 + run` must be valid, disjoint,
/// exclusively-borrowed amplitude ranges.
#[inline(always)]
pub(crate) unsafe fn matrix1_run(p0: *mut C64, p1: *mut C64, run: usize, m: &[[C64; 2]; 2]) {
    #[cfg(target_arch = "x86_64")]
    if use_avx() {
        return avx::matrix1_run(p0, p1, run, m);
    }
    matrix1_run_portable(p0, p1, run, m);
}

/// Swaps `run` consecutive amplitudes between `pa` and `pb` (a pure
/// permutation — no arithmetic, so bit-exactness is structural).
///
/// # Safety
///
/// `pa..pa + run` and `pb..pb + run` must be valid, disjoint,
/// exclusively-borrowed amplitude ranges.
#[inline(always)]
pub(crate) unsafe fn swap_run(pa: *mut C64, pb: *mut C64, run: usize) {
    #[cfg(target_arch = "x86_64")]
    if use_avx() {
        return avx::swap_run(pa, pb, run);
    }
    std::ptr::swap_nonoverlapping(pa, pb, run);
}

/// Swaps the odd-indexed amplitudes of the two `len`-long blocks at `pa`
/// and `pb` (`pa[2k+1] <-> pb[2k+1]`) — the access pattern of a CX whose
/// control is qubit 0, where the generic tuple walk degrades to length-1
/// runs.
///
/// # Safety
///
/// `pa..pa + len` and `pb..pb + len` must be valid, disjoint,
/// exclusively-borrowed amplitude ranges.
#[inline(always)]
pub(crate) unsafe fn swap_odd_between(pa: *mut C64, pb: *mut C64, len: usize) {
    #[cfg(target_arch = "x86_64")]
    if use_avx() {
        return avx::swap_odd_between(pa, pb, len);
    }
    swap_odd_between_scalar(pa, pb, len);
}

/// Swaps amplitudes 1 and 3 of each 4-long group starting at `p`
/// (`p[4g+1] <-> p[4g+3]` for `g < groups`) — the access pattern of
/// `CX(0, 1)`, where each 4-tuple is one contiguous group.
///
/// # Safety
///
/// `p..p + 4 * groups` must be a valid, exclusively-borrowed amplitude
/// range.
#[inline(always)]
pub(crate) unsafe fn swap_odd_adjacent(p: *mut C64, groups: usize) {
    #[cfg(target_arch = "x86_64")]
    if use_avx() {
        return avx::swap_odd_adjacent(p, groups);
    }
    swap_odd_adjacent_scalar(p, groups);
}

/// Applies the 2x2 matrix `m` to `pairs` *adjacent* amplitude pairs
/// `(p + 2j, p + 2j + 1)` — the stride-1 layout of a gate on qubit 0 —
/// bit-identical to the generic [`matrix1_run`] handling of the same
/// pairs.
///
/// # Safety
///
/// `p..p + 2 * pairs` must be a valid, exclusively-borrowed amplitude
/// range.
#[inline(always)]
pub(crate) unsafe fn matrix1_adjacent(p: *mut C64, pairs: usize, m: &[[C64; 2]; 2]) {
    #[cfg(target_arch = "x86_64")]
    if use_avx() {
        return avx::matrix1_adjacent(p, pairs, m);
    }
    matrix1_adjacent_scalar(p, pairs, m);
}

/// Multiplies `pairs` adjacent amplitude pairs by `diag(d0, d1)` — the
/// stride-1 layout of a diagonal gate on qubit 0 — bit-identical to the
/// scalar multiplies `d0 * amps[2j]`, `d1 * amps[2j + 1]`.
///
/// # Safety
///
/// `p..p + 2 * pairs` must be a valid, exclusively-borrowed amplitude
/// range.
#[inline(always)]
pub(crate) unsafe fn diagonal_adjacent(p: *mut C64, pairs: usize, d0: C64, d1: C64) {
    #[cfg(target_arch = "x86_64")]
    if use_avx() {
        return avx::diagonal_adjacent(p, pairs, d0, d1);
    }
    diagonal_adjacent_scalar(p, pairs, d0, d1);
}

/// Per-row bitmasks of the nonzero columns of a 4x4 matrix: bit `c` of
/// entry `row` is set iff `m[row][c]` compares unequal to zero (`-0.0`
/// counts as zero). [`matrix2_run`] skips unselected columns, so sparse
/// gate matrices (CX touches 4 of 16 entries) pay only for their nonzero
/// structure. Build the mask once per gate, not per run — the mask is part
/// of the rounding-tree contract, so it must be identical across chunks.
#[inline]
pub(crate) fn nonzero_mask4(m: &[[C64; 4]; 4]) -> [u8; 4] {
    let mut mask = [0u8; 4];
    for (row, bits) in m.iter().zip(&mut mask) {
        for (col, mc) in row.iter().enumerate() {
            if mc.re != 0.0 || mc.im != 0.0 {
                *bits |= 1 << col;
            }
        }
    }
    mask
}

/// Applies the 4x4 matrix `m` to `run` consecutive amplitude 4-tuples
/// `(p[0] + j, .., p[3] + j)`, bit-identical to the scalar
/// `C64::ZERO`-seeded row accumulation over the columns selected by
/// `mask` (bit `c` of `mask[row]` selects `m[row][c]`; see
/// [`nonzero_mask4`]). Skipping an exact-zero column only drops `±0.0`
/// addends from the tree — for finite amplitudes the sum is value-equal
/// to the full accumulation, and preserving the sign of zero amplitudes
/// actually matches the permutation kernels *more* closely.
///
/// # Safety
///
/// Each `p[k]..p[k] + run` must be a valid, exclusively-borrowed amplitude
/// range, pairwise disjoint across `k`.
#[inline(always)]
pub(crate) unsafe fn matrix2_run(p: &[*mut C64; 4], run: usize, m: &[[C64; 4]; 4], mask: &[u8; 4]) {
    #[cfg(target_arch = "x86_64")]
    if use_avx() {
        return avx::matrix2_run(p, run, m, mask);
    }
    matrix2_run_portable(p, run, m, mask);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amps(len: usize) -> Vec<C64> {
        (0..len)
            .map(|i| C64::new(i as f64 * 0.1 - 0.3, 1.0 / (i as f64 + 1.0)))
            .collect()
    }

    #[test]
    fn cmul_is_bit_identical_to_scalar_mul() {
        let c = C64::new(0.123_456_789, -0.987_654_321);
        let amps = [
            C64::new(0.5, -0.25),
            C64::new(-1.0 / 3.0, 2.0 / 7.0),
            C64::new(1e-200, -1e200),
            C64::new(0.0, -0.0),
        ];
        for pair in amps.chunks_exact(2) {
            let lanes = unsafe { F64x4::load2(pair.as_ptr()) }.cmul(c);
            let mut out = [C64::ZERO; 2];
            unsafe { lanes.store2(out.as_mut_ptr()) };
            for (o, &a) in out.iter().zip(pair) {
                let s = c * a;
                assert_eq!(o.re.to_bits(), s.re.to_bits());
                assert_eq!(o.im.to_bits(), s.im.to_bits());
            }
        }
    }

    #[test]
    fn cmul_run_handles_odd_lengths_and_matches_scalar() {
        let c = C64::new(0.7, 0.3);
        for len in 0..7usize {
            let mut simd = amps(len);
            let scalar: Vec<C64> = simd.iter().map(|&a| c * a).collect();
            unsafe { cmul_run(simd.as_mut_ptr(), len, c) };
            for (s, r) in simd.iter().zip(&scalar) {
                assert_eq!(s.re.to_bits(), r.re.to_bits());
                assert_eq!(s.im.to_bits(), r.im.to_bits());
            }
        }
    }

    #[test]
    fn matrix1_run_matches_scalar_tree_bitwise() {
        // Hadamard-like but with a complex entry to exercise every product.
        let m = [
            [C64::new(0.6, 0.1), C64::new(-0.2, 0.7)],
            [C64::new(0.3, -0.4), C64::new(0.8, 0.05)],
        ];
        for len in 0..7usize {
            let mut lo = amps(len);
            let mut hi: Vec<C64> = amps(len).iter().map(|a| a.conj()).collect();
            let expect: Vec<(C64, C64)> = lo
                .iter()
                .zip(&hi)
                .map(|(&a0, &a1)| (m[0][0] * a0 + m[0][1] * a1, m[1][0] * a0 + m[1][1] * a1))
                .collect();
            unsafe { matrix1_run(lo.as_mut_ptr(), hi.as_mut_ptr(), len, &m) };
            for ((a, b), (ea, eb)) in lo.iter().zip(&hi).zip(&expect) {
                assert_eq!(a.re.to_bits(), ea.re.to_bits());
                assert_eq!(a.im.to_bits(), ea.im.to_bits());
                assert_eq!(b.re.to_bits(), eb.re.to_bits());
                assert_eq!(b.im.to_bits(), eb.im.to_bits());
            }
        }
    }

    #[test]
    fn swap_run_exchanges_ranges_exactly() {
        for len in 0..7usize {
            let mut a = amps(len);
            let mut b: Vec<C64> = amps(len).iter().map(|x| x.conj()).collect();
            let (ea, eb) = (b.clone(), a.clone());
            unsafe { swap_run(a.as_mut_ptr(), b.as_mut_ptr(), len) };
            assert_eq!(a, ea);
            assert_eq!(b, eb);
        }
    }

    #[test]
    fn swap_odd_between_touches_only_odd_indices() {
        for len in [0usize, 2, 4, 6, 8] {
            let mut a = amps(len);
            let mut b: Vec<C64> = amps(len).iter().map(|x| x.scale(-2.0)).collect();
            let (orig_a, orig_b) = (a.clone(), b.clone());
            unsafe { swap_odd_between(a.as_mut_ptr(), b.as_mut_ptr(), len) };
            for j in 0..len {
                if j % 2 == 1 {
                    assert_eq!(a[j], orig_b[j], "odd {j} swapped");
                    assert_eq!(b[j], orig_a[j], "odd {j} swapped");
                } else {
                    assert_eq!(a[j], orig_a[j], "even {j} untouched");
                    assert_eq!(b[j], orig_b[j], "even {j} untouched");
                }
            }
        }
    }

    #[test]
    fn swap_odd_adjacent_swaps_one_and_three_of_each_group() {
        for groups in 0..4usize {
            let mut got = amps(4 * groups);
            let mut expect = got.clone();
            for g in 0..groups {
                expect.swap(4 * g + 1, 4 * g + 3);
            }
            unsafe { swap_odd_adjacent(got.as_mut_ptr(), groups) };
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn matrix1_adjacent_matches_scalar_tree_bitwise() {
        let m = [
            [C64::new(0.6, 0.1), C64::new(-0.2, 0.7)],
            [C64::new(0.3, -0.4), C64::new(0.8, 0.05)],
        ];
        for pairs in 0..5usize {
            let mut got = amps(2 * pairs);
            let expect: Vec<C64> = got
                .chunks_exact(2)
                .flat_map(|p| {
                    [
                        m[0][0] * p[0] + m[0][1] * p[1],
                        m[1][0] * p[0] + m[1][1] * p[1],
                    ]
                })
                .collect();
            unsafe { matrix1_adjacent(got.as_mut_ptr(), pairs, &m) };
            for (a, e) in got.iter().zip(&expect) {
                assert_eq!(a.re.to_bits(), e.re.to_bits());
                assert_eq!(a.im.to_bits(), e.im.to_bits());
            }
        }
    }

    #[test]
    fn diagonal_adjacent_matches_scalar_tree_bitwise() {
        let d0 = C64::new(0.123, -0.456);
        let d1 = C64::new(-0.789, 0.321);
        for pairs in 0..5usize {
            let mut got = amps(2 * pairs);
            let expect: Vec<C64> = got
                .chunks_exact(2)
                .flat_map(|p| [d0 * p[0], d1 * p[1]])
                .collect();
            unsafe { diagonal_adjacent(got.as_mut_ptr(), pairs, d0, d1) };
            for (a, e) in got.iter().zip(&expect) {
                assert_eq!(a.re.to_bits(), e.re.to_bits());
                assert_eq!(a.im.to_bits(), e.im.to_bits());
            }
        }
    }

    #[test]
    fn matrix2_run_matches_scalar_tree_bitwise() {
        let mut m = [[C64::ZERO; 4]; 4];
        for (r, row) in m.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                *cell = C64::new(
                    0.11 * (r as f64 + 1.0) - 0.07 * c as f64,
                    0.05 * c as f64 - 0.13 * r as f64,
                );
            }
        }
        for len in 0..5usize {
            let mut rows: Vec<Vec<C64>> = (0..4)
                .map(|k| amps(len).iter().map(|a| a.scale(k as f64 + 0.5)).collect())
                .collect();
            let mut expect = rows.clone();
            for j in 0..len {
                let a = [rows[0][j], rows[1][j], rows[2][j], rows[3][j]];
                for (row, exp) in expect.iter_mut().enumerate() {
                    let mut v = C64::ZERO;
                    for (&mc, &ac) in m[row].iter().zip(&a) {
                        v += mc * ac;
                    }
                    exp[j] = v;
                }
            }
            let ptrs = {
                let mut it = rows.iter_mut().map(|r| r.as_mut_ptr());
                [
                    it.next().unwrap(),
                    it.next().unwrap(),
                    it.next().unwrap(),
                    it.next().unwrap(),
                ]
            };
            unsafe { matrix2_run(&ptrs, len, &m, &nonzero_mask4(&m)) };
            for (row, exp) in rows.iter().zip(&expect) {
                for (a, e) in row.iter().zip(exp) {
                    assert_eq!(a.re.to_bits(), e.re.to_bits());
                    assert_eq!(a.im.to_bits(), e.im.to_bits());
                }
            }
        }
    }

    #[test]
    fn nonzero_mask4_flags_exactly_the_nonzero_entries() {
        let mut m = [[C64::ZERO; 4]; 4];
        m[0][0] = C64::ONE;
        m[1][2] = C64::new(0.0, -3.0);
        m[2][3] = C64::new(-0.0, 0.0); // negative zero still counts as zero
        m[3][1] = C64::new(1e-300, 0.0); // tiny but nonzero
        assert_eq!(nonzero_mask4(&m), [0b0001, 0b0100, 0b0000, 0b0010]);
    }

    #[test]
    fn sparse_matrix2_run_skips_zero_columns_bitwise() {
        // CX in |q0 q1> basis order: a 4x4 permutation with 12 exact-zero
        // entries. Both tiers must match the ZERO-seeded scalar tree over
        // the *masked* columns only — a single term per row here, so the
        // skipped 0*a products never enter the accumulation (the full
        // 4-term tree would also flip the sign of -0.0 amplitudes).
        let mut m = [[C64::ZERO; 4]; 4];
        m[0][0] = C64::ONE;
        m[1][1] = C64::ONE;
        m[2][3] = C64::ONE;
        m[3][2] = C64::ONE;
        let mask = nonzero_mask4(&m);
        assert_eq!(mask, [0b0001, 0b0010, 0b1000, 0b0100]);
        for len in 0..5usize {
            let mut rows: Vec<Vec<C64>> = (0..4)
                .map(|k| {
                    amps(len)
                        .iter()
                        .map(|a| a.scale(k as f64 - 1.5)) // index 3 yields re = -0.0
                        .collect()
                })
                .collect();
            let mut expect = rows.clone();
            for j in 0..len {
                let a = [rows[0][j], rows[1][j], rows[2][j], rows[3][j]];
                for (row, exp) in expect.iter_mut().enumerate() {
                    let mut v = C64::ZERO;
                    for (col, (&mc, &ac)) in m[row].iter().zip(&a).enumerate() {
                        if mask[row] & (1 << col) != 0 {
                            v += mc * ac;
                        }
                    }
                    exp[j] = v;
                }
            }
            let ptrs = {
                let mut it = rows.iter_mut().map(|r| r.as_mut_ptr());
                [
                    it.next().unwrap(),
                    it.next().unwrap(),
                    it.next().unwrap(),
                    it.next().unwrap(),
                ]
            };
            unsafe { matrix2_run(&ptrs, len, &m, &mask) };
            for (row, exp) in rows.iter().zip(&expect) {
                for (a, e) in row.iter().zip(exp) {
                    assert_eq!(a.re.to_bits(), e.re.to_bits());
                    assert_eq!(a.im.to_bits(), e.im.to_bits());
                }
            }
        }
    }
}
